#include "server/wire.h"

#include <utility>

namespace coverage {
namespace wire {

using json::JsonValue;

// ---------------------------------------------------------------- encoders

JsonValue ToJson(const Pattern& pattern, const Schema& schema) {
  JsonValue::Object o;
  o["pattern"] = pattern.ToString();
  o["label"] = pattern.ToLabelledString(schema);
  o["level"] = pattern.level();
  return o;
}

JsonValue ToJson(const MupSearchStats& stats) {
  JsonValue::Object o;
  o["coverage_queries"] = stats.coverage_queries;
  o["nodes_generated"] = stats.nodes_generated;
  o["nodes_pruned"] = stats.nodes_pruned;
  o["num_mups"] = stats.num_mups;
  o["seconds"] = stats.seconds;
  return o;
}

JsonValue ToJson(const AuditResult& result, const Schema& schema) {
  JsonValue::Object o;
  o["algorithm"] = result.algorithm;
  o["max_level"] = result.max_level;
  JsonValue::Array mups;
  if (result.packed.has_value()) {
    // Encode straight from the packed form — PatternCodec's renderers are
    // byte-identical to Pattern's, so the wire bytes do not depend on
    // whether the result was materialized.
    const PatternCodec& codec = result.packed->codec;
    mups.reserve(result.packed->mups.size());
    for (const PackedPattern& p : result.packed->mups) {
      JsonValue::Object m;
      m["pattern"] = codec.ToString(p);
      m["label"] = codec.ToLabelledString(p, schema);
      m["level"] = p.level();
      mups.push_back(std::move(m));
    }
  } else {
    mups.reserve(result.mups.size());
    for (const Pattern& p : result.mups) mups.push_back(ToJson(p, schema));
  }
  o["mups"] = std::move(mups);
  o["num_rows"] = result.num_rows;
  o["planner_rationale"] = result.planner_rationale;
  o["stats"] = ToJson(result.stats);
  o["tau"] = result.tau;
  return o;
}

JsonValue ToJson(const QueryBatchResult& result) {
  JsonValue::Object o;
  o["coverage_queries"] = result.coverage_queries;
  JsonValue::Array results;
  results.reserve(result.results.size());
  for (const QueryOutcome& q : result.results) {
    JsonValue::Object r;
    r["coverage"] = q.coverage;
    r["covered"] = q.covered;
    results.push_back(std::move(r));
  }
  o["results"] = std::move(results);
  o["seconds"] = result.seconds;
  return o;
}

JsonValue ToJson(const CoveragePlan& plan, const Schema& schema) {
  JsonValue::Object o;
  JsonValue::Array items;
  items.reserve(plan.items.size());
  for (const AcquisitionItem& item : plan.items) {
    JsonValue::Object i;
    JsonValue::Array combination;
    combination.reserve(item.combination.size());
    for (const Value v : item.combination) {
      combination.push_back(static_cast<std::int64_t>(v));
    }
    i["combination"] = std::move(combination);
    const Pattern as_pattern = Pattern::FromTuple(item.combination);
    i["label"] = as_pattern.ToLabelledString(schema);
    i["pattern"] = as_pattern.ToString();
    i["satisfies"] = ToJson(item.generalized, schema);
    i["copies"] = item.copies;
    items.push_back(std::move(i));
  }
  o["items"] = std::move(items);
  JsonValue::Array targets;
  targets.reserve(plan.targets.size());
  for (const Pattern& p : plan.targets) targets.push_back(ToJson(p, schema));
  o["targets"] = std::move(targets);
  JsonValue::Array unresolvable;
  unresolvable.reserve(plan.unresolvable.size());
  for (const Pattern& p : plan.unresolvable) {
    unresolvable.push_back(ToJson(p, schema));
  }
  o["unresolvable"] = std::move(unresolvable);
  JsonValue::Object stats;
  stats["combinations_scanned"] = plan.stats.combinations_scanned;
  stats["iterations"] = plan.stats.iterations;
  stats["seconds"] = plan.stats.seconds;
  stats["tree_nodes_visited"] = plan.stats.tree_nodes_visited;
  o["stats"] = std::move(stats);
  o["total_tuples"] = plan.TotalTuples();
  return o;
}

JsonValue ToJson(const EngineUpdateStats& stats) {
  JsonValue::Object o;
  o["combinations_tombstoned"] = stats.combinations_tombstoned;
  o["coverage_queries"] = stats.coverage_queries;
  o["mups_added"] = stats.mups_added;
  o["mups_demoted"] = stats.mups_demoted;
  o["mups_newly_covered"] = stats.mups_newly_covered;
  o["mups_rechecked"] = stats.mups_rechecked;
  o["new_combinations"] = stats.new_combinations;
  o["rows_appended"] = stats.rows_appended;
  o["rows_retracted"] = stats.rows_retracted;
  o["seconds"] = stats.seconds;
  return o;
}

JsonValue ToJson(const IngestStats& stats) {
  JsonValue::Object o;
  o["chunks"] = stats.chunks;
  o["coverage_queries"] = stats.coverage_queries;
  o["peak_chunk_rows"] = stats.peak_chunk_rows;
  o["read_seconds"] = stats.read_seconds;
  o["rows"] = stats.rows;
  o["update_seconds"] = stats.update_seconds;
  return o;
}

JsonValue ToJson(const Schema& schema) {
  JsonValue::Object o;
  JsonValue::Array attributes;
  attributes.reserve(static_cast<std::size_t>(schema.num_attributes()));
  for (const Attribute& attr : schema.attributes()) {
    JsonValue::Object a;
    a["name"] = attr.name;
    JsonValue::Array values;
    values.reserve(attr.value_names.size());
    for (const std::string& v : attr.value_names) values.push_back(v);
    a["values"] = std::move(values);
    attributes.push_back(std::move(a));
  }
  o["attributes"] = std::move(attributes);
  return o;
}

// ---------------------------------------------------------------- decoders

namespace {

/// Strictness backbone: every decoder lists the members it understands and
/// anything else is an error (typo'd "maxlevel" must not silently audit
/// with the default).
Status RejectUnknownMembers(const JsonValue& v,
                            std::initializer_list<const char*> known) {
  if (!v.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  for (const auto& [key, value] : v.AsObject()) {
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return Status::InvalidArgument("unknown request member '" + key + "'");
    }
  }
  return Status::OK();
}

/// Optional-member helpers: absent leaves the default, present must decode.
Status MaybeUint(const JsonValue& v, const std::string& key,
                 std::uint64_t* out) {
  if (v.Find(key) == nullptr) return Status::OK();
  auto parsed = v.GetUint(key);
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::OK();
}

Status MaybeInt(const JsonValue& v, const std::string& key, int* out) {
  if (v.Find(key) == nullptr) return Status::OK();
  auto parsed = v.GetInt(key);
  if (!parsed.ok()) return parsed.status();
  *out = static_cast<int>(*parsed);
  return Status::OK();
}

Status MaybeBool(const JsonValue& v, const std::string& key, bool* out) {
  if (v.Find(key) == nullptr) return Status::OK();
  auto parsed = v.GetBool(key);
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::OK();
}

StatusOr<MupSearchOptions::DominanceMode> DominanceModeFromName(
    const std::string& name) {
  if (name == "bitmap") return MupSearchOptions::DominanceMode::kBitmapIndex;
  if (name == "scan") return MupSearchOptions::DominanceMode::kLinearScan;
  if (name == "none") return MupSearchOptions::DominanceMode::kNoPruning;
  return Status::InvalidArgument("unknown dominance_mode '" + name +
                                 "' (expected bitmap | scan | none)");
}

StatusOr<std::vector<Pattern>> PatternListFromJson(const JsonValue& list,
                                                   const Schema& schema,
                                                   const char* what) {
  if (!list.is_array()) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be an array of pattern strings");
  }
  std::vector<Pattern> out;
  out.reserve(list.AsArray().size());
  for (const JsonValue& entry : list.AsArray()) {
    if (!entry.is_string()) {
      return Status::InvalidArgument(std::string(what) +
                                     " must be an array of pattern strings");
    }
    auto pattern = Pattern::Parse(entry.AsString(), schema);
    if (!pattern.ok()) return pattern.status();
    out.push_back(std::move(*pattern));
  }
  return out;
}

}  // namespace

StatusOr<MupAlgorithm> AlgorithmFromName(const std::string& name) {
  if (name == "auto") return MupAlgorithm::kAuto;
  if (name == "deepdiver") return MupAlgorithm::kDeepDiver;
  if (name == "breaker" || name == "pattern-breaker") {
    return MupAlgorithm::kPatternBreaker;
  }
  if (name == "combiner" || name == "pattern-combiner") {
    return MupAlgorithm::kPatternCombiner;
  }
  if (name == "apriori") return MupAlgorithm::kApriori;
  if (name == "naive") return MupAlgorithm::kNaive;
  return Status::InvalidArgument(
      "unknown algorithm '" + name +
      "' (expected auto | deepdiver | breaker | combiner | apriori | naive)");
}

StatusOr<AuditRequest> AuditRequestFromJson(const JsonValue& v) {
  COVERAGE_RETURN_IF_ERROR(RejectUnknownMembers(
      v, {"tau", "max_level", "algorithm", "dominance_mode",
          "enumeration_limit"}));
  AuditRequest request;
  COVERAGE_RETURN_IF_ERROR(MaybeUint(v, "tau", &request.tau));
  COVERAGE_RETURN_IF_ERROR(MaybeInt(v, "max_level", &request.max_level));
  COVERAGE_RETURN_IF_ERROR(
      MaybeUint(v, "enumeration_limit", &request.enumeration_limit));
  if (v.Find("algorithm") != nullptr) {
    auto name = v.GetString("algorithm");
    if (!name.ok()) return name.status();
    auto algorithm = AlgorithmFromName(*name);
    if (!algorithm.ok()) return algorithm.status();
    request.algorithm = *algorithm;
  }
  if (v.Find("dominance_mode") != nullptr) {
    auto name = v.GetString("dominance_mode");
    if (!name.ok()) return name.status();
    auto mode = DominanceModeFromName(*name);
    if (!mode.ok()) return mode.status();
    request.dominance_mode = *mode;
  }
  return request;
}

StatusOr<EnhanceRequest> EnhanceRequestFromJson(const JsonValue& v,
                                                const Schema& schema) {
  COVERAGE_RETURN_IF_ERROR(RejectUnknownMembers(
      v, {"tau", "lambda", "rules", "min_value_count", "use_naive_greedy",
          "enumeration_limit", "mups"}));
  EnhanceRequest request;
  COVERAGE_RETURN_IF_ERROR(MaybeUint(v, "tau", &request.tau));
  COVERAGE_RETURN_IF_ERROR(MaybeInt(v, "lambda", &request.lambda));
  COVERAGE_RETURN_IF_ERROR(
      MaybeUint(v, "min_value_count", &request.min_value_count));
  COVERAGE_RETURN_IF_ERROR(
      MaybeBool(v, "use_naive_greedy", &request.use_naive_greedy));
  COVERAGE_RETURN_IF_ERROR(
      MaybeUint(v, "enumeration_limit", &request.enumeration_limit));
  if (const JsonValue* rules = v.Find("rules")) {
    if (!rules->is_array()) {
      return Status::InvalidArgument("'rules' must be an array of strings");
    }
    for (const JsonValue& rule : rules->AsArray()) {
      if (!rule.is_string()) {
        return Status::InvalidArgument("'rules' must be an array of strings");
      }
      request.rules.push_back(rule.AsString());
    }
  }
  if (const JsonValue* mups = v.Find("mups")) {
    auto patterns = PatternListFromJson(*mups, schema, "'mups'");
    if (!patterns.ok()) return patterns.status();
    request.mups = std::move(*patterns);
  }
  return request;
}

StatusOr<QueryBatchRequest> QueryBatchRequestFromJson(const JsonValue& v,
                                                      const Schema& schema) {
  COVERAGE_RETURN_IF_ERROR(
      RejectUnknownMembers(v, {"queries", "patterns", "tau"}));
  const JsonValue* queries = v.Find("queries");
  const JsonValue* patterns = v.Find("patterns");
  if ((queries != nullptr) == (patterns != nullptr)) {
    return Status::InvalidArgument(
        "pass exactly one of 'queries' (objects) or 'patterns' (strings)");
  }
  QueryBatchRequest request;
  if (patterns != nullptr) {
    std::uint64_t tau = 0;
    COVERAGE_RETURN_IF_ERROR(MaybeUint(v, "tau", &tau));
    auto parsed = PatternListFromJson(*patterns, schema, "'patterns'");
    if (!parsed.ok()) return parsed.status();
    request.queries.reserve(parsed->size());
    for (Pattern& p : *parsed) {
      request.queries.push_back(QueryRequest{std::move(p), tau});
    }
    return request;
  }
  if (v.Find("tau") != nullptr) {
    return Status::InvalidArgument(
        "'tau' accompanies 'patterns'; with 'queries' set it per query");
  }
  if (!queries->is_array()) {
    return Status::InvalidArgument("'queries' must be an array of objects");
  }
  request.queries.reserve(queries->AsArray().size());
  for (const JsonValue& q : queries->AsArray()) {
    COVERAGE_RETURN_IF_ERROR(RejectUnknownMembers(q, {"pattern", "tau"}));
    auto text = q.GetString("pattern");
    if (!text.ok()) return text.status();
    auto pattern = Pattern::Parse(*text, schema);
    if (!pattern.ok()) return pattern.status();
    QueryRequest request_one;
    request_one.pattern = std::move(*pattern);
    COVERAGE_RETURN_IF_ERROR(MaybeUint(q, "tau", &request_one.tau));
    request.queries.push_back(std::move(request_one));
  }
  return request;
}

StatusOr<Schema> SchemaFromJson(const JsonValue& v) {
  COVERAGE_RETURN_IF_ERROR(RejectUnknownMembers(v, {"attributes"}));
  const JsonValue* attributes = v.Find("attributes");
  if (attributes == nullptr || !attributes->is_array() ||
      attributes->AsArray().empty()) {
    return Status::InvalidArgument(
        "'attributes' must be a non-empty array of attribute objects");
  }
  std::vector<Attribute> out;
  out.reserve(attributes->AsArray().size());
  for (const JsonValue& a : attributes->AsArray()) {
    COVERAGE_RETURN_IF_ERROR(
        RejectUnknownMembers(a, {"name", "values", "cardinality"}));
    auto name = a.GetString("name");
    if (!name.ok()) return name.status();
    const JsonValue* values = a.Find("values");
    const JsonValue* cardinality = a.Find("cardinality");
    if ((values != nullptr) == (cardinality != nullptr)) {
      return Status::InvalidArgument(
          "attribute '" + *name +
          "': pass exactly one of 'values' or 'cardinality'");
    }
    if (cardinality != nullptr) {
      auto c = a.GetUint("cardinality");
      if (!c.ok()) return c.status();
      if (*c < 1 || *c > 1024) {
        return Status::InvalidArgument("attribute '" + *name +
                                       "': cardinality must be in [1, 1024]");
      }
      out.push_back(Attribute::Anonymous(*name, static_cast<int>(*c)));
      continue;
    }
    Attribute attr;
    attr.name = *name;
    if (!values->is_array() || values->AsArray().empty()) {
      return Status::InvalidArgument(
          "attribute '" + *name + "': 'values' must be a non-empty array");
    }
    for (const JsonValue& value : values->AsArray()) {
      if (!value.is_string()) {
        return Status::InvalidArgument("attribute '" + *name +
                                       "': values must be strings");
      }
      attr.value_names.push_back(value.AsString());
    }
    out.push_back(std::move(attr));
  }
  return Schema(std::move(out));
}

StatusOr<Dataset> RowsFromJson(const JsonValue& v, const Schema& schema) {
  COVERAGE_RETURN_IF_ERROR(RejectUnknownMembers(v, {"rows"}));
  const JsonValue* rows = v.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument("'rows' must be an array of rows");
  }
  Dataset out(schema);
  const int d = schema.num_attributes();
  std::vector<Value> decoded(static_cast<std::size_t>(d));
  for (std::size_t r = 0; r < rows->AsArray().size(); ++r) {
    const JsonValue& row = rows->AsArray()[r];
    if (!row.is_array() || row.AsArray().size() != static_cast<std::size_t>(d)) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " must be an array of " +
          std::to_string(d) + " cells (one per attribute)");
    }
    for (int a = 0; a < d; ++a) {
      const JsonValue& cell = row.AsArray()[static_cast<std::size_t>(a)];
      if (cell.is_int()) {
        const std::int64_t raw = cell.AsInt();
        if (raw < 0 || raw >= schema.cardinality(a)) {
          return Status::InvalidArgument(
              "row " + std::to_string(r) + ", attribute " +
              schema.attribute(a).name + ": encoded value " +
              std::to_string(raw) + " is out of range [0, " +
              std::to_string(schema.cardinality(a)) + ")");
        }
        decoded[static_cast<std::size_t>(a)] = static_cast<Value>(raw);
      } else if (cell.is_string()) {
        auto value = schema.ValueIndex(a, cell.AsString());
        if (!value.ok()) {
          return Status::InvalidArgument(
              "row " + std::to_string(r) + ", attribute " +
              schema.attribute(a).name + ": " + value.status().message());
        }
        decoded[static_cast<std::size_t>(a)] = *value;
      } else {
        return Status::InvalidArgument(
            "row " + std::to_string(r) +
            ": cells must be encoded integers or value-label strings");
      }
    }
    out.AppendRow(decoded);
  }
  return out;
}

}  // namespace wire
}  // namespace coverage

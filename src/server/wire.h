#ifndef COVERAGE_SERVER_WIRE_H_
#define COVERAGE_SERVER_WIRE_H_

#include <string>

#include "common/status.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "engine/coverage_engine.h"
#include "enhancement/enhancement.h"
#include "mups/mups.h"
#include "pattern/pattern.h"
#include "server/json.h"
#include "service/coverage_service.h"

namespace coverage {
namespace wire {

/// The JSON wire format: one encoder/decoder per service request/response
/// type, used identically by the HTTP server, the blocking client's
/// callers, and `coverage_cli --json` — there is exactly one serializer, so
/// what the CLI prints is byte-for-byte what the server would send
/// (JsonValue objects are key-sorted, making the encoding canonical).
///
/// Encoding conventions:
///  - patterns are objects {"pattern": "X1X0", "label": "race=...", "level"}
///  - 64-bit counters are JSON integers (exact; see json.h)
///  - timing fields ("seconds") are doubles and obviously non-deterministic
///  - request decoders are strict: unknown members are rejected, so typos
///    fail loudly instead of silently running with defaults

// ---------------------------------------------------------------- encoders

json::JsonValue ToJson(const Pattern& pattern, const Schema& schema);
json::JsonValue ToJson(const MupSearchStats& stats);
json::JsonValue ToJson(const AuditResult& result, const Schema& schema);
json::JsonValue ToJson(const QueryBatchResult& result);
json::JsonValue ToJson(const CoveragePlan& plan, const Schema& schema);
json::JsonValue ToJson(const EngineUpdateStats& stats);
json::JsonValue ToJson(const IngestStats& stats);
json::JsonValue ToJson(const Schema& schema);

// ---------------------------------------------------------------- decoders

/// "auto" | "deepdiver" | "breaker" | "pattern-breaker" | "combiner" |
/// "pattern-combiner" | "apriori" | "naive" — the CLI's --algo vocabulary.
StatusOr<MupAlgorithm> AlgorithmFromName(const std::string& name);

/// {"tau": 30, "max_level": -1, "algorithm": "auto",
///  "dominance_mode": "bitmap" | "scan" | "none", "enumeration_limit": N}
/// — every member optional (struct defaults apply).
StatusOr<AuditRequest> AuditRequestFromJson(const json::JsonValue& v);

/// {"tau", "lambda", "rules": ["A in {x, y}"], "min_value_count",
///  "use_naive_greedy", "enumeration_limit", "mups": ["X1X0", ...]}.
StatusOr<EnhanceRequest> EnhanceRequestFromJson(const json::JsonValue& v,
                                                const Schema& schema);

/// Either {"queries": [{"pattern": "X1X0", "tau": 0}, ...]} or the
/// shorthand {"patterns": ["X1X0", ...], "tau": 0} (one tau for all).
StatusOr<QueryBatchRequest> QueryBatchRequestFromJson(
    const json::JsonValue& v, const Schema& schema);

/// {"attributes": [{"name": "race", "values": ["white", "black", ...]} |
///                 {"name": "A1", "cardinality": 3}, ...]}
/// (anonymous values "0".."c-1" for the cardinality form).
StatusOr<Schema> SchemaFromJson(const json::JsonValue& v);

/// {"rows": [[cell, ...], ...]} where each cell is the encoded integer or
/// the value's label string ("white"); every row must have one cell per
/// schema attribute.
StatusOr<Dataset> RowsFromJson(const json::JsonValue& v, const Schema& schema);

}  // namespace wire
}  // namespace coverage

#endif  // COVERAGE_SERVER_WIRE_H_

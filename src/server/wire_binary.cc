#include "server/wire_binary.h"

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "mups/mups.h"
#include "pattern/packed_pattern.h"
#include "pattern/pattern.h"
#include "persist/codec.h"

namespace coverage {
namespace wire {
namespace {

using persist::ByteReader;
using persist::ByteWriter;
using persist::Crc32c;

constexpr char kMagic[4] = {'C', 'V', 'W', '2'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kMsgAudit = 1;
constexpr std::uint8_t kMsgQueryBatch = 2;
constexpr std::uint8_t kMupsSparseCells = 1;
constexpr std::uint8_t kMupsPatternStrings = 2;
constexpr std::size_t kHeaderBytes = 4 + 1 + 1 + 4;

void PutStats(const MupSearchStats& stats, ByteWriter* out) {
  out->PutU64(stats.coverage_queries);
  out->PutU64(stats.nodes_generated);
  out->PutU64(stats.nodes_pruned);
  out->PutU64(static_cast<std::uint64_t>(stats.num_mups));
  out->PutU64(std::bit_cast<std::uint64_t>(stats.seconds));
}

Status GetStats(ByteReader* in, MupSearchStats* stats) {
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&stats->coverage_queries));
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&stats->nodes_generated));
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&stats->nodes_pruned));
  std::uint64_t num_mups = 0;
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&num_mups));
  stats->num_mups = static_cast<std::size_t>(num_mups);
  std::uint64_t seconds_bits = 0;
  COVERAGE_RETURN_IF_ERROR(in->GetU64(&seconds_bits));
  stats->seconds = std::bit_cast<double>(seconds_bits);
  return Status::OK();
}

}  // namespace

std::string FrameBinaryMessage(std::uint8_t msg_type, std::string payload) {
  ByteWriter head;
  for (char c : kMagic) head.PutU8(static_cast<std::uint8_t>(c));
  head.PutU8(kVersion);
  head.PutU8(msg_type);
  head.PutU32(Crc32c(payload));
  std::string out = head.Take();
  out += payload;
  return out;
}

/// Validates the frame header and returns the checksummed payload.
StatusOr<std::string_view> UnframeBinaryMessage(std::string_view bytes,
                                                std::uint8_t want_type) {
  if (bytes.size() < kHeaderBytes) {
    return Status::InvalidArgument("binary frame truncated");
  }
  ByteReader head(bytes.substr(0, kHeaderBytes));
  for (char c : kMagic) {
    std::uint8_t got = 0;
    COVERAGE_RETURN_IF_ERROR(head.GetU8(&got));
    if (got != static_cast<std::uint8_t>(c)) {
      return Status::InvalidArgument("bad binary frame magic");
    }
  }
  std::uint8_t version = 0;
  std::uint8_t msg_type = 0;
  std::uint32_t crc = 0;
  COVERAGE_RETURN_IF_ERROR(head.GetU8(&version));
  COVERAGE_RETURN_IF_ERROR(head.GetU8(&msg_type));
  COVERAGE_RETURN_IF_ERROR(head.GetU32(&crc));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported binary frame version " +
                                   std::to_string(version));
  }
  if (msg_type != want_type) {
    return Status::InvalidArgument("unexpected binary message type " +
                                   std::to_string(msg_type));
  }
  const std::string_view payload = bytes.substr(kHeaderBytes);
  if (Crc32c(payload) != crc) {
    return Status::InvalidArgument("binary frame checksum mismatch");
  }
  return payload;
}

void EncodeMupSearchStatsBinary(const MupSearchStats& stats,
                                ByteWriter* out) {
  PutStats(stats, out);
}

Status DecodeMupSearchStatsBinary(ByteReader* in, MupSearchStats* stats) {
  return GetStats(in, stats);
}

std::string EncodeAuditResultBinary(const AuditResult& result) {
  ByteWriter payload;
  payload.PutString(result.algorithm);
  payload.PutI64(result.max_level);
  payload.PutU64(result.num_rows);
  payload.PutString(result.planner_rationale);
  PutStats(result.stats, &payload);
  payload.PutU64(result.tau);
  if (result.packed.has_value()) {
    // Sparse-cell form: only the deterministic cells travel. MUPs live at
    // low levels by construction (the search stops at the first uncovered
    // ancestor), so this beats both the raw 256-bit words and the JSON
    // object by a wide margin.
    const PatternCodec& codec = result.packed->codec;
    const int num_attrs = codec.num_attributes();
    payload.PutU8(kMupsSparseCells);
    payload.PutU64(result.packed->mups.size());
    for (const PackedPattern& p : result.packed->mups) {
      payload.PutU16(static_cast<std::uint16_t>(p.level()));
      for (int attr = 0; attr < num_attrs; ++attr) {
        if (!codec.is_deterministic(p, attr)) continue;
        payload.PutU16(static_cast<std::uint16_t>(attr));
        payload.PutU16(static_cast<std::uint16_t>(codec.cell(p, attr)));
      }
    }
  } else {
    payload.PutU8(kMupsPatternStrings);
    payload.PutU64(result.mups.size());
    for (const Pattern& p : result.mups) {
      payload.PutString(p.ToString());
      payload.PutU16(static_cast<std::uint16_t>(p.level()));
    }
  }
  return FrameBinaryMessage(kMsgAudit, payload.Take());
}

StatusOr<AuditResult> DecodeAuditResultBinary(std::string_view bytes,
                                              const Schema& schema) {
  StatusOr<std::string_view> payload = UnframeBinaryMessage(bytes, kMsgAudit);
  COVERAGE_RETURN_IF_ERROR(payload.status());
  ByteReader in(*payload);

  AuditResult result;
  COVERAGE_RETURN_IF_ERROR(in.GetString(&result.algorithm));
  std::int64_t max_level = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetI64(&max_level));
  result.max_level = static_cast<int>(max_level);
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&result.num_rows));
  COVERAGE_RETURN_IF_ERROR(in.GetString(&result.planner_rationale));
  COVERAGE_RETURN_IF_ERROR(GetStats(&in, &result.stats));
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&result.tau));

  std::uint8_t kind = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetU8(&kind));
  std::uint64_t count = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&count));
  if (kind == kMupsSparseCells) {
    // 2 bytes of level prefix per MUP at minimum.
    COVERAGE_RETURN_IF_ERROR(in.Need(static_cast<std::size_t>(count) * 2));
    StatusOr<PatternCodec> codec = PatternCodec::Build(schema);
    COVERAGE_RETURN_IF_ERROR(codec.status());
    PackedMupSet packed;
    packed.codec = *codec;
    packed.mups.reserve(static_cast<std::size_t>(count));
    const PackedPattern root = packed.codec.Root();
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint16_t level = 0;
      COVERAGE_RETURN_IF_ERROR(in.GetU16(&level));
      PackedPattern p = root;
      for (std::uint16_t c = 0; c < level; ++c) {
        std::uint16_t attr = 0;
        std::uint16_t value = 0;
        COVERAGE_RETURN_IF_ERROR(in.GetU16(&attr));
        COVERAGE_RETURN_IF_ERROR(in.GetU16(&value));
        if (attr >= static_cast<std::uint16_t>(schema.num_attributes())) {
          return Status::InvalidArgument("mup cell attribute out of range");
        }
        if (value >= static_cast<std::uint16_t>(schema.cardinality(attr))) {
          return Status::InvalidArgument("mup cell value out of range");
        }
        p = packed.codec.WithCell(p, attr, static_cast<Value>(value));
      }
      // A repeated attribute would overwrite a cell and leave the level
      // short — reject rather than silently reshape the pattern.
      if (p.level() != static_cast<int>(level)) {
        return Status::InvalidArgument("mup cells inconsistent with level");
      }
      packed.mups.push_back(p);
    }
    result.packed = std::move(packed);
  } else if (kind == kMupsPatternStrings) {
    COVERAGE_RETURN_IF_ERROR(in.Need(static_cast<std::size_t>(count) * 10));
    result.mups.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string text;
      COVERAGE_RETURN_IF_ERROR(in.GetString(&text));
      StatusOr<Pattern> pattern = Pattern::Parse(text, schema);
      COVERAGE_RETURN_IF_ERROR(pattern.status());
      std::uint16_t level = 0;
      COVERAGE_RETURN_IF_ERROR(in.GetU16(&level));
      if (pattern->level() != static_cast<int>(level)) {
        return Status::InvalidArgument("mup level disagrees with pattern");
      }
      result.mups.push_back(std::move(*pattern));
    }
  } else {
    return Status::InvalidArgument("unknown mup encoding kind " +
                                   std::to_string(kind));
  }
  COVERAGE_RETURN_IF_ERROR(in.ExpectDone());
  return result;
}

std::string EncodeQueryBatchResultBinary(const QueryBatchResult& result) {
  ByteWriter payload;
  payload.PutU64(result.coverage_queries);
  payload.PutU64(std::bit_cast<std::uint64_t>(result.seconds));
  payload.PutU64(result.results.size());
  for (const QueryOutcome& q : result.results) {
    payload.PutU64(q.coverage);
    payload.PutU8(q.covered ? 1 : 0);
  }
  return FrameBinaryMessage(kMsgQueryBatch, payload.Take());
}

StatusOr<QueryBatchResult> DecodeQueryBatchResultBinary(
    std::string_view bytes) {
  StatusOr<std::string_view> payload = UnframeBinaryMessage(bytes, kMsgQueryBatch);
  COVERAGE_RETURN_IF_ERROR(payload.status());
  ByteReader in(*payload);

  QueryBatchResult result;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&result.coverage_queries));
  std::uint64_t seconds_bits = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&seconds_bits));
  result.seconds = std::bit_cast<double>(seconds_bits);
  std::uint64_t count = 0;
  COVERAGE_RETURN_IF_ERROR(in.GetU64(&count));
  COVERAGE_RETURN_IF_ERROR(in.Need(static_cast<std::size_t>(count) * 9));
  result.results.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    QueryOutcome q;
    COVERAGE_RETURN_IF_ERROR(in.GetU64(&q.coverage));
    std::uint8_t covered = 0;
    COVERAGE_RETURN_IF_ERROR(in.GetU8(&covered));
    if (covered > 1) {
      return Status::InvalidArgument("covered flag must be 0 or 1");
    }
    q.covered = covered != 0;
    result.results.push_back(q);
  }
  COVERAGE_RETURN_IF_ERROR(in.ExpectDone());
  return result;
}

}  // namespace wire
}  // namespace coverage

#ifndef COVERAGE_SERVER_WIRE_BINARY_H_
#define COVERAGE_SERVER_WIRE_BINARY_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "dataset/schema.h"
#include "service/coverage_service.h"

namespace coverage {
namespace wire {

/// Wire v2: a negotiated length-prefixed binary encoding for the two
/// hot-path response types (audit results and coverage-query batches).
/// Clients opt in per request with `Accept: application/x-coverage-bin`;
/// everything else — requests, errors, the control-plane routes — stays
/// JSON, so the binary path is a pure bandwidth/CPU optimisation with the
/// JSON encoding as the single source of semantic truth.
///
/// Frame layout (all integers little-endian, via persist::ByteWriter):
///
///   "CVW2"            4-byte magic
///   u8  version       currently 1
///   u8  msg_type      1 = audit result, 2 = query batch result
///   u32 crc32c        over the payload bytes that follow (persist::Crc32c)
///   payload           message-specific, below
///
/// Audit payload (msg_type 1):
///
///   string algorithm          (u64 length prefix + bytes)
///   i64    max_level
///   u64    num_rows
///   string planner_rationale
///   u64    coverage_queries   ┐
///   u64    nodes_generated    │ MupSearchStats
///   u64    nodes_pruned       │
///   u64    num_mups           │
///   u64    seconds            ┘ IEEE-754 bits of the double
///   u64    tau
///   u8     mup_kind           1 = sparse cells, 2 = pattern strings
///   u64    mup_count
///   per MUP, kind 1:  u16 level, then level x (u16 attr, u16 value) —
///     only the deterministic cells travel; the decoder rebuilds the packed
///     pattern from the schema's codec (Root + WithCell). A level-3 MUP
///     costs 14 bytes against ~100 for its JSON object.
///   per MUP, kind 2:  string pattern ("X1X0"), u16 level — the fallback
///     for schemas too wide for PatternCodec (the legacy representation).
///
/// Query batch payload (msg_type 2):
///
///   u64 coverage_queries
///   u64 seconds              IEEE-754 bits
///   u64 result_count
///   per result: u64 coverage, u8 covered
///
/// Decoders are strict, like every persist-layer reader: bad magic,
/// version, checksum, truncation, out-of-range cells, or trailing bytes
/// all fail with InvalidArgument. The round-trip contract is exact:
/// `wire::ToJson(Decode(Encode(r)))` is byte-identical to
/// `wire::ToJson(r)` (tests/wire_binary_test.cc fuzzes this).

/// The negotiated media type, as it appears in Accept / Content-Type.
inline constexpr char kBinaryContentType[] = "application/x-coverage-bin";

std::string EncodeAuditResultBinary(const AuditResult& result);

/// `schema` must be the schema the audit ran against (the decoder rebuilds
/// the pattern codec from it to expand sparse cells).
StatusOr<AuditResult> DecodeAuditResultBinary(std::string_view bytes,
                                              const Schema& schema);

std::string EncodeQueryBatchResultBinary(const QueryBatchResult& result);

StatusOr<QueryBatchResult> DecodeQueryBatchResultBinary(
    std::string_view bytes);

}  // namespace wire
}  // namespace coverage

#endif  // COVERAGE_SERVER_WIRE_BINARY_H_

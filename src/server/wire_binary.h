#ifndef COVERAGE_SERVER_WIRE_BINARY_H_
#define COVERAGE_SERVER_WIRE_BINARY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "dataset/schema.h"
#include "persist/codec.h"
#include "service/coverage_service.h"

namespace coverage {
namespace wire {

/// Wire v2: a negotiated length-prefixed binary encoding for the two
/// hot-path response types (audit results and coverage-query batches).
/// Clients opt in per request with `Accept: application/x-coverage-bin`;
/// everything else — requests, errors, the control-plane routes — stays
/// JSON, so the binary path is a pure bandwidth/CPU optimisation with the
/// JSON encoding as the single source of semantic truth.
///
/// Frame layout (all integers little-endian, via persist::ByteWriter):
///
///   "CVW2"            4-byte magic
///   u8  version       currently 1
///   u8  msg_type      1 = audit result, 2 = query batch result
///   u32 crc32c        over the payload bytes that follow (persist::Crc32c)
///   payload           message-specific, below
///
/// Audit payload (msg_type 1):
///
///   string algorithm          (u64 length prefix + bytes)
///   i64    max_level
///   u64    num_rows
///   string planner_rationale
///   u64    coverage_queries   ┐
///   u64    nodes_generated    │ MupSearchStats
///   u64    nodes_pruned       │
///   u64    num_mups           │
///   u64    seconds            ┘ IEEE-754 bits of the double
///   u64    tau
///   u8     mup_kind           1 = sparse cells, 2 = pattern strings
///   u64    mup_count
///   per MUP, kind 1:  u16 level, then level x (u16 attr, u16 value) —
///     only the deterministic cells travel; the decoder rebuilds the packed
///     pattern from the schema's codec (Root + WithCell). A level-3 MUP
///     costs 14 bytes against ~100 for its JSON object.
///   per MUP, kind 2:  string pattern ("X1X0"), u16 level — the fallback
///     for schemas too wide for PatternCodec (the legacy representation).
///
/// Query batch payload (msg_type 2):
///
///   u64 coverage_queries
///   u64 seconds              IEEE-754 bits
///   u64 result_count
///   per result: u64 coverage, u8 covered
///
/// Decoders are strict, like every persist-layer reader: bad magic,
/// version, checksum, truncation, out-of-range cells, or trailing bytes
/// all fail with InvalidArgument. The round-trip contract is exact:
/// `wire::ToJson(Decode(Encode(r)))` is byte-identical to
/// `wire::ToJson(r)` (tests/wire_binary_test.cc fuzzes this).

/// The negotiated media type, as it appears in Accept / Content-Type.
inline constexpr char kBinaryContentType[] = "application/x-coverage-bin";

std::string EncodeAuditResultBinary(const AuditResult& result);

/// `schema` must be the schema the audit ran against (the decoder rebuilds
/// the pattern codec from it to expand sparse cells).
StatusOr<AuditResult> DecodeAuditResultBinary(std::string_view bytes,
                                              const Schema& schema);

std::string EncodeQueryBatchResultBinary(const QueryBatchResult& result);

StatusOr<QueryBatchResult> DecodeQueryBatchResultBinary(
    std::string_view bytes);

/// Shared CVW2 framing, reused by the cluster's internal shard-merge
/// messages (src/cluster/cluster_wire.h): magic + version + msg_type + a
/// CRC32C over the payload that follows. Message types 1–2 are the public
/// responses above; the cluster layer owns types 3+. Every framed message —
/// public or internal — goes through this one pair, so the strictness rules
/// (bad magic / version / checksum / type → InvalidArgument) hold uniformly.
std::string FrameBinaryMessage(std::uint8_t msg_type, std::string payload);
StatusOr<std::string_view> UnframeBinaryMessage(std::string_view bytes,
                                                std::uint8_t want_type);

/// The MupSearchStats field block (five u64s, seconds as IEEE-754 bits),
/// shared between the audit payload and the cluster's candidate messages.
void EncodeMupSearchStatsBinary(const MupSearchStats& stats,
                                persist::ByteWriter* out);
Status DecodeMupSearchStatsBinary(persist::ByteReader* in,
                                  MupSearchStats* stats);

}  // namespace wire
}  // namespace coverage

#endif  // COVERAGE_SERVER_WIRE_BINARY_H_

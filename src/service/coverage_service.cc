#include "service/coverage_service.h"

#include <fstream>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "persist/durable_engine.h"
#include "service/pool_arena.h"
#include "datagen/adversarial.h"
#include "datagen/airbnb.h"
#include "datagen/bluenile.h"
#include "datagen/compas.h"
#include "dataset/csv_stream.h"

namespace coverage {

namespace {

Status CheckThreads(int num_threads) {
  if (num_threads < 1 || num_threads > 1024) {
    return Status::InvalidArgument("num_threads must be within [1, 1024], got " +
                                   std::to_string(num_threads));
  }
  return Status::OK();
}

Status CheckTau(std::uint64_t tau) {
  if (tau == 0) {
    return Status::InvalidArgument(
        "tau must be >= 1 (Definition 3: a pattern is covered when at least "
        "tau tuples match it)");
  }
  return Status::OK();
}

/// Answers one probe through `ctx`. Exact requests (tau == 0) pay for the
/// full count; threshold requests use the early-exiting kernel and leave
/// `coverage` unset by design.
QueryOutcome AnswerOne(const CoverageOracle& oracle, const QueryRequest& q,
                       QueryContext& ctx) {
  QueryOutcome out;
  if (q.tau > 0) {
    out.covered = oracle.CoverageAtLeast(q.pattern, q.tau, ctx);
  } else {
    out.coverage = oracle.Coverage(q.pattern, ctx);
    out.covered = out.coverage >= 1;
  }
  return out;
}

/// The shared fan-out of both query surfaces: N probes distributed over the
/// leased pool in dynamically balanced chunks, one QueryContext per worker,
/// results written to their request slot (so the output order is the request
/// order no matter how workers interleave). A null pool — the arena's
/// over-budget inline lease — answers serially on the caller's thread.
QueryBatchResult RunQueryBatch(const CoverageOracle& oracle,
                               const std::vector<QueryRequest>& queries,
                               ThreadPool* pool) {
  Stopwatch timer;
  QueryBatchResult out;
  out.results.resize(queries.size());
  const int workers = pool != nullptr ? pool->num_workers() : 1;
  std::vector<QueryContext> contexts(static_cast<std::size_t>(workers));
  if (workers > 1 && queries.size() > 1) {
    pool->ParallelFor(queries.size(), /*chunk=*/8,
                      [&](int worker, std::size_t i) {
                        out.results[i] = AnswerOne(
                            oracle, queries[i],
                            contexts[static_cast<std::size_t>(worker)]);
                      });
  } else {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out.results[i] = AnswerOne(oracle, queries[i], contexts[0]);
    }
  }
  for (const QueryContext& ctx : contexts) {
    out.coverage_queries += ctx.num_queries();
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

std::unique_ptr<PoolArena> MakeArena(
    int num_threads, int max_total_threads,
    const std::shared_ptr<ThreadBudget>& shared_budget) {
  return std::make_unique<PoolArena>(
      num_threads, shared_budget != nullptr
                       ? shared_budget
                       : std::make_shared<ThreadBudget>(max_total_threads));
}

}  // namespace

// ---------------------------------------------------------------- Validate()

Status ServiceOptions::Validate() const {
  COVERAGE_RETURN_IF_ERROR(CheckThreads(num_threads));
  if (max_total_threads < 0) {
    return Status::InvalidArgument(
        "max_total_threads must be >= 0 (0 = unlimited)");
  }
  if (max_cardinality < 1) {
    return Status::InvalidArgument("max_cardinality must be positive");
  }
  if (csv_chunk_rows == 0) {
    return Status::InvalidArgument("csv_chunk_rows must be positive");
  }
  return Status::OK();
}

Status DatagenSpec::Validate() const {
  if (name != "compas" && name != "airbnb" && name != "bluenile" &&
      name != "diagonal") {
    return Status::InvalidArgument(
        "unknown datagen spec '" + name +
        "' (expected compas | airbnb | bluenile | diagonal)");
  }
  if (name == "airbnb" && (d < 1 || d > 36)) {
    return Status::InvalidArgument("airbnb width d must be within [1, 36]");
  }
  if (name == "diagonal" && (d < 1 || d > 64)) {
    return Status::InvalidArgument("diagonal size d must be within [1, 64]");
  }
  return Status::OK();
}

Status AuditRequest::Validate() const {
  COVERAGE_RETURN_IF_ERROR(CheckTau(tau));
  if (max_level < -1) {
    return Status::InvalidArgument(
        "max_level must be -1 (unlimited) or >= 0");
  }
  if (enumeration_limit == 0) {
    return Status::InvalidArgument("enumeration_limit must be positive");
  }
  return Status::OK();
}

Status EnhanceRequest::Validate() const {
  COVERAGE_RETURN_IF_ERROR(CheckTau(tau));
  if (lambda < 0) {
    return Status::InvalidArgument("lambda must be >= 0");
  }
  if (!rules.empty() && validator != nullptr) {
    return Status::InvalidArgument(
        "pass either rule strings or a pre-built validator, not both");
  }
  if (enumeration_limit == 0) {
    return Status::InvalidArgument("enumeration_limit must be positive");
  }
  return Status::OK();
}

Status QueryBatchRequest::Validate(const Schema& schema) const {
  const int d = schema.num_attributes();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Pattern& p = queries[i].pattern;
    if (p.num_attributes() != d) {
      return Status::InvalidArgument(
          "query " + std::to_string(i) + ": pattern " + p.ToString() +
          " has " + std::to_string(p.num_attributes()) + " cells, schema has " +
          std::to_string(d) + " attributes");
    }
    for (int a = 0; a < d; ++a) {
      const Value v = p.cell(a);
      if (v != kWildcard &&
          (v < 0 || v >= static_cast<Value>(schema.cardinality(a)))) {
        return Status::InvalidArgument(
            "query " + std::to_string(i) + ": pattern " + p.ToString() +
            " fixes attribute " + schema.attribute(a).name +
            " to out-of-range value " + std::to_string(v));
      }
    }
  }
  return Status::OK();
}

Status CoverageService::SessionOptions::Validate() const {
  COVERAGE_RETURN_IF_ERROR(CheckTau(tau));
  COVERAGE_RETURN_IF_ERROR(CheckThreads(num_threads));
  if (max_level < -1) {
    return Status::InvalidArgument(
        "max_level must be -1 (unlimited) or >= 0");
  }
  if (max_total_threads < 0) {
    return Status::InvalidArgument(
        "max_total_threads must be >= 0 (0 = unlimited)");
  }
  return Status::OK();
}

// --------------------------------------------------------------- ingestion

CoverageService::CoverageService(CoverageService&&) noexcept = default;
CoverageService& CoverageService::operator=(CoverageService&&) noexcept =
    default;
CoverageService::~CoverageService() = default;

CoverageService::Session::Session(Session&&) noexcept = default;
CoverageService::Session& CoverageService::Session::operator=(
    Session&&) noexcept = default;
CoverageService::Session::~Session() = default;

CoverageService::CoverageService(std::unique_ptr<AggregatedData> agg,
                                 ServiceOptions options)
    : options_(options),
      agg_(std::move(agg)),
      oracle_(std::make_unique<BitmapCoverage>(*agg_)),
      arena_(MakeArena(options.num_threads, options.max_total_threads,
                       options.thread_budget)) {}

StatusOr<CoverageService> CoverageService::FromDataset(
    const Dataset& data, ServiceOptions options) {
  COVERAGE_RETURN_IF_ERROR(options.Validate());
  return CoverageService(std::make_unique<AggregatedData>(data), options);
}

StatusOr<CoverageService> CoverageService::FromCsv(std::istream& is,
                                                   ServiceOptions options) {
  COVERAGE_RETURN_IF_ERROR(options.Validate());
  std::vector<Value> encoded;
  auto schema = InferSchemaFromCsv(is, options.max_cardinality, &encoded);
  if (!schema.ok()) return schema.status();
  auto agg = std::make_unique<AggregatedData>(*schema);
  const auto d = static_cast<std::size_t>(schema->num_attributes());
  if (d > 0) {
    for (std::size_t offset = 0; offset < encoded.size(); offset += d) {
      agg->AppendRow(std::span<const Value>(encoded.data() + offset, d));
    }
  }
  return CoverageService(std::move(agg), options);
}

StatusOr<CoverageService> CoverageService::FromCsvFile(
    const std::string& path, ServiceOptions options) {
  COVERAGE_RETURN_IF_ERROR(options.Validate());
  std::ifstream schema_pass(path);
  if (!schema_pass.good()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  auto schema = InferSchemaFromCsv(schema_pass, options.max_cardinality);
  if (!schema.ok()) return schema.status();

  std::ifstream ingest_pass(path);
  if (!ingest_pass.good()) {
    return Status::NotFound("cannot reopen '" + path +
                            "' for the ingest pass");
  }
  auto reader = CsvChunkReader::Open(ingest_pass, *schema);
  if (!reader.ok()) return reader.status();
  auto agg = std::make_unique<AggregatedData>(*schema);
  for (;;) {
    Dataset chunk(*schema);
    auto read = reader->ReadChunk(chunk, options.csv_chunk_rows);
    if (!read.ok()) return read.status();
    if (*read == 0) break;
    agg->AppendRows(chunk);
  }
  return CoverageService(std::move(agg), options);
}

StatusOr<CoverageService> CoverageService::FromSpec(const DatagenSpec& spec,
                                                    ServiceOptions options) {
  COVERAGE_RETURN_IF_ERROR(options.Validate());
  COVERAGE_RETURN_IF_ERROR(spec.Validate());
  Dataset data{Schema()};
  if (spec.name == "compas") {
    data = datagen::MakeCompas(spec.n == 0 ? 6889 : spec.n, spec.seed).data;
  } else if (spec.name == "airbnb") {
    data = datagen::MakeAirbnb(spec.n == 0 ? 10000 : spec.n, spec.d,
                               spec.seed);
  } else if (spec.name == "bluenile") {
    data = datagen::MakeBlueNile(spec.n == 0 ? 116300 : spec.n, spec.seed);
  } else {
    data = datagen::MakeDiagonal(spec.d);
  }
  return CoverageService(std::make_unique<AggregatedData>(data), options);
}

// ------------------------------------------------------------ entry points

StatusOr<AuditResult> CoverageService::Audit(const AuditRequest& request,
                                             obs::Trace* trace) const {
  COVERAGE_RETURN_IF_ERROR(request.Validate());

  MupSearchOptions search;
  search.tau = request.tau;
  search.max_level = request.max_level;
  search.num_threads = options_.num_threads;
  search.enumeration_limit = request.enumeration_limit;
  search.dominance_mode = request.dominance_mode;
  search.trace = trace;

  AuditResult result;
  MupAlgorithm algorithm = request.algorithm;
  // Workers the planner reserved from the shared budget for this audit;
  // released when the search returns (the search itself does not charge
  // the budget — the plan stage is its accounting point).
  struct WorkerReservation {
    ThreadBudget* budget = nullptr;
    int spawned = 0;
    ~WorkerReservation() {
      if (budget != nullptr) budget->Release(spawned);
    }
  } reservation;
  if (algorithm == MupAlgorithm::kAuto) {
    obs::ScopedStage stage(trace, "plan");
    const PlannerDecision decision = PlanMupSearch(*agg_, search);
    algorithm = decision.algorithm;
    search.max_level = decision.max_level;
    result.planner_rationale = decision.rationale;
    search.num_threads = decision.num_threads;
    if (decision.num_threads > 1) {
      // The planner's pick still has to fit the process-wide spawn budget
      // shared with every query pool and session (a search of n workers
      // spawns n - 1; the caller is worker 0). Degrades toward serial
      // under a full house instead of oversubscribing.
      reservation.budget = arena_->budget().get();
      reservation.spawned =
          reservation.budget->TryReserve(decision.num_threads - 1);
      search.num_threads = 1 + reservation.spawned;
      if (search.num_threads != decision.num_threads) {
        result.planner_rationale +=
            "; thread budget granted " + std::to_string(search.num_threads) +
            " of " + std::to_string(decision.num_threads) + " workers";
      }
    }
  }
  if (PatternCodec::Build(schema()).ok()) {
    auto packed = [&] {
      obs::ScopedStage stage(trace, "search");
      return FindMupsPacked(algorithm, *oracle_, search, &result.stats);
    }();
    if (!packed.ok()) return packed.status();
    result.packed = std::move(*packed);
    if (request.materialize_patterns) {
      result.mups = result.packed->Materialize();
    }
  } else {
    // Schema too wide for the packed representation: legacy search, always
    // materialized.
    auto mups = [&] {
      obs::ScopedStage stage(trace, "search");
      return FindMups(algorithm, *oracle_, search, &result.stats);
    }();
    if (!mups.ok()) return mups.status();
    result.mups = std::move(*mups);
  }
  result.algorithm = ToString(algorithm);
  result.max_level = search.max_level;
  result.tau = request.tau;
  result.num_rows = agg_->total_count();
  return result;
}

StatusOr<CoveragePlan> CoverageService::Enhance(
    const EnhanceRequest& request) const {
  COVERAGE_RETURN_IF_ERROR(request.Validate());
  if (request.lambda > schema().num_attributes()) {
    return Status::InvalidArgument(
        "lambda must be within [0, " +
        std::to_string(schema().num_attributes()) + "] for this schema");
  }

  ValidationOracle parsed;
  const ValidationOracle* validator = request.validator;
  for (const std::string& text : request.rules) {
    auto rule = ValidationRule::Parse(text, schema());
    if (!rule.ok()) {
      return Status::InvalidArgument("bad rule '" + text +
                                     "': " + rule.status().message());
    }
    parsed.AddRule(*rule);
  }
  if (!request.rules.empty()) validator = &parsed;

  std::vector<Pattern> mups;
  if (request.mups.has_value()) {
    mups = *request.mups;
  } else {
    // Discover the material MUPs (level <= lambda) with the planner's pick.
    MupSearchOptions search;
    search.tau = request.tau;
    search.max_level = request.lambda;
    search.num_threads = options_.num_threads;
    search.enumeration_limit = request.enumeration_limit;
    auto found = FindMups(MupAlgorithm::kAuto, *oracle_, search);
    if (!found.ok()) return found.status();
    mups = std::move(*found);
  }

  EnhancementOptions eopts;
  eopts.tau = request.tau;
  eopts.lambda = request.lambda;
  eopts.oracle = validator;
  eopts.use_naive_greedy = request.use_naive_greedy;
  eopts.enumeration_limit = request.enumeration_limit;
  if (request.min_value_count > 0) {
    return PlanCoverageEnhancementByValueCount(*oracle_, mups,
                                               request.min_value_count, eopts);
  }
  return PlanCoverageEnhancement(*oracle_, mups, eopts);
}

StatusOr<QueryOutcome> CoverageService::Query(
    const QueryRequest& request) const {
  QueryBatchRequest one;
  one.queries.push_back(request);
  COVERAGE_RETURN_IF_ERROR(one.Validate(schema()));
  QueryContext ctx;
  return AnswerOne(*oracle_, request, ctx);
}

StatusOr<QueryBatchResult> CoverageService::QueryBatch(
    const QueryBatchRequest& request, obs::Trace* trace) const {
  COVERAGE_RETURN_IF_ERROR(request.Validate(schema()));
  const PoolArena::Lease lease = arena_->Acquire();
  obs::ScopedStage stage(trace, "query");
  return RunQueryBatch(*oracle_, request.queries, lease.pool());
}

// ----------------------------------------------------------------- Session

namespace {

EngineOptions EngineOptionsFrom(const CoverageService::SessionOptions& o) {
  EngineOptions eopts;
  eopts.tau = o.tau;
  eopts.max_level = o.max_level;
  eopts.num_threads = o.num_threads;
  eopts.dominance_mode = o.dominance_mode;
  eopts.window_max_rows = o.window_max_rows;
  eopts.window_max_epochs = o.window_max_epochs;
  eopts.durability = o.durability;
  return eopts;
}

persist::DurableEngineOptions DurableOptionsFrom(
    const CoverageService::SessionOptions& o) {
  persist::DurableEngineOptions dopts;
  dopts.fsync_histogram = o.fsync_histogram;
  dopts.checkpoint_histogram = o.checkpoint_histogram;
  return dopts;
}

}  // namespace

StatusOr<CoverageService::Session> CoverageService::OpenSession(
    const Schema& schema, const SessionOptions& options) {
  COVERAGE_RETURN_IF_ERROR(options.Validate());
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument(
        "a session needs a schema with at least one attribute");
  }
  return Session(schema, options);
}

StatusOr<CoverageService::Session> CoverageService::OpenDurableSession(
    const std::string& dir, const Schema& schema,
    const SessionOptions& options) {
  COVERAGE_RETURN_IF_ERROR(options.Validate());
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument(
        "a session needs a schema with at least one attribute");
  }
  auto durable = persist::DurableEngine::Create(
      dir, schema, EngineOptionsFrom(options), DurableOptionsFrom(options));
  if (!durable.ok()) return durable.status();
  return Session(std::move(*durable), options);
}

StatusOr<CoverageService::Session> CoverageService::ReopenDurableSession(
    const std::string& dir, const SessionOptions& options) {
  COVERAGE_RETURN_IF_ERROR(options.Validate());
  auto durable = persist::DurableEngine::Recover(
      dir, EngineOptionsFrom(options), DurableOptionsFrom(options));
  if (!durable.ok()) return durable.status();

  // The stored problem knobs define the session; reflect them back so
  // Audit() reports the tau the engine actually maintains.
  SessionOptions effective = options;
  const EngineOptions& stored = (*durable)->engine().options();
  effective.tau = stored.tau;
  effective.max_level = stored.max_level;
  effective.dominance_mode = stored.dominance_mode;
  effective.window_max_rows = stored.window_max_rows;
  effective.window_max_epochs = stored.window_max_epochs;
  return Session(std::move(*durable), effective);
}

CoverageService::Session::Session(Schema schema, const SessionOptions& options)
    : options_(options),
      arena_(MakeArena(options.num_threads, options.max_total_threads,
                       options.thread_budget)) {
  engine_ = std::make_unique<CoverageEngine>(std::move(schema),
                                             EngineOptionsFrom(options));
}

CoverageService::Session::Session(
    std::unique_ptr<persist::DurableEngine> durable,
    const SessionOptions& options)
    : options_(options),
      durable_(std::move(durable)),
      arena_(MakeArena(options.num_threads, options.max_total_threads,
                       options.thread_budget)) {}

CoverageEngine& CoverageService::Session::engine() {
  return durable_ != nullptr ? durable_->engine() : *engine_;
}

const CoverageEngine& CoverageService::Session::engine() const {
  return durable_ != nullptr ? durable_->engine() : *engine_;
}

const Schema& CoverageService::Session::schema() const {
  return engine().schema();
}

const CoverageService::SessionOptions& CoverageService::Session::options()
    const {
  return options_;
}

StatusOr<IngestStats> CoverageService::Session::IngestCsv(
    std::istream& is, std::size_t chunk_rows) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be positive");
  }
  if (durable_ == nullptr) {
    return engine_->IngestCsvChunked(is, chunk_rows);
  }
  // Durable path: each chunk goes through the WAL, so a crash mid-ingest
  // loses at most the in-flight chunk (none under durability=fsync).
  auto reader = CsvChunkReader::Open(is, schema());
  if (!reader.ok()) return reader.status();
  IngestStats stats;
  for (;;) {
    Dataset chunk(schema());
    Stopwatch read_timer;
    auto got = reader->ReadChunk(chunk, chunk_rows);
    if (!got.ok()) return got.status();
    stats.read_seconds += read_timer.ElapsedSeconds();
    if (*got == 0) break;
    EngineUpdateStats us;
    COVERAGE_RETURN_IF_ERROR(durable_->Append(chunk, &us));
    ++stats.chunks;
    stats.rows += *got;
    stats.peak_chunk_rows = std::max(stats.peak_chunk_rows, *got);
    stats.update_seconds += us.seconds;
    stats.coverage_queries += us.coverage_queries;
  }
  return stats;
}

StatusOr<EngineUpdateStats> CoverageService::Session::Append(
    const Dataset& rows, obs::Trace* trace) {
  EngineUpdateStats stats;
  if (durable_ != nullptr) {
    COVERAGE_RETURN_IF_ERROR(durable_->Append(rows, &stats, trace));
  } else {
    obs::ScopedStage stage(trace, "engine_update");
    COVERAGE_RETURN_IF_ERROR(engine_->AppendRows(rows, &stats));
  }
  return stats;
}

StatusOr<EngineUpdateStats> CoverageService::Session::Retract(
    const Dataset& rows, obs::Trace* trace) {
  EngineUpdateStats stats;
  if (durable_ != nullptr) {
    COVERAGE_RETURN_IF_ERROR(durable_->Retract(rows, &stats, trace));
  } else {
    obs::ScopedStage stage(trace, "engine_update");
    COVERAGE_RETURN_IF_ERROR(engine_->RetractRows(rows, &stats));
  }
  return stats;
}

Status CoverageService::Session::Checkpoint() {
  if (durable_ == nullptr) {
    return Status::InvalidArgument(
        "Checkpoint() requires a durable session (OpenDurableSession)");
  }
  return durable_->Checkpoint();
}

AuditResult CoverageService::Session::Audit(obs::Trace* trace) const {
  obs::ScopedStage stage(trace, "audit");
  const auto snap = engine().snapshot();
  AuditResult result;
  result.mups = snap->mups();
  result.stats.num_mups = result.mups.size();
  result.algorithm = "ENGINE-INCREMENTAL";
  result.planner_rationale =
      "epoch " + std::to_string(snap->epoch()) +
      " snapshot: MUPs maintained incrementally per append/retract, no "
      "search ran for this audit";
  result.max_level = options_.max_level;
  result.tau = options_.tau;
  result.num_rows = snap->num_rows();
  return result;
}

StatusOr<QueryBatchResult> CoverageService::Session::QueryBatch(
    const QueryBatchRequest& request, obs::Trace* trace) const {
  COVERAGE_RETURN_IF_ERROR(request.Validate(schema()));
  // One snapshot for the whole batch: every probe answers for the same
  // epoch even if a writer advances the engine mid-batch.
  const auto snap = engine().snapshot();
  const PoolArena::Lease lease = arena_->Acquire();
  obs::ScopedStage stage(trace, "query");
  return RunQueryBatch(snap->oracle(), request.queries, lease.pool());
}

std::uint64_t CoverageService::Session::epoch() const {
  return engine().epoch();
}

std::uint64_t CoverageService::Session::num_rows() const {
  return engine().num_rows();
}

}  // namespace coverage

#ifndef COVERAGE_SERVICE_COVERAGE_SERVICE_H_
#define COVERAGE_SERVICE_COVERAGE_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/coverage_oracle.h"
#include "dataset/aggregate.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "engine/coverage_engine.h"
#include "enhancement/enhancement.h"
#include "enhancement/report.h"
#include "enhancement/validation.h"
#include "mups/mups.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/pattern.h"

namespace coverage {

class PoolArena;
class ThreadBudget;

namespace persist {
class DurableEngine;
}  // namespace persist

/// The serving façade over the paper's pipeline. A CoverageService owns one
/// immutable indexed dataset — ingestion (in-memory Dataset, streamed CSV,
/// or a datagen spec), aggregation, the Appendix-A oracle, and the worker
/// pool — and answers typed requests:
///
///     request struct  ──Validate()──▶  StatusOr<response struct>
///
///   AuditRequest       → AuditResult       (Problem 1: MUPs + stats +
///                                           the planner's decision)
///   EnhanceRequest     → CoveragePlan      (Problem 2: acquisition plan)
///   QueryRequest       → QueryOutcome      (one cov(P) probe)
///   QueryBatchRequest  → QueryBatchResult  (N probes fanned out over the
///                                           pool, deterministic order)
///
/// Every entry point validates its request and returns StatusOr<> — no raw
/// bools, no silent defaults. The low-level headers (BitmapCoverage,
/// FindMups*, PlanCoverageEnhancement, CoverageEngine) stay public for power
/// users; the façade is the stable serving surface on top of them.
///
/// For mutable data (append / retract / sliding-window audits) open a
/// CoverageService::Session, which wraps the incremental CoverageEngine
/// behind the same request/response types.

/// Service-wide configuration, fixed at construction.
struct ServiceOptions {
  /// Worker count of the MUP searches and of each leased query pool.
  int num_threads = 1;

  /// Cap on *spawned* worker threads across every query pool drawing from
  /// this service's budget (a pool of num_threads spawns num_threads - 1;
  /// the caller is worker 0). 0 = unlimited. Concurrent QueryBatch calls
  /// each lease their own pool from a PoolArena until the cap is reached,
  /// then degrade to inline execution — they never serialise on a shared
  /// pool and never block each other. Ignored when `thread_budget` is set.
  int max_total_threads = 0;

  /// Share one budget across services and sessions (the coverage_server
  /// threads a single budget through its whole session registry, making
  /// `max_total_threads` genuinely process-wide). Null = private budget.
  std::shared_ptr<ThreadBudget> thread_budget;

  /// Schema-inference cap per CSV column (§II preprocessing: bucketize
  /// continuous attributes first).
  int max_cardinality = 100;

  /// Rows per chunk for the file-streaming ingestion path (FromCsvFile);
  /// peak decoded-row memory is one chunk.
  std::size_t csv_chunk_rows = 65536;

  Status Validate() const;
};

/// A synthetic-dataset spec: the generators behind the paper's §V
/// experiments, addressable by name so services can be spun up without any
/// CSV on disk (tests, benchmarks, canary traffic).
struct DatagenSpec {
  std::string name;    ///< "compas" | "airbnb" | "bluenile" | "diagonal"
  std::size_t n = 0;   ///< row count; 0 = the per-dataset default
  int d = 13;          ///< airbnb attribute width / diagonal size
  std::uint64_t seed = 42;

  Status Validate() const;
};

/// Problem 1 as a request: identify the maximal uncovered patterns.
struct AuditRequest {
  /// Coverage threshold τ (Definition 3). Must be >= 1.
  std::uint64_t tau = 30;

  /// When >= 0, limit discovery to MUPs of level <= max_level (§V-C3).
  int max_level = -1;

  /// kAuto (the default) lets the §V planner pick PATTERN-BREAKER vs
  /// DEEPDIVER from the schema and the aggregated-combination count; any
  /// concrete algorithm forces that choice.
  MupAlgorithm algorithm = MupAlgorithm::kAuto;

  /// Dominance strategy for DEEPDIVER (ablation modes; identical output).
  MupSearchOptions::DominanceMode dominance_mode =
      MupSearchOptions::DominanceMode::kBitmapIndex;

  /// Guard for the exponential enumerations (naive / combiner / apriori).
  std::uint64_t enumeration_limit = std::uint64_t{1} << 26;

  /// When false, AuditResult::mups is left empty and the MUP set is returned
  /// only in packed form (AuditResult::packed) — callers that re-encode the
  /// result (the HTTP server, the CLI's --json path) skip materializing a
  /// vector<int> per MUP. Not part of the wire protocol: the server sets it
  /// itself. Ignored (patterns always materialized) when the schema is too
  /// wide for the packed representation.
  bool materialize_patterns = true;

  Status Validate() const;
};

/// Problem-1 response: the MUP set plus everything an operator needs to see
/// *how* the answer was produced.
struct AuditResult {
  /// Sorted lexicographically. Empty when the request set
  /// materialize_patterns = false and `packed` carries the set instead.
  std::vector<Pattern> mups;

  /// The same MUP set in packed form (plus its codec), present whenever the
  /// search ran on the packed representation. The wire encoder renders
  /// pattern strings straight from this, byte-identical to the legacy path.
  std::optional<PackedMupSet> packed;

  MupSearchStats stats;

  /// Display name of the algorithm that actually ran (e.g. "DEEPDIVER") —
  /// for kAuto requests this is the planner's pick, recorded here for
  /// observability.
  std::string algorithm;

  /// The effective level cap the search ran with (the planner may clamp an
  /// unlimited request on wide schemas; -1 = unlimited).
  int max_level = -1;

  /// The planner's one-line justification; empty unless the request asked
  /// for kAuto.
  std::string planner_rationale;

  std::uint64_t tau = 0;       ///< echoed from the request
  std::uint64_t num_rows = 0;  ///< dataset size the audit ran against

  /// The §I "nutritional label" built from this result.
  CoverageReport Report(const Schema& schema,
                        std::size_t max_examples = 10) const {
    return BuildCoverageReport(schema, mups, num_rows, tau, max_examples);
  }
};

/// Problem 2 as a request: plan the cheapest acquisition reaching maximum
/// covered level λ (or, with min_value_count > 0, the Definition-7
/// value-count variant).
struct EnhanceRequest {
  std::uint64_t tau = 30;
  int lambda = 1;

  /// Validation rules as strings ("age in {<20} and marital in {married}"),
  /// parsed against the service's schema. Mutually exclusive with
  /// `validator`.
  std::vector<std::string> rules;

  /// A pre-built feasibility oracle (power users); must outlive the call.
  const ValidationOracle* validator = nullptr;

  /// When set, plan from these MUPs (e.g. the result of an earlier Audit,
  /// minus patterns a domain expert discarded). When absent the service
  /// discovers the material MUPs itself (planner-chosen algorithm, level
  /// capped at lambda).
  std::optional<std::vector<Pattern>> mups;

  /// > 0 switches to the value-count variant: every uncovered pattern whose
  /// value count is >= this must reach τ (Definition 7).
  std::uint64_t min_value_count = 0;

  /// Use the per-iteration full enumeration instead of the indexed GREEDY
  /// (the Fig. 17 baseline).
  bool use_naive_greedy = false;

  std::uint64_t enumeration_limit = std::uint64_t{1} << 26;

  Status Validate() const;
};

/// One coverage probe. tau == 0 asks for the exact count; tau > 0 asks the
/// (much cheaper, early-exiting) threshold question cov(P) >= tau.
struct QueryRequest {
  Pattern pattern;
  std::uint64_t tau = 0;
};

/// A batch of probes answered concurrently. Results come back in request
/// order regardless of worker interleaving.
struct QueryBatchRequest {
  std::vector<QueryRequest> queries;

  /// Width- and range-checks every pattern against `schema`.
  Status Validate(const Schema& schema) const;
};

/// Answer to one QueryRequest.
struct QueryOutcome {
  /// Exact count for tau == 0 requests; 0 (not computed — the threshold
  /// kernel early-exits on purpose) for tau > 0 requests.
  std::uint64_t coverage = 0;

  /// cov(P) >= tau for tau > 0 requests; cov(P) >= 1 for exact requests.
  bool covered = false;
};

struct QueryBatchResult {
  /// results[i] answers queries[i].
  std::vector<QueryOutcome> results;

  std::uint64_t coverage_queries = 0;  ///< oracle calls issued
  double seconds = 0.0;                ///< wall-clock for the whole batch
};

class CoverageService {
 public:
  CoverageService(CoverageService&&) noexcept;
  CoverageService& operator=(CoverageService&&) noexcept;
  ~CoverageService();  // out-of-line: ThreadPool is incomplete here

  /// Options for a Session (the mutable-data surface); mirrors
  /// EngineOptions plus the search knobs fixed for the session's lifetime.
  struct SessionOptions {
    std::uint64_t tau = 30;
    int max_level = -1;
    int num_threads = 1;
    MupSearchOptions::DominanceMode dominance_mode =
        MupSearchOptions::DominanceMode::kBitmapIndex;

    /// Sliding-window limits (see EngineOptions); 0 = unbounded.
    std::size_t window_max_rows = 0;
    std::size_t window_max_epochs = 0;

    /// Query-pool budgeting, exactly as in ServiceOptions: each session
    /// owns a PoolArena so concurrent QueryBatch calls fan out instead of
    /// serialising; `thread_budget` (when set) shares one process-wide cap
    /// across sessions.
    int max_total_threads = 0;
    std::shared_ptr<ThreadBudget> thread_budget;

    /// WAL policy for durable sessions (OpenDurableSession /
    /// ReopenDurableSession); in-memory sessions ignore it. fsync is the
    /// default because a session that bothered to be durable should
    /// survive kill -9, not just clean exits.
    DurabilityMode durability = DurabilityMode::kFsync;

    /// Evict the session after this many seconds without a request (the
    /// coverage_server reaper; 0 = never). Durable sessions checkpoint
    /// before closing and reopen lazily on next touch; in-memory sessions
    /// are simply dropped.
    std::uint64_t idle_ttl_seconds = 0;

    /// Optional persistence latency histograms, forwarded to
    /// DurableEngineOptions (must outlive the session; null disables). The
    /// coverage_server points these at its metrics registry so every
    /// session's fsyncs and checkpoints land in one exposition.
    obs::Histogram* fsync_histogram = nullptr;
    obs::Histogram* checkpoint_histogram = nullptr;

    Status Validate() const;
  };

  /// The mutable-data surface: wraps an incremental CoverageEngine so
  /// append / retract / sliding-window workloads go through the same
  /// request/response API as the immutable service. MUPs are maintained
  /// incrementally per epoch, so Audit() is a snapshot read, not a search.
  class Session {
   public:
    Session(Session&&) noexcept;
    Session& operator=(Session&&) noexcept;
    ~Session();  // out-of-line: ThreadPool is incomplete here

    const Schema& schema() const;
    const SessionOptions& options() const;

    /// Streams CSV (header validated against the schema) in chunks,
    /// advancing one engine epoch per chunk.
    StatusOr<IngestStats> IngestCsv(std::istream& is,
                                    std::size_t chunk_rows = 65536);

    /// Appends / retracts one batch as one epoch. A non-null `trace`
    /// (owned by the calling thread) receives the engine/WAL/fsync stage
    /// breakdown of the mutation.
    StatusOr<EngineUpdateStats> Append(const Dataset& rows,
                                       obs::Trace* trace = nullptr);
    StatusOr<EngineUpdateStats> Retract(const Dataset& rows,
                                        obs::Trace* trace = nullptr);

    /// The current epoch's Problem-1 answer. No search runs here — the
    /// engine maintains the MUP set incrementally — so `stats` reports only
    /// the result size and `algorithm` records the maintenance strategy.
    AuditResult Audit(obs::Trace* trace = nullptr) const;

    /// Batched probes against one consistent epoch snapshot.
    StatusOr<QueryBatchResult> QueryBatch(const QueryBatchRequest& request,
                                          obs::Trace* trace = nullptr) const;

    std::uint64_t epoch() const;
    std::uint64_t num_rows() const;

    /// Forces a snapshot + WAL rotation now (durable sessions only;
    /// InvalidArgument otherwise). The server calls this before closing a
    /// session so reopening replays nothing.
    Status Checkpoint();

    /// Escape hatch for power users (retaining full engine access does not
    /// invalidate the session). For durable sessions, mutate through the
    /// session — writing via the raw engine bypasses the WAL.
    CoverageEngine& engine();
    const CoverageEngine& engine() const;

    /// The persistence wrapper, or nullptr for in-memory sessions.
    persist::DurableEngine* durable() { return durable_.get(); }
    const persist::DurableEngine* durable() const { return durable_.get(); }

   private:
    friend class CoverageService;
    Session(Schema schema, const SessionOptions& options);
    Session(std::unique_ptr<persist::DurableEngine> durable,
            const SessionOptions& options);

    SessionOptions options_;
    std::unique_ptr<CoverageEngine> engine_;  ///< null when durable_ owns it
    std::unique_ptr<persist::DurableEngine> durable_;
    /// Per-session query-pool arena: concurrent QueryBatch calls each
    /// lease their own pool (bounded by the session's ThreadBudget).
    mutable std::unique_ptr<PoolArena> arena_;
  };

  // --- ingestion ----------------------------------------------------------

  /// Indexes an in-memory dataset (copied into the aggregated form; the
  /// input need not outlive the service).
  static StatusOr<CoverageService> FromDataset(const Dataset& data,
                                               ServiceOptions options = {});

  /// Ingests a whole CSV stream (header + labelled values, schema inferred)
  /// in one pass.
  static StatusOr<CoverageService> FromCsv(std::istream& is,
                                           ServiceOptions options = {});

  /// Streams a CSV file in two passes — schema discovery, then chunked
  /// aggregation via CsvChunkReader — so peak decoded-row memory is one
  /// chunk (options.csv_chunk_rows) no matter the file size.
  static StatusOr<CoverageService> FromCsvFile(const std::string& path,
                                               ServiceOptions options = {});

  /// Generates one of the §V synthetic datasets.
  static StatusOr<CoverageService> FromSpec(const DatagenSpec& spec,
                                            ServiceOptions options = {});

  /// Opens a mutable-data session over a fixed (bucketized) schema,
  /// starting from the empty dataset at epoch 0.
  static StatusOr<Session> OpenSession(const Schema& schema,
                                       const SessionOptions& options);
  static StatusOr<Session> OpenSession(const Schema& schema) {
    return OpenSession(schema, SessionOptions());
  }

  /// Opens a *durable* session rooted at `dir`: every mutation is WAL-
  /// logged per options.durability and snapshots are written on rotation /
  /// Checkpoint(), so the session survives kill -9 (see
  /// docs/PERSISTENCE.md). `dir` must not already hold a session.
  static StatusOr<Session> OpenDurableSession(const std::string& dir,
                                              const Schema& schema,
                                              const SessionOptions& options);

  /// Reopens the durable session persisted at `dir` (NotFound when none),
  /// recovering snapshot + WAL tail. The stored problem knobs (tau,
  /// max_level, window, dominance) win over `options`; only runtime knobs
  /// (num_threads, durability, thread budgeting, idle TTL) are taken from
  /// the caller. The returned session's options() reflects the stored
  /// values.
  static StatusOr<Session> ReopenDurableSession(const std::string& dir,
                                                const SessionOptions& options);

  // --- request/response entry points --------------------------------------

  /// A non-null `trace` (owned by the calling thread) receives `plan` and
  /// per-level `search_level_<k>` stages.
  StatusOr<AuditResult> Audit(const AuditRequest& request,
                              obs::Trace* trace = nullptr) const;
  StatusOr<CoveragePlan> Enhance(const EnhanceRequest& request) const;
  StatusOr<QueryOutcome> Query(const QueryRequest& request) const;
  StatusOr<QueryBatchResult> QueryBatch(const QueryBatchRequest& request,
                                        obs::Trace* trace = nullptr) const;

  // --- introspection ------------------------------------------------------

  const Schema& schema() const { return agg_->schema(); }
  const AggregatedData& data() const { return *agg_; }
  const BitmapCoverage& oracle() const { return *oracle_; }
  const ServiceOptions& options() const { return options_; }
  std::uint64_t num_rows() const { return agg_->total_count(); }

 private:
  CoverageService(std::unique_ptr<AggregatedData> agg, ServiceOptions options);

  ServiceOptions options_;
  std::unique_ptr<AggregatedData> agg_;
  std::unique_ptr<BitmapCoverage> oracle_;  // references *agg_
  /// Query-pool arena: concurrent QueryBatch calls lease separate pools
  /// over the freely-shared read-only oracle, so N clients fan out N ways
  /// (bounded by options_.max_total_threads / options_.thread_budget).
  mutable std::unique_ptr<PoolArena> arena_;
};

}  // namespace coverage

#endif  // COVERAGE_SERVICE_COVERAGE_SERVICE_H_

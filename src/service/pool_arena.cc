#include "service/pool_arena.h"

#include <thread>

namespace coverage {

namespace {

int ResolveThreadsPerPool(int threads_per_pool) {
  if (threads_per_pool > 0) return threads_per_pool;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw < 1 ? 1 : hw;
}

}  // namespace

PoolArena::PoolArena(int threads_per_pool,
                     std::shared_ptr<ThreadBudget> budget)
    : threads_per_pool_(ResolveThreadsPerPool(threads_per_pool)),
      budget_(budget != nullptr ? std::move(budget)
                                : std::make_shared<ThreadBudget>(0)) {}

PoolArena::~PoolArena() {
  // Leases must not outlive the arena; by then every pool is back in free_.
  pools_.clear();
  budget_->Release(spawned_reserved_);
}

PoolArena::Lease PoolArena::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    ThreadPool* pool = free_.back();
    free_.pop_back();
    return Lease(this, pool);
  }
  // No cached pool is idle: materialise a new one if the budget still has
  // spawned threads to grant. A partial grant yields a narrower pool —
  // right-sized to what the process has left.
  const int granted = budget_->TryReserve(threads_per_pool_ - 1);
  if (granted == 0 && threads_per_pool_ > 1) {
    return Lease(this, nullptr);  // inline: serial on the caller's thread
  }
  spawned_reserved_ += granted;
  pools_.push_back(std::make_unique<ThreadPool>(granted + 1));
  return Lease(this, pools_.back().get());
}

void PoolArena::ReturnPool(ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(pool);
}

void PoolArena::Lease::Release() {
  if (arena_ != nullptr && pool_ != nullptr) {
    arena_->ReturnPool(pool_);
  }
  arena_ = nullptr;
  pool_ = nullptr;
}

int PoolArena::pools_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(pools_.size());
}

}  // namespace coverage

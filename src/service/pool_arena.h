#ifndef COVERAGE_SERVICE_POOL_ARENA_H_
#define COVERAGE_SERVICE_POOL_ARENA_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"

namespace coverage {

/// Accounting of *spawned* worker threads across every pool a budget is
/// shared with. A ThreadPool of n workers spawns n-1 threads (the caller is
/// worker 0), so a serial pool costs nothing and is always grantable — a
/// process over its cap degrades to inline execution instead of failing or
/// deadlocking.
///
/// One budget is typically shared by a CoverageService and every Session in
/// the process (the coverage_server wires a single budget through its whole
/// session registry), making the cap process-wide. Thread-safe.
class ThreadBudget {
 public:
  /// `max_spawned_threads <= 0` means unlimited.
  explicit ThreadBudget(int max_spawned_threads)
      : max_(max_spawned_threads) {}

  /// Reserves up to `want` spawned threads; returns the number granted
  /// (possibly 0). Never blocks.
  int TryReserve(int want) {
    if (want <= 0) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    if (max_ <= 0) {
      reserved_ += want;
      return want;
    }
    const int granted = want < max_ - reserved_ ? want : max_ - reserved_;
    if (granted <= 0) return 0;
    reserved_ += granted;
    return granted;
  }

  void Release(int n) {
    if (n <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ -= n;
  }

  int max_spawned_threads() const { return max_; }
  int reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reserved_;
  }

 private:
  mutable std::mutex mu_;
  const int max_;
  int reserved_ = 0;
};

/// Leases right-sized ThreadPools to concurrent callers so batched queries
/// from many clients run genuinely in parallel instead of serialising on
/// one shared pool (the pre-PR-5 design). Pools are created on demand —
/// one per *concurrent* caller, not one per caller — cached on release,
/// and bounded by the shared ThreadBudget:
///
///   caller 1:  Acquire() ── new pool A ──┐ released → cached
///   caller 2:  Acquire() ── new pool B ──┤ (concurrently)
///   caller 3:  Acquire() ── reuses A or B once one is free
///
/// When the budget is exhausted and no cached pool is free, Acquire()
/// returns an *inline* lease (pool() == nullptr): the caller runs serially
/// on its own thread rather than blocking on a peer — under a full house
/// every request still makes progress, just without fan-out.
///
/// Thread-safe; leases are movable and return their pool on destruction.
class PoolArena {
 public:
  /// Each leased pool gets `threads_per_pool` workers (<= 0 clamps to the
  /// hardware, see ThreadPool) unless the budget grants fewer.
  PoolArena(int threads_per_pool, std::shared_ptr<ThreadBudget> budget);
  ~PoolArena();

  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;

  class Lease {
   public:
    Lease() = default;
    Lease(PoolArena* arena, ThreadPool* pool) : arena_(arena), pool_(pool) {}
    ~Lease() { Release(); }

    Lease(Lease&& other) noexcept
        : arena_(other.arena_), pool_(other.pool_) {
      other.arena_ = nullptr;
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        arena_ = other.arena_;
        pool_ = other.pool_;
        other.arena_ = nullptr;
        other.pool_ = nullptr;
      }
      return *this;
    }

    /// The leased pool; nullptr = inline lease, run serially.
    ThreadPool* pool() const { return pool_; }

   private:
    void Release();

    PoolArena* arena_ = nullptr;
    ThreadPool* pool_ = nullptr;
  };

  /// Never blocks and never fails; see class comment for the fallback.
  Lease Acquire();

  /// Pools materialised so far (tests assert concurrency actually fanned
  /// out, and /v1/stats reports it).
  int pools_created() const;

  int threads_per_pool() const { return threads_per_pool_; }
  const std::shared_ptr<ThreadBudget>& budget() const { return budget_; }

 private:
  friend class Lease;
  void ReturnPool(ThreadPool* pool);

  const int threads_per_pool_;
  std::shared_ptr<ThreadBudget> budget_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;  // all ever created
  std::vector<ThreadPool*> free_;                   // subset not leased
  int spawned_reserved_ = 0;  // total spawned threads charged to budget_
};

}  // namespace coverage

#endif  // COVERAGE_SERVICE_POOL_ARENA_H_

#include "common/bitvector.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace coverage {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_TRUE(bv.empty());
  EXPECT_EQ(bv.Count(), 0u);
  EXPECT_FALSE(bv.Any());
}

TEST(BitVector, ConstructAllZero) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.Count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVector, ConstructAllOne) {
  BitVector bv(100, true);
  EXPECT_EQ(bv.Count(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_TRUE(bv.Get(i));
}

TEST(BitVector, AllOnePaddingIsClean) {
  // 70 bits spans two words; the upper 58 bits of word 1 must stay clear.
  BitVector bv(70, true);
  EXPECT_EQ(bv.Count(), 70u);
  EXPECT_EQ(bv.words()[1], (std::uint64_t{1} << 6) - 1);
}

TEST(BitVector, SetAndGet) {
  BitVector bv(130);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 3u);
  bv.Set(64, false);
  EXPECT_FALSE(bv.Get(64));
  EXPECT_EQ(bv.Count(), 2u);
}

TEST(BitVector, FillTrueThenFalse) {
  BitVector bv(77);
  bv.Fill(true);
  EXPECT_EQ(bv.Count(), 77u);
  bv.Fill(false);
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVector, PushBackGrows) {
  BitVector bv;
  for (int i = 0; i < 200; ++i) bv.PushBack(i % 3 == 0);
  EXPECT_EQ(bv.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(bv.Get(static_cast<std::size_t>(i)),
                                          i % 3 == 0);
}

TEST(BitVector, ResizeGrowWithOnes) {
  BitVector bv(10);
  bv.Set(3);
  bv.Resize(100, true);
  EXPECT_TRUE(bv.Get(3));
  EXPECT_FALSE(bv.Get(4));
  for (std::size_t i = 10; i < 100; ++i) EXPECT_TRUE(bv.Get(i));
  EXPECT_EQ(bv.Count(), 91u);
}

TEST(BitVector, ResizeShrinkClearsPadding) {
  BitVector bv(100, true);
  bv.Resize(65);
  EXPECT_EQ(bv.size(), 65u);
  EXPECT_EQ(bv.Count(), 65u);
  bv.Resize(128, false);
  EXPECT_EQ(bv.Count(), 65u);
}

TEST(BitVector, AndWith) {
  BitVector a(130), b(130);
  a.Set(5);
  a.Set(64);
  a.Set(100);
  b.Set(64);
  b.Set(100);
  b.Set(101);
  a.AndWith(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_TRUE(a.Get(64));
  EXPECT_TRUE(a.Get(100));
  EXPECT_FALSE(a.Get(5));
}

TEST(BitVector, OrWith) {
  BitVector a(70), b(70);
  a.Set(1);
  b.Set(69);
  a.OrWith(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(69));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitVector, AndNotWith) {
  BitVector a(70, true), b(70);
  b.Set(0);
  b.Set(69);
  a.AndNotWith(b);
  EXPECT_FALSE(a.Get(0));
  EXPECT_FALSE(a.Get(69));
  EXPECT_EQ(a.Count(), 68u);
}

TEST(BitVector, IntersectsWith) {
  BitVector a(200), b(200);
  a.Set(150);
  b.Set(151);
  EXPECT_FALSE(a.IntersectsWith(b));
  b.Set(150);
  EXPECT_TRUE(a.IntersectsWith(b));
}

TEST(BitVector, AndCount) {
  BitVector a(128), b(128);
  for (std::size_t i = 0; i < 128; i += 2) a.Set(i);
  for (std::size_t i = 0; i < 128; i += 3) b.Set(i);
  // Multiples of 6 below 128: 0, 6, ..., 126 -> 22 values.
  EXPECT_EQ(a.AndCount(b), 22u);
}

TEST(BitVector, AndCount3) {
  BitVector a(64, true), b(64), c(64);
  for (std::size_t i = 0; i < 64; i += 2) b.Set(i);
  for (std::size_t i = 0; i < 64; i += 4) c.Set(i);
  EXPECT_EQ(BitVector::AndCount3(a, b, c), 16u);
}

TEST(BitVector, DotProduct) {
  BitVector bv(5);
  bv.Set(1);
  bv.Set(3);
  const std::vector<std::uint64_t> counts = {10, 20, 30, 40, 50};
  EXPECT_EQ(bv.Dot(counts), 60u);
}

TEST(BitVector, DotProductEmpty) {
  BitVector bv(0);
  EXPECT_EQ(bv.Dot({}), 0u);
}

TEST(BitVector, DotProductAllSet) {
  BitVector bv(70, true);
  std::vector<std::uint64_t> counts(70, 2);
  EXPECT_EQ(bv.Dot(counts), 140u);
}

TEST(BitVector, FindFirstAndNext) {
  BitVector bv(200);
  EXPECT_EQ(bv.FindFirst(), 200u);
  bv.Set(3);
  bv.Set(64);
  bv.Set(199);
  EXPECT_EQ(bv.FindFirst(), 3u);
  EXPECT_EQ(bv.FindNext(3), 64u);
  EXPECT_EQ(bv.FindNext(64), 199u);
  EXPECT_EQ(bv.FindNext(199), 200u);
  EXPECT_EQ(bv.FindNext(0), 3u);
}

TEST(BitVector, ForEachSetBit) {
  BitVector bv(150);
  const std::vector<std::size_t> expected = {0, 63, 64, 65, 149};
  for (std::size_t i : expected) bv.Set(i);
  std::vector<std::size_t> seen;
  bv.ForEachSetBit([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector a(10), b(11);
  EXPECT_NE(a, b);
  BitVector c(10);
  EXPECT_EQ(a, c);
  c.Set(9);
  EXPECT_NE(a, c);
}

TEST(BitVector, ToStringLsbFirst) {
  BitVector bv(4);
  bv.Set(1);
  EXPECT_EQ(bv.ToString(), "0100");
}

TEST(BitVector, RandomizedAgainstReference) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng() % 300;
    std::vector<bool> ra(n), rb(n);
    BitVector a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      ra[i] = rng() % 2;
      rb[i] = rng() % 2;
      a.Set(i, ra[i]);
      b.Set(i, rb[i]);
    }
    std::size_t expected_and = 0, expected_count = 0;
    bool expected_intersects = false;
    for (std::size_t i = 0; i < n; ++i) {
      expected_and += ra[i] && rb[i];
      expected_count += ra[i];
      expected_intersects = expected_intersects || (ra[i] && rb[i]);
    }
    EXPECT_EQ(a.Count(), expected_count);
    EXPECT_EQ(a.AndCount(b), expected_and);
    EXPECT_EQ(a.IntersectsWith(b), expected_intersects);
    BitVector c = a;
    c.AndWith(b);
    EXPECT_EQ(c.Count(), expected_and);
  }
}

// --- fused AND-chain kernels ------------------------------------------------

namespace {

/// Naive composition the fused kernels must agree with: materialise the AND
/// chain, then dot.
std::uint64_t NaiveAndChainDot(const std::vector<BitVector>& ops,
                               const std::vector<std::uint64_t>& counts) {
  BitVector acc = ops[0];
  for (std::size_t i = 1; i < ops.size(); ++i) acc.AndWith(ops[i]);
  return acc.Dot(counts);
}

std::vector<const BitVector*> Pointers(const std::vector<BitVector>& ops) {
  std::vector<const BitVector*> ptrs;
  for (const BitVector& op : ops) ptrs.push_back(&op);
  return ptrs;
}

std::vector<BitVector> RandomOperands(int n, std::size_t bits, double density,
                                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(density);
  std::vector<BitVector> ops;
  for (int k = 0; k < n; ++k) {
    BitVector bv(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      if (coin(rng)) bv.Set(i);
    }
    ops.push_back(std::move(bv));
  }
  return ops;
}

std::vector<std::uint64_t> RandomCounts(std::size_t bits, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> dist(1, 1000);
  std::vector<std::uint64_t> counts(bits);
  for (auto& c : counts) c = dist(rng);
  return counts;
}

}  // namespace

TEST(AndChainDot, MatchesNaiveComposition) {
  // Sweep operand counts and sizes across the unroll boundaries (sizes that
  // are 0/1/2/3 mod 4 words, with and without a padded tail word).
  for (const std::size_t bits : {1u, 63u, 64u, 100u, 256u, 300u, 1000u}) {
    for (const int n : {1, 2, 3, 5, 8}) {
      const auto ops = RandomOperands(n, bits, 0.3, bits * 31 + n);
      const auto counts = RandomCounts(bits, bits * 7 + n);
      const auto ptrs = Pointers(ops);
      EXPECT_EQ(BitVector::AndChainDot(ptrs.data(), n, counts),
                NaiveAndChainDot(ops, counts))
          << "bits=" << bits << " n=" << n;
    }
  }
}

TEST(AndChainDot, EmptyIntersectionIsZero) {
  std::vector<BitVector> ops = {BitVector(200), BitVector(200, true)};
  const auto counts = RandomCounts(200, 1);
  const auto ptrs = Pointers(ops);
  EXPECT_EQ(BitVector::AndChainDot(ptrs.data(), 2, counts), 0u);
}

TEST(AndChainAtLeast, AgreesWithDotAcrossTauSweep) {
  const std::size_t bits = 300;
  for (const int n : {1, 2, 4}) {
    const auto ops = RandomOperands(n, bits, 0.4, 17 + n);
    const auto counts = RandomCounts(bits, 29 + n);
    const auto ptrs = Pointers(ops);
    const std::uint64_t exact = NaiveAndChainDot(ops, counts);
    for (const std::uint64_t tau :
         {std::uint64_t{0}, std::uint64_t{1}, exact > 0 ? exact - 1 : 0,
          exact, exact + 1, exact * 2 + 5}) {
      EXPECT_EQ(BitVector::AndChainAtLeast(ptrs.data(), n, counts, tau),
                exact >= tau)
          << "n=" << n << " tau=" << tau << " exact=" << exact;
    }
  }
}

TEST(AndChainAtLeast, TauZeroIsAlwaysTrue) {
  const BitVector empty(128);
  const BitVector* op = &empty;
  const std::vector<std::uint64_t> counts(128, 5);
  EXPECT_TRUE(BitVector::AndChainAtLeast(&op, 1, counts, 0));
  EXPECT_FALSE(BitVector::AndChainAtLeast(&op, 1, counts, 1));
}

TEST(BitVector, AppendWordsToEmpty) {
  BitVector bv;
  const std::vector<std::uint64_t> words = {0b1011, 0b1};
  bv.AppendWords(words.data(), 65);
  EXPECT_EQ(bv.size(), 65u);
  EXPECT_EQ(bv.Count(), 4u);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_FALSE(bv.Get(2));
  EXPECT_TRUE(bv.Get(64));
}

TEST(BitVector, AppendWordsWordAligned) {
  BitVector bv(64);
  bv.Set(63, true);
  const std::uint64_t word = ~std::uint64_t{0};
  bv.AppendWords(&word, 10);
  EXPECT_EQ(bv.size(), 74u);
  EXPECT_EQ(bv.Count(), 11u);  // bit 63 plus ten appended ones
  for (std::size_t i = 64; i < 74; ++i) EXPECT_TRUE(bv.Get(i));
  // Input bits past num_bits must not leak into the padding.
  EXPECT_EQ(bv.words()[1], (std::uint64_t{1} << 10) - 1);
}

TEST(BitVector, AppendWordsCrossesWordBoundary) {
  // Start mid-word so every appended word is shift-merged across a boundary.
  BitVector bv;
  for (int i = 0; i < 40; ++i) bv.PushBack(i % 3 == 0);
  BitVector expected = bv;
  const std::vector<std::uint64_t> words = {0xdeadbeefcafef00dULL,
                                            0x0123456789abcdefULL};
  bv.AppendWords(words.data(), 100);
  for (std::size_t i = 0; i < 100; ++i) {
    expected.PushBack((words[i / 64] >> (i % 64)) & 1);
  }
  EXPECT_EQ(bv, expected);
  EXPECT_EQ(bv.size(), 140u);
}

TEST(BitVector, AppendWordsIgnoresBitsPastCount) {
  BitVector bv;
  for (int i = 0; i < 60; ++i) bv.PushBack(false);
  // Only the low 7 bits of the input are live; the all-ones rest must be
  // dropped whether it lands in the merged word or the trimmed overflow.
  const std::uint64_t word = ~std::uint64_t{0};
  bv.AppendWords(&word, 7);
  EXPECT_EQ(bv.size(), 67u);
  EXPECT_EQ(bv.Count(), 7u);
  EXPECT_EQ(bv.num_words(), 2u);
}

TEST(BitVector, AppendWordsZeroBitsIsNoOp) {
  BitVector bv(10, true);
  bv.AppendWords(nullptr, 0);
  EXPECT_EQ(bv.size(), 10u);
  EXPECT_EQ(bv.Count(), 10u);
}

TEST(BitVector, ReservePreservesContentAndSize) {
  BitVector bv(70, true);
  bv.Reserve(4096);
  EXPECT_EQ(bv.size(), 70u);
  EXPECT_EQ(bv.Count(), 70u);
  bv.PushBack(true);
  EXPECT_EQ(bv.size(), 71u);
  EXPECT_EQ(bv.Count(), 71u);
}

TEST(BitVector, AppendWordsRandomizedAgainstPushBack) {
  std::mt19937_64 rng(2024);
  BitVector appended;
  BitVector reference;
  for (int round = 0; round < 50; ++round) {
    const std::size_t num_bits = rng() % 150;
    std::vector<std::uint64_t> words((num_bits + 63) / 64 + 1);
    for (auto& w : words) w = rng();
    appended.AppendWords(words.data(), num_bits);
    for (std::size_t i = 0; i < num_bits; ++i) {
      reference.PushBack((words[i / 64] >> (i % 64)) & 1);
    }
    ASSERT_EQ(appended, reference) << "round " << round;
  }
}

TEST(AndChainDot, PaddingBitsDoNotLeak) {
  // 70 bits leaves 58 dead bits in the last word; an all-ones operand pair
  // must sum exactly the 70 live counts.
  std::vector<BitVector> ops = {BitVector(70, true), BitVector(70, true)};
  const std::vector<std::uint64_t> counts(70, 3);
  const auto ptrs = Pointers(ops);
  EXPECT_EQ(BitVector::AndChainDot(ptrs.data(), 2, counts), 210u);
}

}  // namespace
}  // namespace coverage

#include "tools/coverage_cli_lib.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "coverage_lib.h"
#include "datagen/compas.h"

namespace coverage {
namespace cli {
namespace {

// ----------------------------------------------------------- ParseArgs --

TEST(CliParse, RequiresCommand) {
  EXPECT_FALSE(ParseArgs({}).ok());
}

TEST(CliParse, HelpVariants) {
  for (const char* arg : {"help", "--help", "-h"}) {
    auto options = ParseArgs({arg});
    ASSERT_TRUE(options.ok());
    EXPECT_EQ(options->command, "help");
  }
}

TEST(CliParse, RejectsUnknownCommand) {
  const auto result = ParseArgs({"frobnicate", "--csv", "x.csv"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown command"),
            std::string::npos);
}

TEST(CliParse, AuditDefaults) {
  auto options = ParseArgs({"audit", "--csv", "data.csv"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->command, "audit");
  EXPECT_EQ(options->csv_path, "data.csv");
  EXPECT_EQ(options->tau, 30u);  // the §II rule-of-thumb default
  EXPECT_EQ(options->max_level, -1);
  EXPECT_FALSE(options->list_mups);
}

TEST(CliParse, AllFlags) {
  auto options = ParseArgs({"enhance", "--csv", "d.csv", "--tau", "12",
                            "--lambda", "2", "--max-cardinality", "50",
                            "--rule", "a in {x}", "--rule", "b in {y}",
                            "--list-mups", "--max-level", "3"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->tau, 12u);
  EXPECT_EQ(options->lambda, 2);
  EXPECT_EQ(options->max_level, 3);
  EXPECT_EQ(options->max_cardinality, 50);
  EXPECT_EQ(options->rules,
            (std::vector<std::string>{"a in {x}", "b in {y}"}));
  EXPECT_TRUE(options->list_mups);
}

TEST(CliParse, ThreadsFlagBothForms) {
  auto spaced = ParseArgs({"audit", "--csv", "d.csv", "--threads", "4"});
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(spaced->threads, 4);
  auto joined = ParseArgs({"audit", "--csv", "d.csv", "--threads=8"});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->threads, 8);
  EXPECT_EQ(ParseArgs({"audit", "--csv", "d.csv"})->threads, 1);
}

TEST(CliParse, RejectsBadThreadCounts) {
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--threads", "0"}).ok());
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--threads", "-2"}).ok());
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--threads=1025"}).ok());
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--threads"}).ok());
}

TEST(CliParse, RejectsMissingCsv) {
  EXPECT_FALSE(ParseArgs({"audit", "--tau", "5"}).ok());
}

TEST(CliParse, RejectsBadNumbers) {
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--tau", "abc"}).ok());
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--tau", "0"}).ok());
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--tau", "3x"}).ok());
  EXPECT_FALSE(
      ParseArgs({"audit", "--csv", "x", "--max-cardinality", "0"}).ok());
}

TEST(CliParse, RejectsDanglingFlagValue) {
  EXPECT_FALSE(ParseArgs({"audit", "--csv"}).ok());
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--rule"}).ok());
}

TEST(CliParse, RejectsUnknownFlag) {
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "x", "--bogus"}).ok());
}

TEST(CliParse, EngineFlags) {
  auto options = ParseArgs(
      {"audit", "--csv", "d.csv", "--engine", "--chunk-rows", "1024"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options->engine);
  EXPECT_EQ(options->chunk_rows, 1024u);
  auto defaults = ParseArgs({"audit", "--csv", "d.csv"});
  ASSERT_TRUE(defaults.ok());
  EXPECT_FALSE(defaults->engine);
  EXPECT_EQ(defaults->chunk_rows, 65536u);
  EXPECT_FALSE(
      ParseArgs({"audit", "--csv", "d.csv", "--chunk-rows", "0"}).ok());
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "d.csv", "--chunk-rows"}).ok());
}

TEST(CliParse, WindowRowsRequiresEngine) {
  auto options = ParseArgs({"audit", "--csv", "d.csv", "--engine",
                            "--window-rows", "5000"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->window_rows, 5000u);
  auto defaults = ParseArgs({"audit", "--csv", "d.csv", "--engine"});
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->window_rows, 0u);  // windowing off by default
  // A sliding window only exists on the streaming path.
  EXPECT_FALSE(
      ParseArgs({"audit", "--csv", "d.csv", "--window-rows", "5000"}).ok());
  EXPECT_FALSE(
      ParseArgs({"audit", "--csv", "d.csv", "--engine", "--window-rows", "0"})
          .ok());
}

TEST(CliParse, UsageDocumentsEngineFlags) {
  const std::string usage = Usage();
  for (const char* flag : {"--engine", "--chunk-rows", "--window-rows",
                           "--algo", "--pattern", "--batch-file"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(CliParse, AlgoFlag) {
  EXPECT_EQ(ParseArgs({"audit", "--csv", "d.csv"})->algo, "auto");
  for (const char* name : {"auto", "deepdiver", "breaker", "pattern-breaker",
                           "combiner", "pattern-combiner", "apriori",
                           "naive"}) {
    auto options = ParseArgs({"audit", "--csv", "d.csv", "--algo", name});
    ASSERT_TRUE(options.ok()) << name;
    EXPECT_EQ(options->algo, name);
  }
  EXPECT_FALSE(
      ParseArgs({"audit", "--csv", "d.csv", "--algo", "magic"}).ok());
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "d.csv", "--algo"}).ok());
}

TEST(CliParse, QueryCommand) {
  auto options = ParseArgs({"query", "--csv", "d.csv", "--pattern", "X1XX",
                            "--pattern", "XX23"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->command, "query");
  EXPECT_EQ(options->patterns, (std::vector<std::string>{"X1XX", "XX23"}));
  auto batch = ParseArgs({"query", "--csv", "d.csv", "--batch-file", "p.txt"});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->batch_file, "p.txt");
  // A query without any pattern source is malformed.
  EXPECT_FALSE(ParseArgs({"query", "--csv", "d.csv"}).ok());
}

// --------------------------------------------------------------- RunCli --

class CliRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csv_path_ = ::testing::TempDir() + "/cli_test_compas.csv";
    const auto compas = datagen::MakeCompas(2000, 3);
    std::ofstream out(csv_path_);
    ASSERT_TRUE(compas.data.WriteCsv(out).ok());
  }
  void TearDown() override { std::remove(csv_path_.c_str()); }

  std::string csv_path_;
};

TEST_F(CliRunTest, HelpPrintsUsage) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"help"}, out, err), 0);
  EXPECT_NE(out.str().find("usage: coverage_cli"), std::string::npos);
}

TEST_F(CliRunTest, BadArgsExitCodeTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"audit"}, out, err), 2);
  EXPECT_NE(err.str().find("--csv is required"), std::string::npos);
}

TEST_F(CliRunTest, StatsPrintsSchema) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"stats", "--csv", csv_path_}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("attributes: 4"), std::string::npos);
  EXPECT_NE(out.str().find("race"), std::string::npos);
  EXPECT_NE(out.str().find("Hispanic"), std::string::npos);
}

TEST_F(CliRunTest, AuditPrintsLabel) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10"}, out, err), 0)
      << err.str();
  EXPECT_NE(out.str().find("COVERAGE LABEL"), std::string::npos);
  EXPECT_NE(out.str().find("coverage queries"), std::string::npos);
}

TEST_F(CliRunTest, AuditEngineMatchesWholeFileAudit) {
  // The streamed engine audit must print the same nutritional label and the
  // same MUP list as the whole-file audit, for any chunk size.
  std::ostringstream whole_out, whole_err;
  ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10",
                                  "--list-mups"},
                                 whole_out, whole_err),
            0)
      << whole_err.str();
  const std::string whole = whole_out.str();
  const std::string whole_label = whole.substr(0, whole.find("discovery:"));
  const std::string whole_list = whole.substr(whole.find("all MUPs"));

  for (const char* chunk_rows : {"97", "100000"}) {
    std::ostringstream out, err;
    ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau",
                                    "10", "--list-mups", "--engine",
                                    "--chunk-rows", chunk_rows},
                                   out, err),
              0)
        << err.str();
    const std::string streamed = out.str();
    ASSERT_NE(streamed.find("ingest:"), std::string::npos);
    EXPECT_EQ(streamed.substr(0, streamed.find("ingest:")), whole_label)
        << "chunk_rows=" << chunk_rows;
    EXPECT_EQ(streamed.substr(streamed.find("all MUPs")), whole_list)
        << "chunk_rows=" << chunk_rows;
  }
}

TEST_F(CliRunTest, AuditEngineWindowReportsRetainedRows) {
  // A windowed streaming audit labels only the tail of the stream and says
  // so. 2000 rows in 500-row chunks with a 1200-row cap retain the last 2
  // chunks (appending a chunk at 1000 retained makes 1500 > 1200 → evict).
  std::ostringstream out, err;
  ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10",
                                  "--engine", "--chunk-rows", "500",
                                  "--window-rows", "1200"},
                                 out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("window: last 1,200 rows (1,000 retained"),
            std::string::npos)
      << out.str();
}

TEST_F(CliRunTest, AuditAlgoAutoReportsPlannerDecision) {
  std::ostringstream out, err;
  ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10",
                                  "--algo", "auto"},
                                 out, err),
            0)
      << err.str();
  // The planner's concrete pick and its rationale are surfaced.
  EXPECT_NE(out.str().find("discovery: DEEPDIVER"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("planner:"), std::string::npos);
}

TEST_F(CliRunTest, AuditExplicitAlgoMatchesAuto) {
  // Every algorithm returns the same label; --algo only changes the engine
  // doing the work (and the discovery line saying so).
  std::ostringstream auto_out, err;
  ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10"},
                                 auto_out, err),
            0);
  const std::string auto_label =
      auto_out.str().substr(0, auto_out.str().find("discovery:"));
  for (const char* algo : {"breaker", "combiner"}) {
    std::ostringstream out, err2;
    ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau",
                                    "10", "--algo", algo},
                                   out, err2),
              0)
        << err2.str();
    EXPECT_EQ(out.str().substr(0, out.str().find("discovery:")), auto_label)
        << algo;
    EXPECT_EQ(out.str().find("planner:"), std::string::npos) << algo;
  }
}

TEST_F(CliRunTest, QueryAnswersInlinePatterns) {
  std::ostringstream out, err;
  ASSERT_EQ(::coverage::cli::Run({"query", "--csv", csv_path_, "--tau", "10",
                                  "--pattern", "XXXX", "--pattern", "X0XX"},
                                 out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("XXXX  cov = 2,000  covered at tau=10"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("batch: 2 queries"), std::string::npos);
}

TEST_F(CliRunTest, QueryBatchFileMatchesInline) {
  const std::string batch_path = ::testing::TempDir() + "/cli_test_batch.txt";
  {
    std::ofstream batch(batch_path);
    batch << "# probes\n\nXXXX\nX0XX\n";
  }
  std::ostringstream inline_out, batch_out, err;
  ASSERT_EQ(::coverage::cli::Run({"query", "--csv", csv_path_, "--pattern",
                                  "XXXX", "--pattern", "X0XX", "--threads",
                                  "4"},
                                 inline_out, err),
            0)
      << err.str();
  ASSERT_EQ(::coverage::cli::Run({"query", "--csv", csv_path_, "--batch-file",
                                  batch_path, "--threads", "4"},
                                 batch_out, err),
            0)
      << err.str();
  std::remove(batch_path.c_str());
  // Comments/blank lines are skipped; answers and order are identical. The
  // trailing summary line carries wall-clock time, so compare up to it.
  EXPECT_EQ(batch_out.str().substr(0, batch_out.str().find("batch:")),
            inline_out.str().substr(0, inline_out.str().find("batch:")));
}

// ------------------------------------------------------------- --json --

TEST(CliParseJson, JsonFlagOnAuditAndQueryOnly) {
  EXPECT_TRUE(ParseArgs({"audit", "--csv", "d.csv", "--json"})->json);
  EXPECT_TRUE(ParseArgs({"query", "--csv", "d.csv", "--pattern", "X",
                         "--json"})
                  ->json);
  EXPECT_FALSE(ParseArgs({"audit", "--csv", "d.csv"})->json);
  EXPECT_FALSE(ParseArgs({"enhance", "--csv", "d.csv", "--json"}).ok());
  EXPECT_FALSE(ParseArgs({"stats", "--csv", "d.csv", "--json"}).ok());
}

/// Normalises the one nondeterministic part of the wire format (wall-clock
/// timings) so JSON outputs compare exactly.
std::string NormalizeJsonOutput(const std::string& text) {
  auto parsed = json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  if (!parsed.ok()) return "<unparseable>";
  std::function<void(json::JsonValue&)> zero = [&](json::JsonValue& v) {
    if (v.is_array()) {
      for (auto& item : v.AsArray()) zero(item);
    } else if (v.is_object()) {
      for (auto& [key, value] : v.AsObject()) {
        if (key == "seconds") {
          value = json::JsonValue(0);
        } else {
          zero(value);
        }
      }
    }
  };
  zero(*parsed);
  return json::SerializePretty(*parsed);
}

std::string GoldenPath(const std::string& name) {
  return std::string(COVERAGE_REPO_DIR) + "/tests/golden/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate per tests/golden/README.md)";
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST_F(CliRunTest, AuditJsonMatchesGoldenFile) {
  std::ostringstream out, err;
  ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10",
                                  "--json"},
                                 out, err),
            0)
      << err.str();
  EXPECT_EQ(NormalizeJsonOutput(out.str()),
            ReadFileOrDie(GoldenPath("cli_audit_compas_tau10.json")));
}

TEST_F(CliRunTest, QueryJsonMatchesGoldenFile) {
  std::ostringstream out, err;
  ASSERT_EQ(::coverage::cli::Run({"query", "--csv", csv_path_, "--pattern",
                                  "XXXX", "--pattern", "X0XX", "--json"},
                                 out, err),
            0)
      << err.str();
  EXPECT_EQ(NormalizeJsonOutput(out.str()),
            ReadFileOrDie(GoldenPath("cli_query_compas.json")));
}

TEST_F(CliRunTest, AuditJsonIsTheWireEncoding) {
  // One serializer: the CLI's --json output must be exactly
  // wire::ToJson(AuditResult) for the same request against the same data —
  // the content coverage_server would send for POST /v1/audit.
  std::ostringstream out, err;
  ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10",
                                  "--json"},
                                 out, err),
            0)
      << err.str();
  auto service = CoverageService::FromCsvFile(csv_path_);
  ASSERT_TRUE(service.ok());
  AuditRequest request;
  request.tau = 10;
  auto result = service->Audit(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(NormalizeJsonOutput(out.str()),
            NormalizeJsonOutput(json::SerializePretty(
                wire::ToJson(*result, service->schema()))));
}

TEST_F(CliRunTest, EngineAuditJsonMatchesWholeFileJson) {
  std::ostringstream whole, streamed, err;
  ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10",
                                  "--json"},
                                 whole, err),
            0)
      << err.str();
  ASSERT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10",
                                  "--json", "--engine", "--chunk-rows",
                                  "311"},
                                 streamed, err),
            0)
      << err.str();
  // Identical MUPs; only discovery metadata (algorithm name, stats,
  // planner line) differs between the search and the incremental engine.
  auto whole_json = json::Parse(whole.str());
  auto streamed_json = json::Parse(streamed.str());
  ASSERT_TRUE(whole_json.ok());
  ASSERT_TRUE(streamed_json.ok());
  EXPECT_EQ(*whole_json->Find("mups"), *streamed_json->Find("mups"));
  EXPECT_EQ(*whole_json->Find("num_rows"), *streamed_json->Find("num_rows"));
  EXPECT_EQ(*streamed_json->GetString("algorithm"), "ENGINE-INCREMENTAL");
}

TEST_F(CliRunTest, QueryRejectsBadPattern) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"query", "--csv", csv_path_, "--pattern",
                                  "ZZ"},
                                 out, err),
            1);
  EXPECT_NE(err.str().find("bad pattern"), std::string::npos);
}

TEST_F(CliRunTest, AuditListMupsShowsPatterns) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10", "--list-mups"},
                out, err),
            0);
  EXPECT_NE(out.str().find("all MUPs"), std::string::npos);
}

TEST_F(CliRunTest, AuditMaxLevelRestricts) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"audit", "--csv", csv_path_, "--tau", "10", "--max-level",
                 "2", "--list-mups"},
                out, err),
            0);
  // No level-3+ MUPs may appear: every printed pattern has <= 2 labels.
  std::istringstream lines(out.str());
  std::string line;
  bool in_list = false;
  while (std::getline(lines, line)) {
    if (line.find("all MUPs") != std::string::npos) {
      in_list = true;
      continue;
    }
    if (!in_list || line.empty()) continue;
    const std::size_t commas =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), ','));
    EXPECT_LE(commas, 1u) << line;  // "a=x, b=y" has one comma
  }
}

TEST_F(CliRunTest, EnhancePrintsPlan) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"enhance", "--csv", csv_path_, "--tau", "10", "--lambda",
                 "2"},
                out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("Acquisition plan"), std::string::npos);
}

TEST_F(CliRunTest, EnhanceWithRule) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"enhance", "--csv", csv_path_, "--tau", "10", "--lambda",
                 "2", "--rule", "marital in {unknown}"},
                out, err),
            0)
      << err.str();
  // No suggested combination may use marital=unknown.
  EXPECT_EQ(out.str().find("marital=unknown  e.g."), std::string::npos);
}

TEST_F(CliRunTest, EnhanceRejectsBadRule) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"enhance", "--csv", csv_path_, "--rule", "nope nope"}, out,
                err),
            1);
  EXPECT_NE(err.str().find("bad --rule"), std::string::npos);
}

TEST_F(CliRunTest, EnhanceRejectsBadLambda) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"enhance", "--csv", csv_path_, "--lambda", "9"}, out, err),
            1);
}

TEST_F(CliRunTest, MissingFileReportsNotFound) {
  std::ostringstream out, err;
  EXPECT_EQ(::coverage::cli::Run({"audit", "--csv", "/nonexistent/file.csv"}, out, err), 1);
  EXPECT_NE(err.str().find("NotFound"), std::string::npos);
}

// ---------------------------------------------------- schema inference --

TEST(InferFromCsv, BuildsDictionaryInOrder) {
  std::stringstream ss("city,tier\nparis,a\nlyon,b\nparis,a\nnice,a\n");
  auto data = Dataset::InferFromCsv(ss);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_rows(), 4u);
  const Schema& schema = data->schema();
  EXPECT_EQ(schema.attribute(0).name, "city");
  EXPECT_EQ(schema.attribute(0).value_names,
            (std::vector<std::string>{"paris", "lyon", "nice"}));
  EXPECT_EQ(schema.attribute(1).value_names,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(data->at(2, 0), 0);  // paris again -> same code
}

TEST(InferFromCsv, RejectsHighCardinality) {
  std::stringstream ss("id\n1\n2\n3\n4\n");
  const auto result = Dataset::InferFromCsv(ss, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("bucketize"), std::string::npos);
}

TEST(InferFromCsv, RejectsEmptyAndRagged) {
  {
    std::stringstream ss("");
    EXPECT_FALSE(Dataset::InferFromCsv(ss).ok());
  }
  {
    std::stringstream ss("a,b\n");  // header only
    EXPECT_FALSE(Dataset::InferFromCsv(ss).ok());
  }
  {
    std::stringstream ss("a,b\n1\n");
    EXPECT_FALSE(Dataset::InferFromCsv(ss).ok());
  }
  {
    std::stringstream ss("a,,c\n1,2,3\n");  // empty column name
    EXPECT_FALSE(Dataset::InferFromCsv(ss).ok());
  }
}

TEST(InferFromCsv, RoundTripsWriteCsv) {
  const auto compas = datagen::MakeCompas(500, 9);
  std::stringstream ss;
  ASSERT_TRUE(compas.data.WriteCsv(ss).ok());
  auto inferred = Dataset::InferFromCsv(ss);
  ASSERT_TRUE(inferred.ok());
  ASSERT_EQ(inferred->num_rows(), compas.data.num_rows());
  // Dictionaries may be ordered differently (first appearance), but the
  // decoded labels must agree row by row.
  for (std::size_t r = 0; r < compas.data.num_rows(); ++r) {
    for (int a = 0; a < 4; ++a) {
      const std::string& expected =
          compas.data.schema().attribute(a).value_names[static_cast<
              std::size_t>(compas.data.at(r, a))];
      const std::string& got =
          inferred->schema().attribute(a).value_names[static_cast<
              std::size_t>(inferred->at(r, a))];
      EXPECT_EQ(got, expected);
    }
  }
}

}  // namespace
}  // namespace cli
}  // namespace coverage

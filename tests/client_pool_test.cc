// ClientPool (cluster/client_pool.h): keep-alive reuse, the injectable
// fault seam, retry/backoff accounting, and the idempotency contract —
// a non-idempotent request is never re-sent after a post-send failure.

#include "cluster/client_pool.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/http_server.h"

namespace coverage {
namespace cluster {
namespace {

using http::HttpServer;
using http::Request;
using http::Response;
using http::ServerOptions;

/// An echo server counting the requests it actually saw — the ground truth
/// for "was this request re-sent?".
class EchoServer {
 public:
  EchoServer() {
    ServerOptions options;
    options.port = 0;
    options.num_threads = 2;
    server_ = std::make_unique<HttpServer>(options, [this](const Request& r) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Response::Text(200, r.method + " " + r.target);
    });
    EXPECT_TRUE(server_->Start().ok());
  }
  ~EchoServer() { server_->Stop(); }

  int port() const { return server_->port(); }
  int hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<HttpServer> server_;
  std::atomic<int> hits_{0};
};

/// Accepts one TCP connection at a time and closes it immediately — every
/// roundtrip against it fails *after* the request bytes went out.
class SlammingListener {
 public:
  SlammingListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(fd_, 16), 0);
    thread_ = std::thread([this] {
      while (true) {
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) return;  // listener closed
        accepted_.fetch_add(1, std::memory_order_relaxed);
        ::close(conn);
      }
    });
  }
  ~SlammingListener() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }

  int port() const { return port_; }
  int accepted() const { return accepted_.load(std::memory_order_relaxed); }

 private:
  int fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<int> accepted_{0};
};

ClientPoolOptions FastOptions() {
  ClientPoolOptions options;
  options.client.connect_timeout_ms = 2000;
  options.client.read_timeout_ms = 2000;
  options.retry.backoff_ms = 0;  // no sleeping in tests
  return options;
}

TEST(ClientPoolTest, ReusesParkedConnections) {
  EchoServer server;
  ClientPool pool("127.0.0.1", server.port(), FastOptions());
  for (int i = 0; i < 5; ++i) {
    auto response = pool.Get("/ping");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, "GET /ping");
  }
  const ClientPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.connects, 1u);
  EXPECT_EQ(stats.reuses, 4u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ClientPoolTest, FaultHookFailuresRetryAndRecover) {
  EchoServer server;
  ClientPoolOptions options = FastOptions();
  options.retry.max_attempts = 3;
  options.retry.backoff_ms = 50;
  std::atomic<int> calls{0};
  options.fault_hook = [&](int attempt) {
    calls.fetch_add(1);
    return attempt <= 2 ? Status::Internal("injected transport fault")
                        : Status::OK();
  };
  std::vector<int> sleeps;
  options.sleep_fn = [&](int ms) { sleeps.push_back(ms); };

  ClientPool pool("127.0.0.1", server.port(), options);
  auto response = pool.Post("/v1/query", "{}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(pool.stats().retries, 2u);
  EXPECT_EQ(pool.stats().failures, 0u);
  // Exponential: 50 before the first retry, 100 before the second.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 50);
  EXPECT_EQ(sleeps[1], 100);
  // The hook fired before anything was sent, so the server saw exactly one.
  EXPECT_EQ(server.hits(), 1);
}

TEST(ClientPoolTest, ExhaustedAttemptsReportFailure) {
  EchoServer server;
  obs::MetricsRegistry registry;
  ClientPoolOptions options = FastOptions();
  options.retry.max_attempts = 3;
  options.fault_hook = [](int) { return Status::Internal("down"); };
  options.errors = registry.GetCounter("coverage_cluster_shard_errors_total",
                                       "help", {{"shard", "test"}});

  ClientPool pool("127.0.0.1", server.port(), options);
  auto response = pool.Get("/ping");
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInternal);
  EXPECT_EQ(pool.stats().retries, 2u);
  EXPECT_EQ(pool.stats().failures, 1u);
  EXPECT_EQ(options.errors->value(), 1u);
  EXPECT_EQ(server.hits(), 0);
}

TEST(ClientPoolTest, ConnectRefusedIsRetryableEvenWhenNotIdempotent) {
  // Dial a port nothing listens on: every attempt fails before any byte is
  // sent, so even a non-idempotent request may retry safely.
  ClientPoolOptions options = FastOptions();
  options.retry.max_attempts = 2;
  ClientPool pool("127.0.0.1", 1, options);
  Request request;
  request.method = "POST";
  request.target = "/v1/sessions/s1/append";
  request.version = "HTTP/1.1";
  auto response = pool.Roundtrip(request, /*idempotent=*/false);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(pool.stats().retries, 1u);
}

TEST(ClientPoolTest, PostSendFailureDoesNotResendNonIdempotent) {
  SlammingListener listener;
  ClientPoolOptions options = FastOptions();
  options.retry.max_attempts = 4;

  ClientPool pool("127.0.0.1", listener.port(), options);
  Request request;
  request.method = "POST";
  request.target = "/v1/sessions/s1/append";
  request.version = "HTTP/1.1";
  request.body = "{\"rows\": []}";

  auto response = pool.Roundtrip(request, /*idempotent=*/false);
  EXPECT_FALSE(response.ok());
  // One connection, one send, no retry: the request may have reached the
  // server, so the pool must not fire it again.
  EXPECT_EQ(pool.stats().retries, 0u);
  EXPECT_EQ(pool.stats().failures, 1u);

  // The identical idempotent call retries through every attempt.
  const int before = listener.accepted();
  auto retried = pool.Roundtrip(request, /*idempotent=*/true);
  EXPECT_FALSE(retried.ok());
  EXPECT_EQ(pool.stats().retries, 3u);
  EXPECT_GE(listener.accepted() - before, 2);
}

TEST(ClientPoolTest, RpcLatencyHistogramObservesSuccesses) {
  EchoServer server;
  obs::MetricsRegistry registry;
  ClientPoolOptions options = FastOptions();
  options.rpc_seconds = registry.GetHistogram(
      "coverage_cluster_rpc_seconds", "help", {{"shard", "test"}});
  ClientPool pool("127.0.0.1", server.port(), options);
  ASSERT_TRUE(pool.Get("/a").ok());
  ASSERT_TRUE(pool.Get("/b").ok());
  EXPECT_EQ(options.rpc_seconds->count(), 2u);
}

TEST(ClientPoolTest, RetryPolicyValidates) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.Validate().ok());
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.backoff_ms = -1;
  EXPECT_FALSE(policy.Validate().ok());
}

}  // namespace
}  // namespace cluster
}  // namespace coverage

// Cluster shard-merge wire (cluster/cluster_wire.h): exact round-trips for
// msg types 3 (shard counts) and 4 (shard candidates), strict decoder
// rejection, golden byte pins (tests/golden/*.hex — regenerate with
// COVERAGE_UPDATE_GOLDEN=1), and the request-body builders the coordinator
// shares with the shard-side JSON decoders.

#include "cluster/cluster_wire.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "server/wire.h"
#include "server/wire_binary.h"

namespace coverage {
namespace cluster {
namespace {

Schema TestSchema() { return Schema::Uniform({2, 3, 2}); }

Pattern P(const std::string& text) {
  auto pattern = Pattern::Parse(text, TestSchema());
  EXPECT_TRUE(pattern.ok()) << text;
  return *pattern;
}

/// A fully deterministic candidates payload: every field fixed, seconds an
/// exactly-representable double, so the encoded bytes are pin-able.
AuditResult FixedAudit() {
  AuditResult audit;
  audit.mups = {P("1XX"), P("X2X")};
  audit.algorithm = "BREAKER";
  audit.max_level = -1;
  audit.tau = 30;
  audit.num_rows = 1234;
  audit.planner_rationale = "fixed";
  audit.stats.coverage_queries = 17;
  audit.stats.nodes_generated = 40;
  audit.stats.nodes_pruned = 8;
  audit.stats.num_mups = 2;
  audit.stats.seconds = 0.25;
  return audit;
}

QueryBatchResult FixedCounts() {
  QueryBatchResult batch;
  batch.results.resize(3);
  batch.results[0] = {120, true};
  batch.results[1] = {0, false};
  batch.results[2] = {7, true};
  batch.coverage_queries = 3;
  batch.seconds = 0.03125;
  return batch;
}

std::string HexEncode(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex.push_back(digits[c >> 4]);
    hex.push_back(digits[c & 0xf]);
  }
  return hex;
}

std::string GoldenPath(const std::string& name) {
  return std::string(COVERAGE_REPO_DIR) + "/tests/golden/" + name;
}

/// Compares `bytes` against the hex golden, or rewrites it when
/// COVERAGE_UPDATE_GOLDEN is set (review the diff like an API change — the
/// internal protocol is versioned by these pins).
void ExpectGolden(const std::string& name, const std::string& bytes) {
  const std::string path = GoldenPath(name);
  const std::string hex = HexEncode(bytes);
  if (std::getenv("COVERAGE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << hex << "\n";
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate per tests/golden/README.md)";
  std::string expected;
  in >> expected;
  EXPECT_EQ(hex, expected)
      << "cluster wire bytes drifted from " << name
      << " — if intentional, regenerate with COVERAGE_UPDATE_GOLDEN=1";
}

TEST(ClusterWireTest, CountsRoundTripExact) {
  const std::string bytes = EncodeShardCountsBinary(5000, FixedCounts());
  auto decoded = DecodeShardCountsBinary(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_rows, 5000u);
  EXPECT_EQ(decoded->coverage_queries, 3u);
  EXPECT_EQ(decoded->seconds, 0.03125);
  ASSERT_EQ(decoded->counts.size(), 3u);
  EXPECT_EQ(decoded->counts[0], 120u);
  EXPECT_EQ(decoded->counts[1], 0u);
  EXPECT_EQ(decoded->counts[2], 7u);
}

TEST(ClusterWireTest, CountsGoldenBytes) {
  ExpectGolden("cluster_counts_v1.hex",
               EncodeShardCountsBinary(5000, FixedCounts()));
}

TEST(ClusterWireTest, CandidatesRoundTripExact) {
  const AuditResult audit = FixedAudit();
  const std::string bytes = EncodeShardCandidatesBinary(1234, audit);
  auto decoded = DecodeShardCandidatesBinary(bytes, TestSchema());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_rows, 1234u);
  EXPECT_FALSE(decoded->audit.packed.has_value());
  ASSERT_EQ(decoded->audit.mups.size(), 2u);
  EXPECT_EQ(decoded->audit.mups[0].ToString(), "1XX");
  EXPECT_EQ(decoded->audit.mups[1].ToString(), "X2X");
  EXPECT_EQ(decoded->audit.tau, 30u);
  EXPECT_EQ(decoded->audit.stats.coverage_queries, 17u);
  EXPECT_EQ(decoded->audit.stats.seconds, 0.25);
  EXPECT_EQ(decoded->audit.algorithm, "BREAKER");
}

TEST(ClusterWireTest, CandidatesGoldenBytes) {
  ExpectGolden("cluster_candidates_v1.hex",
               EncodeShardCandidatesBinary(1234, FixedAudit()));
}

TEST(ClusterWireTest, DecodersRejectWrongType) {
  const std::string counts = EncodeShardCountsBinary(1, FixedCounts());
  const std::string candidates =
      EncodeShardCandidatesBinary(1, FixedAudit());
  // A counts frame offered to the candidates decoder (and vice versa) must
  // fail on msg_type, not misparse.
  EXPECT_FALSE(DecodeShardCandidatesBinary(counts, TestSchema()).ok());
  EXPECT_FALSE(DecodeShardCountsBinary(candidates).ok());
}

TEST(ClusterWireTest, DecodersRejectDamage) {
  const std::string bytes = EncodeShardCountsBinary(5000, FixedCounts());
  // Truncation at every prefix length.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeShardCountsBinary(bytes.substr(0, len)).ok()) << len;
  }
  // Trailing garbage.
  EXPECT_FALSE(DecodeShardCountsBinary(bytes + "x").ok());
  // Any single flipped payload byte trips the checksum.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x20);
  EXPECT_FALSE(DecodeShardCountsBinary(corrupt).ok());

  const std::string cand = EncodeShardCandidatesBinary(1, FixedAudit());
  for (std::size_t len = 0; len < cand.size(); len += 3) {
    EXPECT_FALSE(DecodeShardCandidatesBinary(cand.substr(0, len),
                                             TestSchema())
                     .ok())
        << len;
  }
}

TEST(ClusterWireTest, CountsRequestJsonParsesAsQueryBatch) {
  const Schema schema = TestSchema();
  const std::vector<Pattern> patterns = {P("1XX"), P("XX0")};
  const std::string body = CountsRequestJson(patterns);
  auto parsed = json::Parse(body);
  ASSERT_TRUE(parsed.ok());
  auto request = wire::QueryBatchRequestFromJson(*parsed, schema);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  ASSERT_EQ(request->queries.size(), 2u);
  EXPECT_EQ(request->queries[0].pattern.ToString(), "1XX");
  EXPECT_EQ(request->queries[1].pattern.ToString(), "XX0");
}

TEST(ClusterWireTest, AuditRequestJsonRoundTripsEveryKnob) {
  AuditRequest request;
  request.tau = 7;
  request.max_level = 3;
  request.algorithm = MupAlgorithm::kPatternBreaker;
  request.dominance_mode = MupSearchOptions::DominanceMode::kLinearScan;
  request.enumeration_limit = 1 << 20;
  const std::string body = AuditRequestJson(request);
  auto parsed = json::Parse(body);
  ASSERT_TRUE(parsed.ok());
  auto decoded = wire::AuditRequestFromJson(*parsed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->tau, 7u);
  EXPECT_EQ(decoded->max_level, 3);
  EXPECT_EQ(decoded->algorithm, MupAlgorithm::kPatternBreaker);
  EXPECT_EQ(decoded->dominance_mode,
            MupSearchOptions::DominanceMode::kLinearScan);
  EXPECT_EQ(decoded->enumeration_limit, std::uint64_t{1} << 20);
}

}  // namespace
}  // namespace cluster
}  // namespace coverage

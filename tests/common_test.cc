#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace coverage {
namespace {

// ---------------------------------------------------------------- Status --

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad things");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad things");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad things");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, WorksWithMoveOnlyLikeTypes) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  const std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

// ------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(1000), b.NextUint64(1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    differing += a.NextUint64(1 << 30) != b.NextUint64(1 << 30);
  }
  EXPECT_GT(differing, 40);
}

TEST(Rng, NextUint64RespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(7), 7u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBoolRoughlyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  auto sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  for (std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(CategoricalSampler, RespectsWeights) {
  Rng rng(21);
  const CategoricalSampler sampler({1.0, 3.0, 0.0, 6.0});
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(ZipfSampler, SkewsTowardsSmallIndices) {
  Rng rng(31);
  const ZipfSampler sampler(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

// ----------------------------------------------------------- string_util --

TEST(StringUtil, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtil, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(3.14, 4), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 4), "3");
  EXPECT_EQ(FormatDouble(0.5, 2), "0.5");
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
}

TEST(StringUtil, FormatCountGroupsThousands) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

// --------------------------------------------------------- table_printer --

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.Row().Cell("alpha").Cell(std::uint64_t{7}).Done();
  table.Row().Cell("b").Cell(std::uint64_t{123456}).Done();
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| name  | value  |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha | 7      |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 123456 |"), std::string::npos);
}

TEST(TablePrinter, MixedCellTypes) {
  TablePrinter table({"a", "b", "c", "d"});
  table.Row().Cell(1).Cell(2.5, 2).Cell(std::int64_t{-3}).Cell("x").Done();
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_NE(table.ToString().find("| 1 | 2.5 | -3 | x |"), std::string::npos);
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds());
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace coverage

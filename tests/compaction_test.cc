// EngineOptions::compact_tombstone_fraction: when retraction leaves the
// aggregated relation more than the configured fraction tombstones, the
// engine rebuilds it densely. The contract is purely internal — a
// compacting engine and a non-compacting twin must stay bit-identical in
// every observable (MUPs, coverages, epoch, row count) across any
// append/retract sequence, while the compacting one actually sheds its
// dead combinations.

#include "engine/coverage_engine.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "pattern/pattern_graph.h"

namespace coverage {
namespace {

std::vector<Value> RandomRow(const Schema& schema, Rng& rng) {
  std::vector<Value> row(static_cast<std::size_t>(schema.num_attributes()));
  for (int a = 0; a < schema.num_attributes(); ++a) {
    row[static_cast<std::size_t>(a)] =
        static_cast<Value>(rng.NextUint64(schema.cardinality(a)));
  }
  return row;
}

void ExpectSameObservables(const CoverageEngine& base,
                           const CoverageEngine& compacting,
                           const std::vector<Pattern>& probes) {
  EXPECT_EQ(base.epoch(), compacting.epoch());
  EXPECT_EQ(base.num_rows(), compacting.num_rows());
  EXPECT_EQ(base.Mups(), compacting.Mups());
  QueryContext ctx_base;
  QueryContext ctx_compacting;
  for (const Pattern& p : probes) {
    EXPECT_EQ(base.Query(p, ctx_base), compacting.Query(p, ctx_compacting))
        << p.ToString();
  }
}

TEST(Compaction, TwinEnginesStayBitIdenticalUnderRandomChurn) {
  const Schema schema = Schema::Uniform({4, 3, 3});
  EngineOptions base_opts;
  base_opts.tau = 3;
  EngineOptions compact_opts = base_opts;
  compact_opts.compact_tombstone_fraction = 0.25;
  CoverageEngine base(schema, base_opts);
  CoverageEngine compacting(schema, compact_opts);

  PatternGraph graph(schema);
  const auto probes = graph.EnumerateAll(1u << 12);
  ASSERT_TRUE(probes.ok());

  Rng rng(20260808);
  std::vector<std::vector<Value>> live;
  bool compacted_at_least_once = false;
  for (int step = 0; step < 60; ++step) {
    // Rows are materialised into `staged` first: CoverageEngine::Row is a
    // span, so the batch must point at storage that cannot reallocate or
    // mutate until both engines consumed it.
    std::vector<std::vector<Value>> staged;
    std::vector<CoverageEngine::Row> batch;
    if (live.empty() || rng.NextUint64(3) != 0) {
      const std::size_t n = 1 + rng.NextUint64(12);
      staged.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        staged.push_back(RandomRow(schema, rng));
        batch.push_back(staged.back());
      }
      ASSERT_TRUE(base.AppendRows(std::span(batch)).ok());
      ASSERT_TRUE(compacting.AppendRows(std::span(batch)).ok());
      live.insert(live.end(), staged.begin(), staged.end());
    } else {
      // Retract a random subset of the live rows.
      const std::size_t n = 1 + rng.NextUint64(live.size());
      staged.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t pick = rng.NextUint64(live.size());
        staged.push_back(std::move(live[pick]));
        live[pick] = std::move(live.back());
        live.pop_back();
      }
      for (const auto& row : staged) batch.push_back(row);
      ASSERT_TRUE(base.RetractRows(std::span(batch)).ok());
      ASSERT_TRUE(compacting.RetractRows(std::span(batch)).ok());
    }
    ExpectSameObservables(base, compacting, *probes);
    const auto compact_snap = compacting.snapshot();
    const auto base_snap = base.snapshot();
    EXPECT_LE(compact_snap->data().num_combinations(),
              base_snap->data().num_combinations());
    if (compact_snap->data().num_combinations() <
        base_snap->data().num_combinations()) {
      compacted_at_least_once = true;
    }
  }
  // The sequence above retracts enough that the threshold must have fired;
  // otherwise this test exercises nothing.
  EXPECT_TRUE(compacted_at_least_once);
}

TEST(Compaction, RetractionPastThresholdDropsEveryTombstone) {
  const Schema schema = Schema::Uniform({5, 5});
  EngineOptions options;
  options.tau = 2;
  options.compact_tombstone_fraction = 0.5;
  CoverageEngine engine(schema, options);

  std::vector<CoverageEngine::Row> rows;
  std::vector<std::vector<Value>> storage;
  storage.reserve(25);  // Row is a span: no reallocation under it
  for (Value a = 0; a < 5; ++a) {
    for (Value b = 0; b < 5; ++b) {
      storage.push_back({a, b});
      rows.push_back(storage.back());
    }
  }
  ASSERT_TRUE(engine.AppendRows(std::span(rows)).ok());
  EXPECT_EQ(engine.snapshot()->data().num_combinations(), 25u);

  // Retract 20 of the 25 combinations: 80% tombstones > 50% threshold.
  std::vector<CoverageEngine::Row> gone(rows.begin(), rows.begin() + 20);
  ASSERT_TRUE(engine.RetractRows(std::span(gone)).ok());
  const auto snap = engine.snapshot();
  EXPECT_EQ(snap->data().num_tombstones(), 0u);
  EXPECT_EQ(snap->data().num_combinations(), 5u);
  EXPECT_EQ(snap->num_rows(), 5u);

  // And the compacted epoch keeps answering correctly.
  QueryContext ctx;
  EXPECT_EQ(engine.Query(Pattern({Value{4}, Value{4}}), ctx), 1u);
  EXPECT_EQ(engine.Query(Pattern({Value{0}, Value{0}}), ctx), 0u);
  EXPECT_EQ(engine.Query(Pattern::Root(2), ctx), 5u);
}

TEST(Compaction, WindowedEvictionCompactsToo) {
  // A sliding window evicts whole epochs through the same RetractFrom path;
  // the compacting twin must track the plain one exactly there as well.
  const Schema schema = Schema::Uniform({3, 3, 3});
  EngineOptions base_opts;
  base_opts.tau = 2;
  base_opts.window_max_epochs = 3;
  EngineOptions compact_opts = base_opts;
  compact_opts.compact_tombstone_fraction = 0.2;
  CoverageEngine base(schema, base_opts);
  CoverageEngine compacting(schema, compact_opts);

  PatternGraph graph(schema);
  const auto probes = graph.EnumerateAll(1u << 12);
  ASSERT_TRUE(probes.ok());

  Rng rng(7);
  for (int step = 0; step < 25; ++step) {
    std::vector<std::vector<Value>> storage;
    std::vector<CoverageEngine::Row> batch;
    const int n = 1 + static_cast<int>(rng.NextUint64(6));
    storage.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      storage.push_back(RandomRow(schema, rng));
      batch.push_back(storage.back());
    }
    ASSERT_TRUE(base.AppendRows(std::span(batch)).ok());
    ASSERT_TRUE(compacting.AppendRows(std::span(batch)).ok());
    ExpectSameObservables(base, compacting, *probes);
  }
}

}  // namespace
}  // namespace coverage

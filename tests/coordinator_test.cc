// End-to-end cluster tests (cluster/coordinator.h): real CoverageServer
// shard processes-in-miniature (loopback HTTP, internal routes enabled)
// behind a real ClusterCoordinator. Covers: audit/query answers identical
// to a single node over the concatenated rows (JSON and binary), session
// routing through the ring, the structured 503 + error-metric degradation
// when a shard dies, schema-mismatch rejection at boot, and the cluster
// stats/health surfaces.

#include "cluster/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datagen/compas.h"
#include "server/coverage_server.h"
#include "server/http_client.h"
#include "server/json.h"
#include "server/wire.h"
#include "server/wire_binary.h"
#include "service/coverage_service.h"

namespace coverage {
namespace cluster {
namespace {

using http::HttpClient;
using http::Request;
using json::JsonValue;

Dataset Slice(const Dataset& full, std::size_t index, std::size_t count) {
  Dataset slice(full.schema());
  for (std::size_t r = index; r < full.num_rows(); r += count) {
    slice.AppendRow(full.row(r));
  }
  return slice;
}

CoverageService ServiceOver(const Dataset& data) {
  auto service = CoverageService::FromDataset(data);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

/// N shard CoverageServers over round-robin slices + a coordinator over
/// them, all on loopback ephemeral ports.
struct Cluster {
  std::vector<std::unique_ptr<CoverageServer>> shard_servers;
  std::vector<std::string> endpoints;
  std::unique_ptr<ClusterCoordinator> coordinator;

  std::string endpoint(std::size_t i) const { return endpoints[i]; }
};

Cluster MakeCluster(const Dataset& full, std::size_t num_shards,
                    bool start = true) {
  Cluster cluster;
  for (std::size_t i = 0; i < num_shards; ++i) {
    CoverageServerOptions options;
    options.http.port = 0;
    options.http.num_threads = 2;
    options.enable_internal_routes = true;
    cluster.shard_servers.push_back(std::make_unique<CoverageServer>(
        ServiceOver(Slice(full, i, num_shards)), options));
    EXPECT_TRUE(cluster.shard_servers.back()->Start().ok());
    cluster.endpoints.push_back(
        "127.0.0.1:" +
        std::to_string(cluster.shard_servers.back()->port()));
  }
  CoordinatorOptions options;
  options.http.port = 0;
  options.http.num_threads = 2;
  options.shards = cluster.endpoints;
  options.retry.backoff_ms = 0;
  options.boot_attempts = 5;
  options.boot_backoff_ms = 10;
  cluster.coordinator = std::make_unique<ClusterCoordinator>(options);
  if (start) {
    EXPECT_TRUE(cluster.coordinator->Start().ok());
  }
  return cluster;
}

HttpClient Connect(const Cluster& cluster) {
  auto client =
      HttpClient::Connect("127.0.0.1", cluster.coordinator->port());
  EXPECT_TRUE(client.ok());
  return std::move(*client);
}

std::vector<std::string> MupStrings(const JsonValue& audit_body) {
  std::vector<std::string> out;
  const JsonValue* mups = audit_body.Find("mups");
  EXPECT_NE(mups, nullptr);
  for (const JsonValue& m : mups->AsArray()) {
    out.push_back(*m.GetString("pattern"));
  }
  return out;
}

class ClusterCoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    full_ = datagen::MakeCompas(1200, 42).data;
    cluster_ = MakeCluster(full_, 2);
    reference_ = std::make_unique<CoverageService>(ServiceOver(full_));
  }

  Dataset full_{Schema::Uniform({2})};
  Cluster cluster_;
  std::unique_ptr<CoverageService> reference_;
};

TEST_F(ClusterCoordinatorTest, AuditMatchesSingleNodeOverJson) {
  AuditRequest request;
  request.tau = 12;
  auto expected = reference_->Audit(request);
  ASSERT_TRUE(expected.ok());

  auto client = Connect(cluster_);
  auto response = client.Post("/v1/audit", R"({"tau": 12})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200) << response->body;
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok());

  const std::string expected_body =
      json::Serialize(wire::ToJson(*expected, reference_->schema()));
  auto expected_json = json::Parse(expected_body);
  ASSERT_TRUE(expected_json.ok());
  // The MUP sets — the actual answer — are identical, pattern for pattern,
  // in the same order. Stats legitimately differ (RPC-tier accounting).
  EXPECT_EQ(MupStrings(*body), MupStrings(*expected_json));
  EXPECT_EQ(*body->GetUint("num_rows"), full_.num_rows());
  EXPECT_EQ(*body->GetUint("tau"), 12u);
  EXPECT_EQ(*body->GetString("algorithm"), "DISTRIBUTED-BREAKER");
}

TEST_F(ClusterCoordinatorTest, AuditNegotiatesBinary) {
  auto client = Connect(cluster_);
  Request request;
  request.method = "POST";
  request.target = "/v1/audit";
  request.version = "HTTP/1.1";
  request.headers.push_back({"Accept", wire::kBinaryContentType});
  request.body = R"({"tau": 12})";
  auto response = client.Roundtrip(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  const std::string* content_type = response->FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(*content_type, wire::kBinaryContentType);

  auto decoded =
      wire::DecodeAuditResultBinary(response->body, reference_->schema());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  AuditRequest reference_request;
  reference_request.tau = 12;
  auto expected = reference_->Audit(reference_request);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(decoded->mups.size(), expected->mups.size());
  for (std::size_t i = 0; i < decoded->mups.size(); ++i) {
    EXPECT_EQ(decoded->mups[i].ToString(), expected->mups[i].ToString());
  }
  EXPECT_EQ(decoded->num_rows, full_.num_rows());
}

TEST_F(ClusterCoordinatorTest, QueryCountsMatchSingleNode) {
  QueryBatchRequest batch;
  batch.queries.push_back(
      {*Pattern::Parse("0XXX", reference_->schema()), 5});
  batch.queries.push_back(
      {*Pattern::Parse("X1XX", reference_->schema()), 100000});
  auto expected = reference_->QueryBatch(batch);
  ASSERT_TRUE(expected.ok());

  auto client = Connect(cluster_);
  auto response = client.Post(
      "/v1/query",
      R"({"queries": [{"pattern": "0XXX", "tau": 5},
                      {"pattern": "X1XX", "tau": 100000}]})");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  const JsonValue* results = body->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->AsArray().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(*results->AsArray()[i].GetUint("coverage"),
              expected->results[i].coverage)
        << i;
    EXPECT_EQ(*results->AsArray()[i].GetBool("covered"),
              expected->results[i].covered)
        << i;
  }
}

TEST_F(ClusterCoordinatorTest, SessionsRouteThroughTheRing) {
  auto client = Connect(cluster_);
  auto created = client.Post("/v1/sessions", R"({"tau": 3})");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201) << created->body;
  auto body = json::Parse(created->body);
  ASSERT_TRUE(body.ok());
  const std::string id = *body->GetString("session_id");
  EXPECT_EQ(id, "s1");
  // The coordinator annotates which shard owns the session...
  const std::string shard = *body->GetString("shard");
  EXPECT_TRUE(shard == cluster_.endpoint(0) ||
              shard == cluster_.endpoint(1));
  // ...and it matches the ring's answer.
  EXPECT_EQ(shard, cluster_.coordinator->ring().OwnerOf(id));

  // Mutate and audit through the coordinator: verbs forward to the owner.
  auto append = client.Post("/v1/sessions/" + id + "/append",
                            R"({"rows": [[0, 1, 0, 1], [0, 1, 0, 1],
                                         [0, 1, 0, 1]]})");
  ASSERT_TRUE(append.ok());
  EXPECT_EQ(append->status, 200) << append->body;

  auto audit = client.Post("/v1/sessions/" + id + "/audit", "");
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->status, 200) << audit->body;

  // The merged listing carries the shard annotation too.
  auto list = client.Get("/v1/sessions");
  ASSERT_TRUE(list.ok());
  auto list_body = json::Parse(list->body);
  ASSERT_TRUE(list_body.ok());
  const JsonValue* sessions = list_body->Find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->AsArray().size(), 1u);
  EXPECT_EQ(*sessions->AsArray()[0].GetString("session_id"), id);
  EXPECT_EQ(*sessions->AsArray()[0].GetString("shard"), shard);

  Request del;
  del.method = "DELETE";
  del.target = "/v1/sessions/" + id;
  del.version = "HTTP/1.1";
  auto deleted = client.Roundtrip(del);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->status, 200) << deleted->body;

  auto missing = client.Post("/v1/sessions/" + id + "/audit", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST_F(ClusterCoordinatorTest, ShardDownDegradesToStructured503) {
  // Kill shard 1 (ungracefully, as far as the coordinator can tell).
  cluster_.shard_servers[1]->Stop();

  auto client = Connect(cluster_);
  auto response = client.Post("/v1/audit", R"({"tau": 12})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 503);
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok()) << response->body;
  const JsonValue* error = body->Find("error");
  ASSERT_NE(error, nullptr) << response->body;
  EXPECT_EQ(*error->GetString("code"), "shard_unavailable");
  EXPECT_EQ(*error->GetString("shard"), cluster_.endpoint(1));
  EXPECT_FALSE(error->GetString("message")->empty());

  // The per-shard error counter moved.
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("coverage_cluster_shard_errors_total"),
            std::string::npos);
  const std::string series = "coverage_cluster_shard_errors_total{shard=\"" +
                             cluster_.endpoint(1) + "\"}";
  const std::size_t at = metrics->body.find(series);
  ASSERT_NE(at, std::string::npos) << metrics->body;
  EXPECT_NE(metrics->body.find(series + " 0"), at) << "counter still zero";

  // Queries degrade the same way.
  auto query = client.Post(
      "/v1/query", R"({"queries": [{"pattern": "0XXX", "tau": 1}]})");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->status, 503);

  // The healthy shard still answers routes that only need it — the
  // coordinator itself stays up.
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
}

TEST_F(ClusterCoordinatorTest, StatsExposeTheClusterSection) {
  auto client = Connect(cluster_);
  ASSERT_EQ(client.Post("/v1/audit", R"({"tau": 12})")->status, 200);

  auto stats = client.Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto body = json::Parse(stats->body);
  ASSERT_TRUE(body.ok());
  const JsonValue* cluster = body->Find("cluster");
  ASSERT_NE(cluster, nullptr) << stats->body;
  EXPECT_EQ(*cluster->GetString("role"), "coordinator");
  EXPECT_EQ(*cluster->GetUint("audits"), 1u);
  const JsonValue* shards = cluster->Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->AsArray().size(), 2u);
  for (const JsonValue& shard : shards->AsArray()) {
    EXPECT_GE(*shard.GetUint("connects"), 1u);
  }
  const JsonValue* ring = cluster->Find("ring");
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(*ring->GetUint("members"), 2u);
}

TEST_F(ClusterCoordinatorTest, SchemaAndHealthReflectTheCluster) {
  auto client = Connect(cluster_);
  auto schema = client.Get("/v1/schema");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->body,
            json::Serialize(wire::ToJson(reference_->schema())));

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  auto body = json::Parse(health->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body->GetString("status"), "serving");
  EXPECT_EQ(*body->GetString("role"), "coordinator");
  EXPECT_EQ(*body->GetUint("shards"), 2u);
}

TEST_F(ClusterCoordinatorTest, EnhanceIsNotDistributed) {
  auto client = Connect(cluster_);
  auto response = client.Post("/v1/enhance", R"({"mups": []})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400) << response->body;
  EXPECT_NE(response->body.find("not distributed"), std::string::npos);
}

TEST(ClusterBootTest, SchemaMismatchIsRejected) {
  // Shard 0 speaks COMPAS, shard 1 a toy schema — the coordinator must
  // refuse to serve rather than sum counts across different worlds.
  CoverageServerOptions shard_options;
  shard_options.http.port = 0;
  shard_options.enable_internal_routes = true;

  CoverageServer compas(
      ServiceOver(datagen::MakeCompas(200, 1).data), shard_options);
  ASSERT_TRUE(compas.Start().ok());

  Dataset toy(Schema::Uniform({2, 3}));
  toy.AppendRow(std::vector<Value>{0, 1});
  CoverageServer other(ServiceOver(toy), shard_options);
  ASSERT_TRUE(other.Start().ok());

  CoordinatorOptions options;
  options.http.port = 0;
  options.shards = {"127.0.0.1:" + std::to_string(compas.port()),
                    "127.0.0.1:" + std::to_string(other.port())};
  options.retry.backoff_ms = 0;
  options.boot_attempts = 2;
  options.boot_backoff_ms = 1;
  ClusterCoordinator coordinator(options);
  const Status status = coordinator.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("schema"), std::string::npos);

  compas.Stop();
  other.Stop();
}

TEST(ClusterBootTest, UnreachableShardFailsStartAfterRetries) {
  CoordinatorOptions options;
  options.http.port = 0;
  options.shards = {"127.0.0.1:1"};  // nothing listens there
  options.retry.backoff_ms = 0;
  options.retry.max_attempts = 1;
  options.boot_attempts = 2;
  options.boot_backoff_ms = 1;
  ClusterCoordinator coordinator(options);
  EXPECT_FALSE(coordinator.Start().ok());
}

TEST(ClusterBootTest, OptionsValidate) {
  CoordinatorOptions options;
  EXPECT_FALSE(options.Validate().ok());  // no shards
  options.shards = {"127.0.0.1:9000"};
  EXPECT_TRUE(options.Validate().ok());
  options.ring_vnodes = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ClusterBootTest, ParseEndpointAcceptsHostPortOnly) {
  auto good = ParseEndpoint("10.0.0.1:9000");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->first, "10.0.0.1");
  EXPECT_EQ(good->second, 9000);
  // "localhost" is translated to a dialable numeric address.
  auto local = ParseEndpoint("localhost:19100");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->first, "127.0.0.1");
  EXPECT_FALSE(ParseEndpoint("nope").ok());
  EXPECT_FALSE(ParseEndpoint("host:notaport").ok());
  EXPECT_FALSE(ParseEndpoint("host:0").ok());
  EXPECT_FALSE(ParseEndpoint("host:70000").ok());
}

}  // namespace
}  // namespace cluster
}  // namespace coverage

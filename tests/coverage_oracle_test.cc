#include <gtest/gtest.h>

#include "common/rng.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/scan_coverage.h"
#include "dataset/aggregate.h"
#include "pattern/pattern_graph.h"

namespace coverage {
namespace {

Dataset MakeExample1() {
  Dataset data(Schema::Binary(3));
  data.AppendRow(std::vector<Value>{0, 1, 0});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  data.AppendRow(std::vector<Value>{0, 0, 0});
  data.AppendRow(std::vector<Value>{0, 1, 1});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  return data;
}

Pattern P(const std::string& text, const Schema& schema) {
  auto p = Pattern::Parse(text, schema);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(ScanCoverage, AppendixAWorkedExample) {
  // Appendix A computes cov(0X1) = 3 on Example 1.
  const Dataset data = MakeExample1();
  ScanCoverage oracle(data);
  QueryContext ctx;
  EXPECT_EQ(oracle.Coverage(P("0X1", data.schema()), ctx), 3u);
}

TEST(ScanCoverage, RootCoversEverything) {
  const Dataset data = MakeExample1();
  ScanCoverage oracle(data);
  QueryContext ctx;
  EXPECT_EQ(oracle.Coverage(Pattern::Root(3), ctx), 5u);
}

TEST(ScanCoverage, UncoveredRegion) {
  const Dataset data = MakeExample1();
  ScanCoverage oracle(data);
  QueryContext ctx;
  EXPECT_EQ(oracle.Coverage(P("1XX", data.schema()), ctx), 0u);
  EXPECT_EQ(oracle.Coverage(P("111", data.schema()), ctx), 0u);
}

TEST(ScanCoverage, CountsQueries) {
  const Dataset data = MakeExample1();
  ScanCoverage oracle(data);
  EXPECT_EQ(oracle.num_queries(), 0u);
  // num_queries() reports the default context, reachable explicitly.
  oracle.Coverage(Pattern::Root(3), oracle.default_context());
  oracle.Coverage(Pattern::Root(3), oracle.default_context());
  EXPECT_EQ(oracle.num_queries(), 2u);
  oracle.ResetQueryCounter();
  EXPECT_EQ(oracle.num_queries(), 0u);
}

TEST(BitmapCoverage, MatchesWorkedExample) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  BitmapCoverage oracle(agg);
  QueryContext ctx;
  EXPECT_EQ(oracle.Coverage(P("0X1", data.schema()), ctx), 3u);
  EXPECT_EQ(oracle.Coverage(Pattern::Root(3), ctx), 5u);
  EXPECT_EQ(oracle.Coverage(P("1XX", data.schema()), ctx), 0u);
  EXPECT_EQ(oracle.Coverage(P("001", data.schema()), ctx), 2u);
}

TEST(BitmapCoverage, IsCoveredThreshold) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  BitmapCoverage oracle(agg);
  QueryContext ctx;
  EXPECT_TRUE(oracle.IsCovered(P("0X1", data.schema()), 3, ctx));
  EXPECT_FALSE(oracle.IsCovered(P("0X1", data.schema()), 4, ctx));
}

TEST(BitmapCoverage, MatchVectorSelectsCombinations) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  BitmapCoverage oracle(agg);
  const BitVector mv = oracle.MatchVector(P("0X1", data.schema()));
  std::uint64_t total = 0;
  mv.ForEachSetBit([&](std::size_t k) {
    EXPECT_TRUE(P("0X1", data.schema()).Matches(agg.combination(k)));
    total += agg.count(k);
  });
  EXPECT_EQ(total, 3u);
}

TEST(BitmapCoverage, EmptyDataset) {
  const Dataset data(Schema::Binary(3));
  const AggregatedData agg(data);
  BitmapCoverage oracle(agg);
  QueryContext ctx;
  EXPECT_EQ(oracle.Coverage(Pattern::Root(3), ctx), 0u);
  EXPECT_EQ(oracle.Coverage(P("101", data.schema()), ctx), 0u);
}

TEST(BitmapCoverage, AgreesWithScanOnRandomData) {
  // Property: the inverted-index oracle equals the definitional scan on the
  // full pattern graph of random datasets with mixed cardinalities.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    const Schema schema = Schema::Uniform({2, 3, 2, 4});
    Dataset data(schema);
    std::vector<Value> row(4);
    const std::size_t n = 50 + seed * 100;
    for (std::size_t i = 0; i < n; ++i) {
      for (int a = 0; a < 4; ++a) {
        row[static_cast<std::size_t>(a)] = static_cast<Value>(
            rng.NextUint64(static_cast<std::uint64_t>(schema.cardinality(a))));
      }
      data.AppendRow(row);
    }
    const AggregatedData agg(data);
    BitmapCoverage bitmap(agg);
    ScanCoverage scan(data);
    PatternGraph graph(schema);
    auto all = graph.EnumerateAll(100000);
    ASSERT_TRUE(all.ok());
    QueryContext bctx, sctx;
    for (const Pattern& p : *all) {
      EXPECT_EQ(bitmap.Coverage(p, bctx), scan.Coverage(p, sctx))
          << p.ToString();
    }
  }
}

TEST(BitmapCoverage, SkewedDataStillExact) {
  // Heavily duplicated rows stress the count-vector dot product.
  Dataset data(Schema::Binary(2));
  for (int i = 0; i < 1000; ++i) data.AppendRow(std::vector<Value>{0, 0});
  data.AppendRow(std::vector<Value>{1, 1});
  const AggregatedData agg(data);
  EXPECT_EQ(agg.num_combinations(), 2u);
  BitmapCoverage oracle(agg);
  QueryContext ctx;
  EXPECT_EQ(oracle.Coverage(P("0X", data.schema()), ctx), 1000u);
  EXPECT_EQ(oracle.Coverage(P("X1", data.schema()), ctx), 1u);
  EXPECT_EQ(oracle.Coverage(Pattern::Root(2), ctx), 1001u);
}

TEST(BitmapCoverage, IndexExposesPerValueVectors) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  BitmapCoverage oracle(agg);
  // Attribute A1 value 0 covers all distinct combinations in Example 1.
  EXPECT_EQ(oracle.index(0, 0).Count(), agg.num_combinations());
  EXPECT_EQ(oracle.index(0, 1).Count(), 0u);
}

TEST(BitmapCoverage, DecrementalBuildMasksTombstonedBits) {
  const Dataset data = MakeExample1();
  AggregatedData agg(data);
  const BitmapCoverage base(agg);

  // Tombstone 001 (id 1, multiplicity 2) by retracting both occurrences.
  AggregatedData shrunk = agg;
  ASSERT_TRUE(shrunk.DecrementRow(std::vector<Value>{0, 0, 1}));
  ASSERT_TRUE(shrunk.DecrementRow(std::vector<Value>{0, 0, 1}));
  const std::vector<std::size_t> tombstoned = {1};
  const BitmapCoverage dec(shrunk, base, tombstoned, {});

  // Queries agree with a from-scratch oracle over the surviving rows.
  Dataset surviving(data.schema());
  surviving.AppendRow(std::vector<Value>{0, 1, 0});
  surviving.AppendRow(std::vector<Value>{0, 0, 0});
  surviving.AppendRow(std::vector<Value>{0, 1, 1});
  const AggregatedData fresh(surviving);
  const BitmapCoverage scratch(fresh);
  PatternGraph graph(data.schema());
  const auto all = graph.EnumerateAll(100000);
  ASSERT_TRUE(all.ok());
  QueryContext dctx, sctx;
  for (const Pattern& p : *all) {
    EXPECT_EQ(dec.Coverage(p, dctx), scratch.Coverage(p, sctx))
        << p.ToString();
  }

  // The tombstoned combination's bits really are masked, so its match
  // vector is empty (a zero count alone would already keep the dot exact).
  EXPECT_FALSE(dec.MatchVector(P("001", data.schema())).Any());
  EXPECT_EQ(dec.index(2, 1).Count(), 1u);  // only 011 remains with A3=1

  // Reviving the combination through the mixed build re-sets its bits.
  AggregatedData regrown = shrunk;
  regrown.AppendRow(std::vector<Value>{0, 0, 1});
  regrown.AppendRow(std::vector<Value>{1, 1, 1});  // and a new combination
  const std::vector<std::size_t> revived = {1};
  const BitmapCoverage rev(regrown, dec, {}, revived);
  EXPECT_EQ(rev.Coverage(P("001", data.schema()), dctx), 1u);
  EXPECT_EQ(rev.Coverage(P("111", data.schema()), dctx), 1u);
  EXPECT_EQ(rev.Coverage(Pattern::Root(3), dctx), 5u);
  EXPECT_EQ(rev.index(2, 1).Count(), 3u);  // 001 back, 011, 111
}

}  // namespace
}  // namespace coverage

#include "server/coverage_server.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "server/http_client.h"
#include "server/json.h"
#include "server/wire.h"
#include "service/coverage_service.h"

namespace coverage {
namespace {

using http::HttpClient;
using http::Request;
using http::Response;
using json::JsonValue;

/// Zeroes every "seconds"-suffixed member in place: wall-clock timings are
/// the one legitimately nondeterministic part of the wire format, so the
/// byte-equivalence assertions compare everything else exactly.
void ZeroTimings(JsonValue& v) {
  if (v.is_array()) {
    for (JsonValue& item : v.AsArray()) ZeroTimings(item);
  } else if (v.is_object()) {
    for (auto& [key, value] : v.AsObject()) {
      if (key == "seconds" || key == "read_seconds" ||
          key == "update_seconds") {
        value = JsonValue(0);
      } else {
        ZeroTimings(value);
      }
    }
  }
}

std::string Normalized(const std::string& json_text) {
  auto parsed = json::Parse(json_text);
  EXPECT_TRUE(parsed.ok()) << json_text;
  if (!parsed.ok()) return "<unparseable>";
  ZeroTimings(*parsed);
  return json::Serialize(*parsed);
}

/// num_threads defaults to 1 because the byte-equivalence tests compare
/// MupSearchStats too, and the parallel DEEPDIVER's shared work queue makes
/// its *query counts* (not its MUP set) run-dependent.
CoverageService MakeCompasService(int num_threads = 1) {
  ServiceOptions options;
  options.num_threads = num_threads;
  auto service = CoverageService::FromSpec(DatagenSpec{"compas", 0, 13, 42},
                                           options);
  EXPECT_TRUE(service.ok());
  return std::move(*service);
}

class CoverageServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoverageServerOptions options;
    options.http.port = 0;
    options.http.num_threads = 4;
    options.session_defaults.tau = 5;
    server_ = std::make_unique<CoverageServer>(MakeCompasService(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  HttpClient Client() {
    auto client = HttpClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok());
    return std::move(*client);
  }

  std::unique_ptr<CoverageServer> server_;
};

// ------------------------------------------------------------- basics --

TEST_F(CoverageServerTest, HealthzReportsServing) {
  auto client = Client();
  auto response = client.Get("/healthz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body->GetString("status"), "serving");
  EXPECT_EQ(*body->GetUint("num_rows"), 6889u);
}

TEST_F(CoverageServerTest, SchemaRouteMatchesService) {
  auto client = Client();
  auto response = client.Get("/v1/schema");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body,
            json::Serialize(wire::ToJson(server_->service().schema())));
}

// ------------------------------------------------- byte equivalence --

TEST_F(CoverageServerTest, AuditOverLoopbackIsByteEquivalentToInProcess) {
  AuditRequest request;
  request.tau = 30;
  auto expected = server_->service().Audit(request);
  ASSERT_TRUE(expected.ok());
  const std::string expected_body = json::Serialize(
      wire::ToJson(*expected, server_->service().schema()));

  auto client = Client();
  auto response = client.Post("/v1/audit", R"({"tau": 30})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(Normalized(response->body), Normalized(expected_body));
}

TEST_F(CoverageServerTest, QueryOverLoopbackIsByteEquivalentToInProcess) {
  QueryBatchRequest request;
  for (const char* text : {"XXXX", "1XXX", "XX22", "0120"}) {
    auto pattern = Pattern::Parse(text, server_->service().schema());
    ASSERT_TRUE(pattern.ok());
    request.queries.push_back(QueryRequest{*pattern, 0});
  }
  auto expected = server_->service().QueryBatch(request);
  ASSERT_TRUE(expected.ok());

  auto client = Client();
  auto response = client.Post(
      "/v1/query", R"({"patterns": ["XXXX", "1XXX", "XX22", "0120"]})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(Normalized(response->body),
            Normalized(json::Serialize(wire::ToJson(*expected))));
}

TEST_F(CoverageServerTest, EnhanceOverLoopbackIsByteEquivalentToInProcess) {
  EnhanceRequest request;
  request.tau = 30;
  request.lambda = 1;
  auto expected = server_->service().Enhance(request);
  ASSERT_TRUE(expected.ok());

  auto client = Client();
  auto response =
      client.Post("/v1/enhance", R"({"tau": 30, "lambda": 1})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(Normalized(response->body),
            Normalized(json::Serialize(
                wire::ToJson(*expected, server_->service().schema()))));
}

TEST_F(CoverageServerTest, ThresholdQueriesUseTheEarlyExitKernel) {
  auto client = Client();
  auto response = client.Post(
      "/v1/query",
      R"({"queries": [{"pattern": "XXXX", "tau": 10}, {"pattern": "XX22"}]})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  const JsonValue::Array& results = body->Find("results")->AsArray();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(*results[0].GetBool("covered"), true);
  EXPECT_EQ(*results[0].GetUint("coverage"), 0u);  // threshold: not computed
}

// ------------------------------------------------------ error mapping --

TEST_F(CoverageServerTest, ErrorsMapOntoHttpStatusCodes) {
  auto client = Client();
  struct Case {
    const char* name;
    const char* target;
    const char* body;
    int want;
    const char* code;
  };
  const Case cases[] = {
      {"bad JSON", "/v1/audit", "{nope", 400, "invalid_argument"},
      {"unknown member", "/v1/audit", R"({"tauu": 3})", 400,
       "invalid_argument"},
      {"tau zero", "/v1/audit", R"({"tau": 0})", 400, "invalid_argument"},
      {"wrong member type", "/v1/audit", R"({"tau": "thirty"})", 400,
       "invalid_argument"},
      {"bad algorithm", "/v1/audit", R"({"algorithm": "quantum"})", 400,
       "invalid_argument"},
      {"bad pattern width", "/v1/query", R"({"patterns": ["XX"]})", 400,
       "invalid_argument"},
      {"queries and patterns", "/v1/query",
       R"({"patterns": ["XXXX"], "queries": []})", 400, "invalid_argument"},
      {"unknown session", "/v1/sessions/s999/audit", "{}", 404, "not_found"},
  };
  for (const Case& c : cases) {
    auto response = client.Post(c.target, c.body);
    ASSERT_TRUE(response.ok()) << c.name;
    EXPECT_EQ(response->status, c.want) << c.name;
    auto body = json::Parse(response->body);
    ASSERT_TRUE(body.ok()) << c.name;
    const JsonValue* error = body->Find("error");
    ASSERT_NE(error, nullptr) << c.name;
    EXPECT_EQ(*error->GetString("code"), c.code) << c.name;
  }
}

TEST_F(CoverageServerTest, MethodAndRouteMismatches) {
  auto client = Client();
  auto wrong_method = client.Post("/healthz", "{}");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
  auto unknown = client.Get("/v2/nothing");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404);
}

// --------------------------------------------------- session lifecycle --

TEST_F(CoverageServerTest, FullSessionLifecycleOverLoopback) {
  auto client = Client();

  // Create a session over an explicit 2x2 schema, tau 2.
  auto created = client.Post("/v1/sessions", R"({
    "schema": {"attributes": [
      {"name": "gender", "values": ["male", "female"]},
      {"name": "age", "values": ["young", "old"]}
    ]},
    "tau": 2
  })");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201) << created->body;
  auto created_body = json::Parse(created->body);
  ASSERT_TRUE(created_body.ok());
  const std::string id = *created_body->GetString("session_id");
  EXPECT_EQ(server_->num_sessions(), 1u);

  // Audit of the empty session: the root is the only MUP.
  auto empty_audit = client.Post("/v1/sessions/" + id + "/audit", "");
  ASSERT_TRUE(empty_audit.ok());
  EXPECT_EQ(empty_audit->status, 200);
  auto empty_audit_body = json::Parse(empty_audit->body);
  ASSERT_TRUE(empty_audit_body.ok());
  EXPECT_EQ(empty_audit_body->Find("mups")->AsArray().size(), 1u);
  EXPECT_EQ(*empty_audit_body->Find("mups")->AsArray()[0].GetString(
                "pattern"),
            "XX");

  // Append rows by label and by encoded value, mixed.
  auto append = client.Post("/v1/sessions/" + id + "/append", R"({
    "rows": [["male", "young"], ["male", "young"], [0, 1], [0, 1],
             ["female", "old"]]
  })");
  ASSERT_TRUE(append.ok());
  ASSERT_EQ(append->status, 200) << append->body;
  auto append_body = json::Parse(append->body);
  ASSERT_TRUE(append_body.ok());
  EXPECT_EQ(*append_body->GetUint("rows_appended"), 5u);
  EXPECT_EQ(*append_body->GetUint("epoch"), 1u);

  // (male, young) and (male, old) have counts 2, 2; female rows count 1.
  auto query = client.Post("/v1/sessions/" + id + "/query",
                           R"({"patterns": ["0X", "1X", "00", "11"]})");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->status, 200) << query->body;
  auto query_body = json::Parse(query->body);
  ASSERT_TRUE(query_body.ok());
  const JsonValue::Array& results = query_body->Find("results")->AsArray();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(*results[0].GetUint("coverage"), 4u);  // 0X: all male rows
  EXPECT_EQ(*results[1].GetUint("coverage"), 1u);  // 1X: one female row
  EXPECT_EQ(*results[2].GetUint("coverage"), 2u);  // 00: male young
  EXPECT_EQ(*results[3].GetUint("coverage"), 1u);  // 11: female old

  // The audit matches an in-process session fed the same data (content
  // equivalence of the full wire encoding).
  auto session = CoverageService::OpenSession(
      [&] {
        std::vector<Attribute> attrs;
        attrs.push_back(Attribute{"gender", {"male", "female"}});
        attrs.push_back(Attribute{"age", {"young", "old"}});
        return Schema(attrs);
      }(),
      [&] {
        CoverageService::SessionOptions so;
        so.tau = 2;
        return so;
      }());
  ASSERT_TRUE(session.ok());
  Dataset rows(session->schema());
  rows.AppendRow(std::vector<Value>{0, 0});
  rows.AppendRow(std::vector<Value>{0, 0});
  rows.AppendRow(std::vector<Value>{0, 1});
  rows.AppendRow(std::vector<Value>{0, 1});
  rows.AppendRow(std::vector<Value>{1, 1});
  ASSERT_TRUE(session->Append(rows).ok());
  auto audit = client.Post("/v1/sessions/" + id + "/audit", "");
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(Normalized(audit->body),
            Normalized(json::Serialize(
                wire::ToJson(session->Audit(), session->schema()))));

  // Retract the female row; every "1X"-side pattern goes uncovered.
  auto retract = client.Post("/v1/sessions/" + id + "/retract",
                             R"({"rows": [["female", "old"]]})");
  ASSERT_TRUE(retract.ok());
  ASSERT_EQ(retract->status, 200) << retract->body;
  auto retract_body = json::Parse(retract->body);
  ASSERT_TRUE(retract_body.ok());
  EXPECT_EQ(*retract_body->GetUint("rows_retracted"), 1u);

  Dataset gone(session->schema());
  gone.AppendRow(std::vector<Value>{1, 1});
  ASSERT_TRUE(session->Retract(gone).ok());
  auto after = client.Post("/v1/sessions/" + id + "/audit", "");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Normalized(after->body),
            Normalized(json::Serialize(
                wire::ToJson(session->Audit(), session->schema()))));

  // Sessions list shows it; close it; routes 404 afterwards.
  auto list = client.Get("/v1/sessions");
  ASSERT_TRUE(list.ok());
  auto list_body = json::Parse(list->body);
  ASSERT_TRUE(list_body.ok());
  ASSERT_EQ(list_body->Find("sessions")->AsArray().size(), 1u);
  EXPECT_EQ(*list_body->Find("sessions")->AsArray()[0].GetString(
                "session_id"),
            id);

  Request del;
  del.method = "DELETE";
  del.target = "/v1/sessions/" + id;
  auto closed = client.Roundtrip(std::move(del));
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->status, 200);
  EXPECT_EQ(server_->num_sessions(), 0u);
  auto missing = client.Post("/v1/sessions/" + id + "/audit", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST_F(CoverageServerTest, SessionDefaultsToServedSchema) {
  auto client = Client();
  auto created = client.Post("/v1/sessions", R"({"tau": 3})");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201) << created->body;
  auto body = json::Parse(created->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body->GetUint("num_attributes"),
            static_cast<std::uint64_t>(
                server_->service().schema().num_attributes()));
}

TEST_F(CoverageServerTest, SessionRejectsBadRows) {
  auto client = Client();
  auto created = client.Post("/v1/sessions", "{}");
  ASSERT_EQ(created->status, 201);
  const std::string id =
      *json::Parse(created->body)->GetString("session_id");
  struct Case {
    const char* name;
    const char* body;
  };
  const Case cases[] = {
      {"row too short", R"({"rows": [["African-American"]]})"},
      {"unknown label", R"({"rows": [["Martian", "x", "x", "x"]]})"},
      {"out-of-range int", R"({"rows": [[99, 0, 0, 0]]})"},
      {"negative int", R"({"rows": [[-1, 0, 0, 0]]})"},
      {"non-scalar cell", R"({"rows": [[[0], 0, 0, 0]]})"},
      {"rows not arrays", R"({"rows": [42]})"},
      {"unknown member", R"({"rowz": []})"},
  };
  for (const Case& c : cases) {
    auto response = client.Post("/v1/sessions/" + id + "/append", c.body);
    ASSERT_TRUE(response.ok()) << c.name;
    EXPECT_EQ(response->status, 400) << c.name << ": " << response->body;
  }
  // Nothing was appended by any rejected request.
  auto audit = client.Post("/v1/sessions/" + id + "/audit", "");
  auto audit_body = json::Parse(audit->body);
  ASSERT_TRUE(audit_body.ok());
  EXPECT_EQ(*audit_body->GetUint("num_rows"), 0u);
}

// -------------------------------------------------------------- stats --

TEST_F(CoverageServerTest, StatsCountPerRouteWithLatencies) {
  auto client = Client();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Post("/v1/query", R"({"patterns": ["XXXX"]})").ok());
  }
  ASSERT_TRUE(client.Post("/v1/audit", R"({"tau": 0})").ok());  // an error
  auto stats = client.Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto body = json::Parse(stats->body);
  ASSERT_TRUE(body.ok());
  const JsonValue* routes = body->Find("routes");
  ASSERT_NE(routes, nullptr);
  const JsonValue* query = routes->Find("POST /v1/query");
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(*query->GetUint("count"), 3u);
  EXPECT_EQ(*query->GetUint("errors"), 0u);
  EXPECT_GT(query->Find("p50_seconds")->AsDouble(), 0.0);
  EXPECT_GE(query->Find("p99_seconds")->AsDouble(),
            query->Find("p50_seconds")->AsDouble());
  const JsonValue* audit = routes->Find("POST /v1/audit");
  ASSERT_NE(audit, nullptr);
  EXPECT_EQ(*audit->GetUint("count"), 1u);
  EXPECT_EQ(*audit->GetUint("errors"), 1u);
  // The stats handler reads the counter before its own request is added.
  EXPECT_GE(*body->Find("server")->GetUint("requests_handled"), 4u);
}

// -------------------------------------------------- concurrent clients --

/// TSan canary: immutable queries, session writes, session queries, and
/// stats reads all race against each other across live sockets.
TEST(CoverageServerConcurrency, MixedTrafficCanary) {
  CoverageServerOptions options;
  options.http.port = 0;
  options.http.num_threads = 4;
  options.session_defaults.tau = 2;
  CoverageServer server(MakeCompasService(/*num_threads=*/2), options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  auto setup = HttpClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(setup.ok());
  auto created = setup->Post("/v1/sessions", R"({"tau": 2})");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201);
  const std::string id =
      *json::Parse(created->body)->GetString("session_id");

  constexpr int kThreads = 6;
  constexpr int kIterations = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        StatusOr<Response> response = Status::Internal("unset");
        switch ((t + i) % 4) {
          case 0:
            response = client->Post("/v1/query",
                                    R"({"patterns": ["XXXX", "1XXX"]})");
            break;
          case 1:
            response = client->Post(
                "/v1/sessions/" + id + "/append",
                R"({"rows": [[0, 0, 0, 0], [1, 1, 1, 1]]})");
            break;
          case 2:
            response = client->Post("/v1/sessions/" + id + "/query",
                                    R"({"patterns": ["0XXX"]})");
            break;
          default:
            response = client->Get("/v1/stats");
            break;
        }
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

}  // namespace
}  // namespace coverage

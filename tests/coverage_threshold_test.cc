// Dedicated tests for the threshold query kernel (CoverageAtLeast): it is
// the operation the searches issue millions of times, with two early exits
// (empty accumulator, partial-sum cutoff) and selectivity-ordered ANDs that
// must never change the answer.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/scan_coverage.h"
#include "datagen/bluenile.h"
#include "dataset/aggregate.h"
#include "mups/mups.h"
#include "pattern/pattern_graph.h"

namespace coverage {
namespace {

Dataset RandomData(const Schema& schema, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(schema);
  std::vector<Value> row(static_cast<std::size_t>(schema.num_attributes()));
  for (std::size_t r = 0; r < n; ++r) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      const auto c = static_cast<std::uint64_t>(schema.cardinality(a));
      row[static_cast<std::size_t>(a)] =
          static_cast<Value>(std::min(rng.NextUint64(c), rng.NextUint64(c)));
    }
    data.AppendRow(row);
  }
  return data;
}

TEST(CoverageAtLeast, MatchesExactCountOnFullGraph) {
  const Schema schema = Schema::Uniform({3, 2, 4, 2});
  const Dataset data = RandomData(schema, 400, 5);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  PatternGraph graph(schema);
  auto all = graph.EnumerateAll(100000);
  ASSERT_TRUE(all.ok());
  QueryContext ctx;
  for (const Pattern& p : *all) {
    const std::uint64_t exact = oracle.Coverage(p, ctx);
    for (const std::uint64_t tau : {1u, 2u, 5u, 50u, 400u, 401u}) {
      EXPECT_EQ(oracle.CoverageAtLeast(p, tau, ctx), exact >= tau)
          << p.ToString() << " tau=" << tau;
    }
  }
}

TEST(CoverageAtLeast, BoundaryTaus) {
  const Schema schema = Schema::Binary(3);
  Dataset data(schema);
  for (int i = 0; i < 7; ++i) data.AppendRow(std::vector<Value>{1, 0, 1});
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const Pattern p = *Pattern::Parse("1X1", schema);
  QueryContext ctx;
  EXPECT_TRUE(oracle.CoverageAtLeast(p, 7, ctx));
  EXPECT_FALSE(oracle.CoverageAtLeast(p, 8, ctx));
  EXPECT_TRUE(oracle.CoverageAtLeast(Pattern::Root(3), 7, ctx));
  EXPECT_FALSE(oracle.CoverageAtLeast(Pattern::Root(3), 8, ctx));
}

TEST(CoverageAtLeast, ZeroMatchPatterns) {
  const Schema schema = Schema::Binary(3);
  Dataset data(schema);
  data.AppendRow(std::vector<Value>{0, 0, 0});
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  QueryContext ctx;
  EXPECT_FALSE(oracle.CoverageAtLeast(*Pattern::Parse("1XX", schema), 1, ctx));
  EXPECT_FALSE(oracle.CoverageAtLeast(*Pattern::Parse("111", schema), 1, ctx));
}

TEST(CoverageAtLeast, SingleCellFastPath) {
  const Schema schema = Schema::Uniform({4, 2});
  const Dataset data = RandomData(schema, 300, 9);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  ScanCoverage scan(data);
  QueryContext ctx;
  for (Value v = 0; v < 4; ++v) {
    const Pattern p = Pattern::Root(2).WithCell(0, v);
    const std::uint64_t exact = scan.Coverage(p, ctx);
    EXPECT_TRUE(oracle.CoverageAtLeast(p, exact == 0 ? 0 : exact, ctx));
    EXPECT_FALSE(oracle.CoverageAtLeast(p, exact + 1, ctx));
  }
}

TEST(CoverageAtLeast, HighCardinalitySchema) {
  const Dataset data = datagen::MakeBlueNile(5000, 2);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  ScanCoverage scan(data);
  Rng rng(3);
  QueryContext ctx;
  const Schema& schema = data.schema();
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> cells(7, kWildcard);
    for (int a = 0; a < 7; ++a) {
      if (rng.NextBool(0.4)) {
        cells[static_cast<std::size_t>(a)] = static_cast<Value>(
            rng.NextUint64(static_cast<std::uint64_t>(schema.cardinality(a))));
      }
    }
    const Pattern p(std::move(cells));
    const std::uint64_t exact = scan.Coverage(p, ctx);
    const std::uint64_t tau = 1 + rng.NextUint64(100);
    EXPECT_EQ(oracle.CoverageAtLeast(p, tau, ctx), exact >= tau) << p.ToString();
  }
}

TEST(CoverageAtLeast, ScanOracleDefaultImplementation) {
  // The base-class default routes through the exact count.
  const Schema schema = Schema::Binary(2);
  Dataset data(schema);
  data.AppendRow(std::vector<Value>{1, 1});
  data.AppendRow(std::vector<Value>{1, 0});
  ScanCoverage scan(data);
  QueryContext ctx;
  EXPECT_TRUE(scan.CoverageAtLeast(*Pattern::Parse("1X", schema), 2, ctx));
  EXPECT_FALSE(scan.CoverageAtLeast(*Pattern::Parse("1X", schema), 3, ctx));
  EXPECT_TRUE(scan.IsCovered(*Pattern::Parse("11", schema), 1, ctx));
}

TEST(CoverageAtLeast, QueryCounterAdvances) {
  const Schema schema = Schema::Binary(2);
  Dataset data(schema);
  data.AppendRow(std::vector<Value>{0, 0});
  const AggregatedData agg(data);
  BitmapCoverage oracle(agg);
  // The default context still backs num_queries() for serial callers; the
  // deprecated context-free overloads were the only other way to reach it.
  oracle.ResetQueryCounter();
  QueryContext& ctx = oracle.default_context();
  oracle.CoverageAtLeast(Pattern::Root(2), 1, ctx);
  oracle.CoverageAtLeast(*Pattern::Parse("0X", schema), 1, ctx);
  oracle.Coverage(*Pattern::Parse("00", schema), ctx);
  EXPECT_EQ(oracle.num_queries(), 3u);
}

TEST(AprioriGuard, EnumerationLimitTriggers) {
  // A wide, dense dataset makes the item lattice explode; the guard must
  // refuse rather than hang.
  const Schema schema = Schema::Binary(16);
  Rng rng(1);
  Dataset data(schema);
  std::vector<Value> row(16);
  for (int i = 0; i < 200; ++i) {
    for (int a = 0; a < 16; ++a) {
      row[static_cast<std::size_t>(a)] =
          static_cast<Value>(rng.NextUint64(2));
    }
    data.AppendRow(row);
  }
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  // A low threshold keeps most item-sets frequent, so the candidate count
  // blows past the guard during the level-2 join.
  MupSearchOptions options{.tau = 2};
  options.enumeration_limit = 200;
  const auto result = FindMupsApriori(oracle, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace coverage

#include "dataset/csv_stream.h"

#include <gtest/gtest.h>

#include <sstream>

#include "datagen/compas.h"
#include "dataset/dataset.h"

namespace coverage {
namespace {

std::string CompasCsv(std::size_t n) {
  const datagen::LabeledData compas = datagen::MakeCompas(n);
  std::ostringstream os;
  EXPECT_TRUE(compas.data.WriteCsv(os).ok());
  return os.str();
}

TEST(InferSchemaFromCsv, MatchesInferFromCsv) {
  const std::string csv = CompasCsv(500);
  std::istringstream schema_in(csv);
  auto schema = InferSchemaFromCsv(schema_in);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  std::istringstream data_in(csv);
  auto whole = Dataset::InferFromCsv(data_in);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(*schema == whole->schema());
}

TEST(InferSchemaFromCsv, RejectsEmptyAndHeaderOnly) {
  std::istringstream empty("");
  EXPECT_FALSE(InferSchemaFromCsv(empty).ok());
  std::istringstream header_only("a,b,c\n");
  EXPECT_FALSE(InferSchemaFromCsv(header_only).ok());
}

TEST(InferSchemaFromCsv, EnforcesMaxCardinality) {
  std::istringstream in("col\nv1\nv2\nv3\n");
  const auto schema = InferSchemaFromCsv(in, 2);
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("bucketize"), std::string::npos);
}

TEST(CsvChunkReader, ChunkedEqualsWholeFileRead) {
  const std::string csv = CompasCsv(337);
  std::istringstream schema_in(csv);
  const Schema schema = *InferSchemaFromCsv(schema_in);

  std::istringstream whole_in(csv);
  const auto whole = Dataset::ReadCsv(whole_in, schema);
  ASSERT_TRUE(whole.ok());

  for (const std::size_t chunk_rows : {1u, 7u, 64u, 1000u}) {
    std::istringstream chunk_in(csv);
    auto reader = CsvChunkReader::Open(chunk_in, schema);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    Dataset assembled(schema);
    std::size_t chunks = 0;
    for (;;) {
      const auto read = reader->ReadChunk(assembled, chunk_rows);
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      if (*read == 0) break;
      EXPECT_LE(*read, chunk_rows);
      ++chunks;
    }
    EXPECT_EQ(reader->rows_read(), whole->num_rows());
    ASSERT_EQ(assembled.num_rows(), whole->num_rows()) << chunk_rows;
    EXPECT_GE(chunks, (whole->num_rows() + chunk_rows - 1) / chunk_rows);
    for (std::size_t r = 0; r < whole->num_rows(); ++r) {
      for (int a = 0; a < schema.num_attributes(); ++a) {
        ASSERT_EQ(assembled.at(r, a), whole->at(r, a))
            << "row " << r << " attr " << a << " chunk " << chunk_rows;
      }
    }
  }
}

TEST(CsvChunkReader, SkipsBlankLinesAcrossChunkBoundaries) {
  const Schema schema = Schema::Binary(2);
  std::istringstream in("A1,A2\n0,1\n\n\n1,0\n\n0,0\n");
  auto reader = CsvChunkReader::Open(in, schema);
  ASSERT_TRUE(reader.ok());
  Dataset out(schema);
  std::size_t total = 0;
  for (;;) {
    const auto read = reader->ReadChunk(out, 1);
    ASSERT_TRUE(read.ok());
    if (*read == 0) break;
    total += *read;
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.at(1, 0), Value{1});
}

TEST(CsvChunkReader, RejectsMismatchedHeader) {
  const Schema schema = Schema::Binary(2);
  std::istringstream wrong_names("X,Y\n0,1\n");
  EXPECT_FALSE(CsvChunkReader::Open(wrong_names, schema).ok());
  std::istringstream wrong_width("A1\n0\n");
  EXPECT_FALSE(CsvChunkReader::Open(wrong_width, schema).ok());
}

TEST(CsvChunkReader, ReportsLineNumberOfBadRow) {
  const Schema schema = Schema::Binary(2);
  std::istringstream in("A1,A2\n0,1\n1,bogus\n");
  auto reader = CsvChunkReader::Open(in, schema);
  ASSERT_TRUE(reader.ok());
  Dataset out(schema);
  const auto first = reader->ReadChunk(out, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  const auto bad = reader->ReadChunk(out, 1);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace coverage

#include "tools/coverage_datagen_lib.h"

#include <gtest/gtest.h>

#include <sstream>

#include "coverage_lib.h"

namespace coverage {
namespace cli {
namespace {

TEST(DatagenParse, RequiresDataset) {
  EXPECT_FALSE(ParseDatagenArgs({}).ok());
  EXPECT_FALSE(ParseDatagenArgs({"--n", "100"}).ok());
}

TEST(DatagenParse, RejectsUnknownDataset) {
  EXPECT_FALSE(ParseDatagenArgs({"--dataset", "tpch"}).ok());
}

TEST(DatagenParse, ParsesEverything) {
  auto options = ParseDatagenArgs({"--dataset", "airbnb", "--n", "500", "--d",
                                   "9", "--seed", "7"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->dataset, "airbnb");
  EXPECT_EQ(options->n, 500u);
  EXPECT_EQ(options->d, 9);
  EXPECT_EQ(options->seed, 7u);
}

TEST(DatagenParse, ValidatesRanges) {
  EXPECT_FALSE(ParseDatagenArgs({"--dataset", "airbnb", "--d", "40"}).ok());
  EXPECT_FALSE(ParseDatagenArgs({"--dataset", "airbnb", "--d", "0"}).ok());
  EXPECT_FALSE(
      ParseDatagenArgs({"--dataset", "bluenile", "--with-label"}).ok());
  EXPECT_FALSE(ParseDatagenArgs({"--dataset", "compas", "--n", "x"}).ok());
}

TEST(DatagenParse, HelpShortCircuits) {
  auto options = ParseDatagenArgs({"--help"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options->help);
}

TEST(DatagenRun, HelpPrintsUsage) {
  std::ostringstream out, err;
  EXPECT_EQ(RunDatagen({"--help"}, out, err), 0);
  EXPECT_NE(out.str().find("usage: coverage_datagen"), std::string::npos);
}

TEST(DatagenRun, CompasRoundTripsThroughInference) {
  std::ostringstream out, err;
  ASSERT_EQ(RunDatagen({"--dataset", "compas", "--n", "500", "--seed", "3"},
                       out, err),
            0)
      << err.str();
  std::istringstream csv(out.str());
  auto data = Dataset::InferFromCsv(csv);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->num_rows(), 500u);
  EXPECT_EQ(data->num_attributes(), 4);
}

TEST(DatagenRun, CompasWithLabelAddsColumn) {
  std::ostringstream out, err;
  ASSERT_EQ(RunDatagen({"--dataset", "compas", "--n", "300", "--with-label"},
                       out, err),
            0);
  std::istringstream lines(out.str());
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header, "sex,age,race,marital,reoffended");
  std::string row;
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_TRUE(row.ends_with(",0") || row.ends_with(",1")) << row;
}

TEST(DatagenRun, CompasRejectsTinyN) {
  std::ostringstream out, err;
  EXPECT_EQ(RunDatagen({"--dataset", "compas", "--n", "10"}, out, err), 1);
}

TEST(DatagenRun, DiagonalMatchesTheorem1Shape) {
  std::ostringstream out, err;
  ASSERT_EQ(RunDatagen({"--dataset", "diagonal", "--d", "4"}, out, err), 0);
  std::istringstream csv(out.str());
  auto data = Dataset::ReadCsv(csv, Schema::Binary(4));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_rows(), 4u);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(data->at(static_cast<std::size_t>(i), j), i == j ? 1 : 0);
    }
  }
}

TEST(DatagenRun, AirbnbIsDeterministicPerSeed) {
  std::ostringstream a, b, err;
  ASSERT_EQ(RunDatagen({"--dataset", "airbnb", "--n", "100", "--d", "6",
                        "--seed", "5"},
                       a, err),
            0);
  ASSERT_EQ(RunDatagen({"--dataset", "airbnb", "--n", "100", "--d", "6",
                        "--seed", "5"},
                       b, err),
            0);
  EXPECT_EQ(a.str(), b.str());
}

TEST(DatagenRun, BlueNileSmallSample) {
  std::ostringstream out, err;
  ASSERT_EQ(RunDatagen({"--dataset", "bluenile", "--n", "50"}, out, err), 0);
  std::istringstream csv(out.str());
  auto data = Dataset::ReadCsv(csv, datagen::BlueNileSchema());
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->num_rows(), 50u);
}

TEST(DatagenRun, BadFlagsExitTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(RunDatagen({"--dataset", "compas", "--bogus"}, out, err), 2);
}

}  // namespace
}  // namespace cli
}  // namespace coverage

#include <gtest/gtest.h>

#include "coverage/bitmap_coverage.h"
#include "datagen/adversarial.h"
#include "datagen/airbnb.h"
#include "datagen/bluenile.h"
#include "datagen/compas.h"
#include "dataset/aggregate.h"
#include "mups/mups.h"

namespace coverage {
namespace {

// ---------------------------------------------------------------- COMPAS --

TEST(Compas, SchemaMatchesPaperEncoding) {
  const Schema schema = datagen::CompasSchema();
  ASSERT_EQ(schema.num_attributes(), 4);
  EXPECT_EQ(schema.cardinalities(), (std::vector<int>{2, 4, 4, 7}));
  EXPECT_EQ(schema.attribute(datagen::kCompasRace).value_names[2], "Hispanic");
  EXPECT_EQ(schema.attribute(datagen::kCompasMarital).value_names[3],
            "widowed");
}

TEST(Compas, GeneratesRequestedRows) {
  const auto compas = datagen::MakeCompas(3000, 1);
  EXPECT_EQ(compas.data.num_rows(), 3000u);
  EXPECT_EQ(compas.labels.size(), 3000u);
  for (int label : compas.labels) EXPECT_TRUE(label == 0 || label == 1);
}

TEST(Compas, DeterministicUnderSeed) {
  const auto a = datagen::MakeCompas(1000, 5);
  const auto b = datagen::MakeCompas(1000, 5);
  ASSERT_EQ(a.data.num_rows(), b.data.num_rows());
  for (std::size_t r = 0; r < a.data.num_rows(); ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(a.data.at(r, c), b.data.at(r, c));
  }
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Compas, ExactlyTwoWidowedHispanicsBothReoffended) {
  // The paper's XX23 observation: two matching rows, both re-offenders.
  const auto compas = datagen::MakeCompas();
  const Schema& schema = compas.data.schema();
  const Pattern xx23 = *Pattern::Parse("XX23", schema);
  std::size_t matches = 0;
  for (std::size_t r = 0; r < compas.data.num_rows(); ++r) {
    if (xx23.Matches(compas.data.row(r))) {
      ++matches;
      EXPECT_EQ(compas.labels[r], 1);
    }
  }
  EXPECT_EQ(matches, 2u);
}

TEST(Compas, RoughlyHundredHispanicFemales) {
  const auto compas = datagen::MakeCompas();
  std::size_t hf = 0;
  for (std::size_t r = 0; r < compas.data.num_rows(); ++r) {
    hf += compas.data.at(r, datagen::kCompasSex) == 1 &&
          compas.data.at(r, datagen::kCompasRace) == 2;
  }
  EXPECT_GE(hf, 95u);
  EXPECT_LE(hf, 110u);
}

TEST(Compas, SingleValuesAllCoveredAtTauTen) {
  // §V-B1: every single attribute value has more instances than τ=10, yet
  // MUPs exist at levels 2-4 and none at levels 0-1.
  const auto compas = datagen::MakeCompas();
  const AggregatedData agg(compas.data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 10});
  EXPECT_FALSE(mups.empty());
  const auto hist = MupLevelHistogram(mups, 4);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 0u);
  EXPECT_GT(hist[2] + hist[3] + hist[4], 10u);  // tens of MUPs
  EXPECT_GT(hist[2], 0u);  // level-2 MUPs exist (the dangerous ones)
  // XX23 itself must be among the discovered MUPs: cov = 2 < 10 and both
  // parents (XX2X Hispanics, XXX3 widowed) exceed 10.
  const Pattern xx23 = *Pattern::Parse("XX23", compas.data.schema());
  EXPECT_TRUE(std::count(mups.begin(), mups.end(), xx23));
}

TEST(Compas, HispanicFemaleBehaviourDiffers) {
  // The HF subgroup's label mechanism is deliberately different: verify the
  // base rates diverge so the Fig. 11 experiment has signal.
  const auto compas = datagen::MakeCompas(6889, 42);
  std::size_t hf_n = 0, hf_pos = 0, other_n = 0, other_pos = 0;
  for (std::size_t r = 0; r < compas.data.num_rows(); ++r) {
    const bool hf = compas.data.at(r, datagen::kCompasSex) == 1 &&
                    compas.data.at(r, datagen::kCompasRace) == 2;
    const bool young = compas.data.at(r, datagen::kCompasAge) <= 1;
    if (!young) continue;  // compare within the young cohort
    if (hf) {
      ++hf_n;
      hf_pos += compas.labels[r];
    } else {
      ++other_n;
      other_pos += compas.labels[r];
    }
  }
  ASSERT_GT(hf_n, 20u);
  const double hf_rate = static_cast<double>(hf_pos) / hf_n;
  const double other_rate = static_cast<double>(other_pos) / other_n;
  EXPECT_LT(hf_rate, other_rate - 0.15);
}

// ---------------------------------------------------------------- AirBnB --

TEST(Airbnb, SchemaIsBooleanAmenities) {
  const Dataset data = datagen::MakeAirbnb(100, 13);
  EXPECT_EQ(data.num_attributes(), 13);
  for (int i = 0; i < 13; ++i) {
    EXPECT_EQ(data.schema().cardinality(i), 2);
  }
  EXPECT_EQ(data.schema().attribute(0).name, "amenity1");
}

TEST(Airbnb, RatesAreSkewedAndBounded) {
  double min_rate = 1.0, max_rate = 0.0;
  for (int i = 0; i < 36; ++i) {
    const double r = datagen::AirbnbRate(i);
    EXPECT_GE(r, 0.02 - 1e-9);
    EXPECT_LE(r, 0.5 + 1e-9);
    min_rate = std::min(min_rate, r);
    max_rate = std::max(max_rate, r);
  }
  EXPECT_LT(min_rate, 0.05);
  EXPECT_GT(max_rate, 0.4);
}

TEST(Airbnb, EmpiricalRatesMatchSchedule) {
  const Dataset data = datagen::MakeAirbnb(20000, 8, 3);
  for (int i = 0; i < 8; ++i) {
    std::size_t ones = 0;
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
      ones += data.at(r, i) == 1;
    }
    const double empirical = static_cast<double>(ones) / 20000.0;
    EXPECT_NEAR(empirical, datagen::AirbnbRate(i), 0.02) << "attr " << i;
  }
}

TEST(Airbnb, ProjectionConsistentWithNarrowGeneration) {
  // The rate schedule depends only on the attribute index, so the first
  // attributes of a wide dataset follow the same distribution as a narrow
  // one (the d-sweep benches rely on projecting one wide dataset).
  const Dataset wide = datagen::MakeAirbnb(5000, 20, 9);
  const Dataset projected = wide.Project({0, 1, 2});
  for (int i = 0; i < 3; ++i) {
    std::size_t ones = 0;
    for (std::size_t r = 0; r < projected.num_rows(); ++r) {
      ones += projected.at(r, i) == 1;
    }
    EXPECT_NEAR(static_cast<double>(ones) / 5000.0, datagen::AirbnbRate(i),
                0.03);
  }
}

TEST(Airbnb, ProducesBellShapedMupDistribution) {
  // Fig. 6's qualitative shape: at n=1000, d=13, τ=50 the MUP levels form a
  // bell with its mass in the middle levels, nothing at level 0/1.
  const Dataset data = datagen::MakeAirbnb(1000, 13);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 50});
  const auto hist = MupLevelHistogram(mups, 13);
  EXPECT_EQ(hist[0], 0u);
  std::size_t peak_level = 0;
  for (std::size_t l = 1; l < hist.size(); ++l) {
    if (hist[l] > hist[peak_level]) peak_level = l;
  }
  EXPECT_GE(peak_level, 3u);
  EXPECT_LE(peak_level, 9u);
  EXPECT_GT(mups.size(), 100u);  // "several thousand" at paper scale
}

// -------------------------------------------------------------- BlueNile --

TEST(BlueNile, SchemaCardinalitiesMatchPaper) {
  const Schema schema = datagen::BlueNileSchema();
  EXPECT_EQ(schema.cardinalities(), (std::vector<int>{10, 4, 7, 8, 3, 3, 5}));
  EXPECT_EQ(schema.attribute(0).name, "shape");
  EXPECT_EQ(schema.NumValueCombinations(), 100800u);
}

TEST(BlueNile, GeneratesSkewedCatalog) {
  const Dataset data = datagen::MakeBlueNile(20000, 1);
  EXPECT_EQ(data.num_rows(), 20000u);
  // Round (value 0) must dominate shapes.
  std::vector<std::size_t> shape_counts(10, 0);
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    ++shape_counts[static_cast<std::size_t>(data.at(r, 0))];
  }
  EXPECT_GT(shape_counts[0], shape_counts[5]);
  EXPECT_GT(shape_counts[0], 20000u / 10u);
}

TEST(BlueNile, HasMupsAtModestThreshold) {
  const Dataset data = datagen::MakeBlueNile(20000, 1);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 20});
  EXPECT_FALSE(mups.empty());
}

// ----------------------------------------------------------- adversarial --

TEST(Adversarial, DiagonalShape) {
  const Dataset data = datagen::MakeDiagonal(5);
  EXPECT_EQ(data.num_rows(), 5u);
  EXPECT_EQ(data.num_attributes(), 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(data.at(static_cast<std::size_t>(i), j), i == j ? 1 : 0);
    }
  }
}

TEST(Adversarial, VertexCoverShape) {
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}};
  const Dataset data = datagen::MakeVertexCoverReduction(3, edges);
  EXPECT_EQ(data.num_rows(), 6u);  // |V| + 3
  EXPECT_EQ(data.num_attributes(), 2);
  // Vertex 1 touches both edges.
  EXPECT_EQ(data.at(1, 0), 1);
  EXPECT_EQ(data.at(1, 1), 1);
  // Vertex 0 only the first.
  EXPECT_EQ(data.at(0, 0), 1);
  EXPECT_EQ(data.at(0, 1), 0);
  // Three all-zero rows.
  for (std::size_t r = 3; r < 6; ++r) {
    EXPECT_EQ(data.at(r, 0), 0);
    EXPECT_EQ(data.at(r, 1), 0);
  }
}

}  // namespace
}  // namespace coverage

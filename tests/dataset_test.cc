#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "dataset/aggregate.h"
#include "dataset/bucketize.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"

namespace coverage {
namespace {

// ---------------------------------------------------------------- Schema --

TEST(Schema, UniformBuildsNamedAttributes) {
  const Schema schema = Schema::Uniform({2, 3, 4});
  EXPECT_EQ(schema.num_attributes(), 3);
  EXPECT_EQ(schema.attribute(0).name, "A1");
  EXPECT_EQ(schema.attribute(2).name, "A3");
  EXPECT_EQ(schema.cardinality(1), 3);
  EXPECT_EQ(schema.cardinalities(), (std::vector<int>{2, 3, 4}));
}

TEST(Schema, BinaryShorthand) {
  const Schema schema = Schema::Binary(5);
  EXPECT_EQ(schema.num_attributes(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(schema.cardinality(i), 2);
}

TEST(Schema, NumValueCombinations) {
  EXPECT_EQ(Schema::Uniform({2, 3, 4}).NumValueCombinations(), 24u);
  EXPECT_EQ(Schema::Binary(10).NumValueCombinations(), 1024u);
}

TEST(Schema, NumPatternsIsProductOfCardinalityPlusOne) {
  // The pattern graph for three binary attributes has 27 nodes (§III-B).
  EXPECT_EQ(Schema::Binary(3).NumPatterns(), 27u);
  EXPECT_EQ(Schema::Uniform({2, 3}).NumPatterns(), 12u);
}

TEST(Schema, CombinationCountSaturates) {
  const Schema schema = Schema::Uniform(std::vector<int>(80, 3));
  EXPECT_EQ(schema.NumValueCombinations(), Schema::kCombinationLimit);
  EXPECT_EQ(schema.NumPatterns(), Schema::kCombinationLimit);
}

TEST(Schema, AttributeAndValueLookup) {
  Schema schema = Schema::Uniform({2, 2});
  auto idx = schema.AttributeIndex("A2");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
  EXPECT_FALSE(schema.AttributeIndex("missing").ok());
  auto v = schema.ValueIndex(0, "1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(schema.ValueIndex(0, "nope").ok());
}

TEST(Schema, ProjectReordersAttributes) {
  const Schema schema = Schema::Uniform({2, 3, 4});
  const Schema projected = schema.Project({2, 0});
  EXPECT_EQ(projected.num_attributes(), 2);
  EXPECT_EQ(projected.attribute(0).name, "A3");
  EXPECT_EQ(projected.cardinality(0), 4);
  EXPECT_EQ(projected.attribute(1).name, "A1");
}

TEST(Schema, EqualityComparesNamesAndValues) {
  EXPECT_EQ(Schema::Binary(3), Schema::Binary(3));
  EXPECT_FALSE(Schema::Binary(3) == Schema::Binary(4));
  EXPECT_FALSE(Schema::Binary(2) == Schema::Uniform({2, 3}));
}

// --------------------------------------------------------------- Dataset --

Dataset MakeExample1() {
  // Example 1 of the paper: binary A1..A3 with tuples
  // 010, 001, 000, 011, 001.
  Dataset data(Schema::Binary(3));
  data.AppendRow(std::vector<Value>{0, 1, 0});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  data.AppendRow(std::vector<Value>{0, 0, 0});
  data.AppendRow(std::vector<Value>{0, 1, 1});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  return data;
}

TEST(Dataset, AppendAndAccess) {
  const Dataset data = MakeExample1();
  EXPECT_EQ(data.num_rows(), 5u);
  EXPECT_EQ(data.num_attributes(), 3);
  EXPECT_EQ(data.at(0, 1), 1);
  EXPECT_EQ(data.at(2, 2), 0);
  const auto row = data.row(3);
  EXPECT_EQ(row[2], 1);
}

TEST(Dataset, ProjectKeepsValues) {
  const Dataset data = MakeExample1();
  const Dataset projected = data.Project({2, 1});
  EXPECT_EQ(projected.num_rows(), 5u);
  EXPECT_EQ(projected.num_attributes(), 2);
  EXPECT_EQ(projected.at(0, 0), 0);  // was A3 of row 0
  EXPECT_EQ(projected.at(0, 1), 1);  // was A2 of row 0
}

TEST(Dataset, HeadTakesPrefix) {
  const Dataset data = MakeExample1();
  const Dataset head = data.Head(2);
  EXPECT_EQ(head.num_rows(), 2u);
  EXPECT_EQ(head.at(1, 2), 1);
}

TEST(Dataset, SampleWithoutReplacement) {
  const Dataset data = MakeExample1();
  Rng rng(1);
  const Dataset sample = data.Sample(3, rng);
  EXPECT_EQ(sample.num_rows(), 3u);
  EXPECT_EQ(sample.num_attributes(), 3);
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset data = MakeExample1();
  std::stringstream ss;
  ASSERT_TRUE(data.WriteCsv(ss).ok());
  auto parsed = Dataset::ReadCsv(ss, data.schema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (int c = 0; c < data.num_attributes(); ++c) {
      EXPECT_EQ(parsed->at(r, c), data.at(r, c));
    }
  }
}

TEST(Dataset, CsvUsesValueLabels) {
  Schema schema({Attribute{"color", {"red", "green"}}});
  Dataset data(schema);
  data.AppendRow(std::vector<Value>{1});
  std::stringstream ss;
  ASSERT_TRUE(data.WriteCsv(ss).ok());
  EXPECT_EQ(ss.str(), "color\ngreen\n");
}

TEST(Dataset, CsvRejectsMissingHeader) {
  std::stringstream ss("");
  EXPECT_FALSE(Dataset::ReadCsv(ss, Schema::Binary(2)).ok());
}

TEST(Dataset, CsvRejectsWrongColumnCount) {
  std::stringstream ss("A1,A2\n0\n");
  const auto result = Dataset::ReadCsv(ss, Schema::Binary(2));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Dataset, CsvRejectsUnknownLabel) {
  std::stringstream ss("A1,A2\n0,7\n");
  EXPECT_FALSE(Dataset::ReadCsv(ss, Schema::Binary(2)).ok());
}

TEST(Dataset, CsvRejectsMismatchedHeader) {
  std::stringstream ss("A1,B2\n0,1\n");
  EXPECT_FALSE(Dataset::ReadCsv(ss, Schema::Binary(2)).ok());
}

TEST(Dataset, CsvSkipsBlankLines) {
  std::stringstream ss("A1,A2\n0,1\n\n1,0\n");
  const auto result = Dataset::ReadCsv(ss, Schema::Binary(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

// -------------------------------------------------------- AggregatedData --

TEST(AggregatedData, GroupsDuplicates) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  EXPECT_EQ(agg.num_combinations(), 4u);  // 001 appears twice
  EXPECT_EQ(agg.total_count(), 5u);
  EXPECT_EQ(agg.CountOf(std::vector<Value>{0, 0, 1}), 2u);
  EXPECT_EQ(agg.CountOf(std::vector<Value>{0, 1, 0}), 1u);
  EXPECT_EQ(agg.CountOf(std::vector<Value>{1, 1, 1}), 0u);
}

TEST(AggregatedData, EmptyDataset) {
  const Dataset data(Schema::Binary(3));
  const AggregatedData agg(data);
  EXPECT_EQ(agg.num_combinations(), 0u);
  EXPECT_EQ(agg.total_count(), 0u);
  EXPECT_EQ(agg.CountOf(std::vector<Value>{0, 0, 0}), 0u);
}

TEST(AggregatedData, CountsSumToRows) {
  Rng rng(9);
  Dataset data(Schema::Uniform({3, 2, 4}));
  std::vector<Value> row(3);
  for (int i = 0; i < 500; ++i) {
    row[0] = static_cast<Value>(rng.NextUint64(3));
    row[1] = static_cast<Value>(rng.NextUint64(2));
    row[2] = static_cast<Value>(rng.NextUint64(4));
    data.AppendRow(row);
  }
  const AggregatedData agg(data);
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < agg.num_combinations(); ++k) {
    total += agg.count(k);
    EXPECT_EQ(agg.CountOf(agg.combination(k)), agg.count(k));
  }
  EXPECT_EQ(total, 500u);
  EXPECT_LE(agg.num_combinations(), 24u);
}

TEST(AggregatedData, DecrementTombstonesAndRevivesInPlace) {
  const Schema schema = Schema::Binary(2);
  AggregatedData agg(schema);
  agg.AppendRow(std::vector<Value>{0, 0});
  agg.AppendRow(std::vector<Value>{0, 1});
  agg.AppendRow(std::vector<Value>{0, 0});
  ASSERT_EQ(agg.num_combinations(), 2u);
  ASSERT_EQ(agg.total_count(), 3u);
  EXPECT_EQ(agg.num_tombstones(), 0u);

  EXPECT_TRUE(agg.DecrementRow(std::vector<Value>{0, 0}));
  EXPECT_EQ(agg.CountOf(std::vector<Value>{0, 0}), 1u);
  EXPECT_EQ(agg.total_count(), 2u);
  EXPECT_EQ(agg.num_tombstones(), 0u);

  // A count reaching 0 tombstones the combination: the id and the slot
  // survive, so the table width never shrinks.
  EXPECT_TRUE(agg.DecrementRow(std::vector<Value>{0, 0}));
  EXPECT_EQ(agg.num_tombstones(), 1u);
  EXPECT_EQ(agg.num_combinations(), 2u);
  EXPECT_EQ(agg.CountOf(std::vector<Value>{0, 0}), 0u);
  EXPECT_EQ(agg.count(0), 0u);

  // Decrementing an absent or zero-count combination is a rejected no-op.
  EXPECT_FALSE(agg.DecrementRow(std::vector<Value>{0, 0}));
  EXPECT_FALSE(agg.DecrementRow(std::vector<Value>{1, 1}));
  EXPECT_EQ(agg.total_count(), 1u);

  // Re-appending the combination revives id 0 in place: prefix stability
  // holds through any append/retract interleaving.
  agg.AppendRow(std::vector<Value>{0, 0});
  EXPECT_EQ(agg.num_tombstones(), 0u);
  EXPECT_EQ(agg.num_combinations(), 2u);
  EXPECT_EQ(agg.count(0), 1u);
  agg.AppendRow(std::vector<Value>{1, 0});  // new combos still go to the end
  EXPECT_EQ(agg.num_combinations(), 3u);
  EXPECT_EQ(agg.CountOf(std::vector<Value>{1, 0}), 1u);
}

// ------------------------------------------------------------ Bucketizer --

TEST(Bucketizer, EquiWidthBounds) {
  const Bucketizer b = Bucketizer::EquiWidth("age", 0.0, 100.0, 4);
  EXPECT_EQ(b.num_buckets(), 4);
  EXPECT_EQ(b.Bucket(-5.0), 0);
  EXPECT_EQ(b.Bucket(10.0), 0);
  EXPECT_EQ(b.Bucket(30.0), 1);
  EXPECT_EQ(b.Bucket(60.0), 2);
  EXPECT_EQ(b.Bucket(99.0), 3);
  EXPECT_EQ(b.Bucket(1000.0), 3);
}

TEST(Bucketizer, BoundaryGoesToLowerBucket) {
  const Bucketizer b("x", {10.0, 20.0});
  EXPECT_EQ(b.Bucket(10.0), 0);  // x <= 10 -> bucket 0
  EXPECT_EQ(b.Bucket(10.5), 1);
  EXPECT_EQ(b.Bucket(20.0), 1);
  EXPECT_EQ(b.Bucket(20.1), 2);
}

TEST(Bucketizer, EquiDepthBalances) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  auto b = Bucketizer::EquiDepth("x", values, 4);
  ASSERT_TRUE(b.ok());
  std::vector<int> counts(static_cast<std::size_t>(b->num_buckets()), 0);
  for (double v : values) ++counts[static_cast<std::size_t>(b->Bucket(v))];
  for (int c : counts) EXPECT_NEAR(c, 25, 2);
}

TEST(Bucketizer, EquiDepthRejectsEmpty) {
  EXPECT_FALSE(Bucketizer::EquiDepth("x", {}, 3).ok());
  EXPECT_FALSE(Bucketizer::EquiDepth("x", {1.0}, 0).ok());
}

TEST(Bucketizer, EquiDepthCollapsesDuplicateBounds) {
  // All-equal values cannot support multiple buckets.
  auto b = Bucketizer::EquiDepth("x", std::vector<double>(50, 3.0), 4);
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->num_buckets(), 2);
}

TEST(Bucketizer, ToAttributeLabels) {
  const Bucketizer b("income", {1000.0, 5000.0});
  const Attribute attr = b.ToAttribute();
  EXPECT_EQ(attr.name, "income");
  ASSERT_EQ(attr.cardinality(), 3);
  EXPECT_EQ(attr.value_names[0], "<=1000");
  EXPECT_EQ(attr.value_names[1], "(1000,5000]");
  EXPECT_EQ(attr.value_names[2], ">5000");
}

TEST(Bucketizer, BucketizedColumnFeedsSchema) {
  // End-to-end §II preprocessing: continuous ages -> categorical attribute.
  const Bucketizer b = Bucketizer::EquiWidth("age", 0.0, 80.0, 4);
  Schema schema({b.ToAttribute()});
  Dataset data(schema);
  for (double age : {5.0, 25.0, 45.0, 70.0, 79.0}) {
    data.AppendRow(std::vector<Value>{b.Bucket(age)});
  }
  EXPECT_EQ(data.num_rows(), 5u);
  const AggregatedData agg(data);
  EXPECT_EQ(agg.CountOf(std::vector<Value>{3}), 2u);
}

}  // namespace
}  // namespace coverage

// Differential proof of the packed-pattern refactor: for every algorithm,
// every dominance mode, and serial + parallel execution, the packed
// implementation must be bit-identical to the legacy vector<int> one —
// same MUP sets, same per-algorithm query counts on the deterministic
// paths, and same audit wire bytes. The legacy implementations survive in
// src/mups/legacy_mups.cc exactly so this suite can shadow-run them
// (MupSearchOptions::use_packed_representation picks the side).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "coverage/bitmap_coverage.h"
#include "engine/coverage_engine.h"
#include "mups/legacy_mups.h"
#include "mups/mups.h"
#include "server/json.h"
#include "server/wire.h"
#include "service/coverage_service.h"

namespace coverage {
namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

struct DiffCase {
  std::vector<int> cardinalities;
  std::size_t num_rows;
  std::uint64_t tau;
  std::uint64_t seed;
  double skew;
  DominanceMode mode;
  int num_threads;
};

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& info) {
  std::string name = "c";
  for (int c : info.param.cardinalities) name += std::to_string(c);
  name += "_n" + std::to_string(info.param.num_rows);
  name += "_tau" + std::to_string(info.param.tau);
  name += "_s" + std::to_string(info.param.seed);
  switch (info.param.mode) {
    case DominanceMode::kBitmapIndex: name += "_bitmap"; break;
    case DominanceMode::kLinearScan: name += "_linear"; break;
    case DominanceMode::kNoPruning: name += "_none"; break;
  }
  name += "_t" + std::to_string(info.param.num_threads);
  return name;
}

Dataset GenerateSkewed(const std::vector<int>& cardinalities,
                       std::size_t num_rows, std::uint64_t seed, double skew) {
  const Schema schema = Schema::Uniform(cardinalities);
  Rng rng(seed);
  Dataset data(schema);
  std::vector<Value> row(cardinalities.size());
  for (std::size_t r = 0; r < num_rows; ++r) {
    for (std::size_t a = 0; a < cardinalities.size(); ++a) {
      const auto card = static_cast<std::uint64_t>(cardinalities[a]);
      std::uint64_t v = rng.NextUint64(card);
      if (rng.NextBool(skew)) v = std::min(v, rng.NextUint64(card));
      row[a] = static_cast<Value>(v);
    }
    data.AppendRow(row);
  }
  return data;
}

class PackedLegacyDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(PackedLegacyDifferential, PatternBreakerBitIdentical) {
  const DiffCase& c = GetParam();
  const Dataset data = GenerateSkewed(c.cardinalities, c.num_rows, c.seed,
                                      c.skew);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options{.tau = c.tau};
  options.dominance_mode = c.mode;
  options.num_threads = c.num_threads;

  MupSearchStats legacy_stats, packed_stats;
  options.use_packed_representation = false;
  const auto legacy = FindMupsPatternBreaker(oracle, options, &legacy_stats);
  options.use_packed_representation = true;
  const auto packed = FindMupsPatternBreaker(oracle, options, &packed_stats);

  EXPECT_EQ(legacy, packed);
  // The breaker's merge is queue-ordered and deterministic even in
  // parallel, so query counts must agree exactly.
  EXPECT_EQ(legacy_stats.coverage_queries, packed_stats.coverage_queries);
  EXPECT_EQ(legacy_stats.nodes_generated, packed_stats.nodes_generated);
  EXPECT_EQ(legacy_stats.num_mups, packed_stats.num_mups);
}

TEST_P(PackedLegacyDifferential, DeepDiverBitIdentical) {
  const DiffCase& c = GetParam();
  const Dataset data = GenerateSkewed(c.cardinalities, c.num_rows, c.seed,
                                      c.skew);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options{.tau = c.tau};
  options.dominance_mode = c.mode;
  options.num_threads = c.num_threads;

  MupSearchStats legacy_stats, packed_stats;
  options.use_packed_representation = false;
  const auto legacy = FindMupsDeepDiver(oracle, options, &legacy_stats);
  options.use_packed_representation = true;
  const auto packed = FindMupsDeepDiver(oracle, options, &packed_stats);

  EXPECT_EQ(legacy, packed);
  if (c.num_threads == 1) {
    // The serial dive order is deterministic; parallel work-stealing makes
    // query counts schedule-dependent, so only the serial path pins them.
    EXPECT_EQ(legacy_stats.coverage_queries, packed_stats.coverage_queries);
    EXPECT_EQ(legacy_stats.nodes_generated, packed_stats.nodes_generated);
    EXPECT_EQ(legacy_stats.nodes_pruned, packed_stats.nodes_pruned);
  }
  EXPECT_EQ(legacy_stats.num_mups, packed_stats.num_mups);
}

TEST_P(PackedLegacyDifferential, CombinerAndAprioriBitIdentical) {
  const DiffCase& c = GetParam();
  const Dataset data = GenerateSkewed(c.cardinalities, c.num_rows, c.seed,
                                      c.skew);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options{.tau = c.tau};
  options.num_threads = c.num_threads;

  MupSearchStats legacy_stats, packed_stats;
  options.use_packed_representation = false;
  auto legacy = FindMupsPatternCombiner(oracle, options, &legacy_stats);
  options.use_packed_representation = true;
  auto packed = FindMupsPatternCombiner(oracle, options, &packed_stats);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(*legacy, *packed);
  EXPECT_EQ(legacy_stats.coverage_queries, packed_stats.coverage_queries);
  EXPECT_EQ(legacy_stats.nodes_generated, packed_stats.nodes_generated);

  options.use_packed_representation = false;
  auto legacy_ap = FindMupsApriori(oracle, options, &legacy_stats);
  options.use_packed_representation = true;
  auto packed_ap = FindMupsApriori(oracle, options, &packed_stats);
  ASSERT_TRUE(legacy_ap.ok());
  ASSERT_TRUE(packed_ap.ok());
  EXPECT_EQ(*legacy_ap, *packed_ap);
  EXPECT_EQ(legacy_stats.coverage_queries, packed_stats.coverage_queries);
  EXPECT_EQ(legacy_stats.nodes_generated, packed_stats.nodes_generated);
}

TEST_P(PackedLegacyDifferential, DirectLegacyEntryPointsAgree) {
  // Call the relocated legacy implementations directly (not through the
  // dispatch flag) and the packed cores directly: same sets.
  const DiffCase& c = GetParam();
  const Dataset data = GenerateSkewed(c.cardinalities, c.num_rows, c.seed,
                                      c.skew);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const Schema& schema = data.schema();
  MupSearchOptions options{.tau = c.tau};
  options.dominance_mode = c.mode;
  options.num_threads = c.num_threads;

  auto codec = PatternCodec::Build(schema);
  ASSERT_TRUE(codec.ok());

  const auto legacy = legacy::FindMupsPatternBreaker(oracle, schema, options,
                                                     nullptr);
  const auto packed =
      FindMupsPatternBreakerPacked(oracle, schema, *codec, options, nullptr);
  std::vector<Pattern> decoded;
  decoded.reserve(packed.size());
  for (const PackedPattern& p : packed) decoded.push_back(codec->Decode(p));
  EXPECT_EQ(legacy, decoded);
}

TEST_P(PackedLegacyDifferential, AuditWireBytesBitIdentical) {
  // The full service path: a materialized legacy-encoded response and a
  // packed-encoded (materialize_patterns = false) response must serialize
  // to the same bytes.
  const DiffCase& c = GetParam();
  const Dataset data = GenerateSkewed(c.cardinalities, c.num_rows, c.seed,
                                      c.skew);
  ServiceOptions sopts;
  sopts.num_threads = c.num_threads;
  auto service = CoverageService::FromDataset(data, sopts);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  AuditRequest request;
  request.tau = c.tau;
  request.dominance_mode = c.mode;

  request.materialize_patterns = true;
  auto materialized = service->Audit(request);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ASSERT_TRUE(materialized->packed.has_value());
  EXPECT_EQ(materialized->mups, materialized->packed->Materialize());

  request.materialize_patterns = false;
  auto packed_only = service->Audit(request);
  ASSERT_TRUE(packed_only.ok());
  EXPECT_TRUE(packed_only->mups.empty());

  // Wall-clock is legitimately nondeterministic; with multiple worker
  // threads, the parallel DEEPDIVER's query/node counters are
  // schedule-dependent too (each worker stops counting at a different
  // point), so two independent Audit runs may differ in them. The MUP set
  // itself — the bytes this test is about — is deterministic either way.
  materialized->stats.seconds = 0.0;
  packed_only->stats.seconds = 0.0;
  if (c.num_threads > 1) {
    packed_only->stats.coverage_queries = materialized->stats.coverage_queries;
    packed_only->stats.nodes_generated = materialized->stats.nodes_generated;
    packed_only->stats.nodes_pruned = materialized->stats.nodes_pruned;
  }

  // Wire bytes from the packed encoder, both responses.
  const std::string a =
      json::Serialize(wire::ToJson(*materialized, service->schema()));
  const std::string b =
      json::Serialize(wire::ToJson(*packed_only, service->schema()));
  EXPECT_EQ(a, b);

  // And against the legacy encoder: strip the packed form so ToJson takes
  // the Pattern path, byte-identical by construction.
  AuditResult legacy_encoded = *materialized;
  legacy_encoded.packed.reset();
  const std::string l =
      json::Serialize(wire::ToJson(legacy_encoded, service->schema()));
  EXPECT_EQ(l, a);
}

TEST_P(PackedLegacyDifferential, EngineMaintenanceBitIdentical) {
  // Append + retract epochs through both engine representations: identical
  // MUP sets and identical maintenance query counts at every epoch.
  const DiffCase& c = GetParam();
  const Dataset data = GenerateSkewed(c.cardinalities, c.num_rows, c.seed,
                                      c.skew);
  EngineOptions lopts;
  lopts.tau = c.tau;
  lopts.dominance_mode = c.mode;
  lopts.num_threads = c.num_threads;
  lopts.use_packed_representation = false;
  EngineOptions popts = lopts;
  popts.use_packed_representation = true;

  CoverageEngine legacy_engine(data.schema(), lopts);
  CoverageEngine packed_engine(data.schema(), popts);

  // Split the rows into three append batches, then retract the middle one.
  const std::size_t third = data.num_rows() / 3;
  std::vector<Dataset> batches;
  for (int b = 0; b < 3; ++b) {
    Dataset batch(data.schema());
    const std::size_t begin = static_cast<std::size_t>(b) * third;
    const std::size_t end =
        b == 2 ? data.num_rows() : begin + third;
    for (std::size_t r = begin; r < end; ++r) batch.AppendRow(data.row(r));
    batches.push_back(std::move(batch));
  }
  for (const Dataset& batch : batches) {
    EngineUpdateStats ls, ps;
    ASSERT_TRUE(legacy_engine.AppendRows(batch, &ls).ok());
    ASSERT_TRUE(packed_engine.AppendRows(batch, &ps).ok());
    EXPECT_EQ(legacy_engine.Mups(), packed_engine.Mups());
    EXPECT_EQ(ls.coverage_queries, ps.coverage_queries);
    EXPECT_EQ(ls.mups_added, ps.mups_added);
    EXPECT_EQ(ls.mups_newly_covered, ps.mups_newly_covered);
  }
  if (batches[1].num_rows() > 0) {
    EngineUpdateStats ls, ps;
    ASSERT_TRUE(legacy_engine.RetractRows(batches[1], &ls).ok());
    ASSERT_TRUE(packed_engine.RetractRows(batches[1], &ps).ok());
    EXPECT_EQ(legacy_engine.Mups(), packed_engine.Mups());
    EXPECT_EQ(ls.coverage_queries, ps.coverage_queries);
    EXPECT_EQ(ls.mups_demoted, ps.mups_demoted);
    EXPECT_EQ(ls.mups_added, ps.mups_added);
  }
}

// >= 12 random schema / dominance / thread configurations (acceptance
// criterion); word-boundary shapes are covered by packed_pattern_test.
INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedLegacyDifferential,
    ::testing::Values(
        DiffCase{{2, 2, 2}, 40, 3, 101, 0.4, DominanceMode::kBitmapIndex, 1},
        DiffCase{{2, 2, 2, 2}, 80, 4, 102, 0.5, DominanceMode::kLinearScan,
                 1},
        DiffCase{{2, 2, 2, 2, 2}, 150, 5, 103, 0.6,
                 DominanceMode::kNoPruning, 1},
        DiffCase{{3, 2, 4}, 90, 4, 104, 0.5, DominanceMode::kBitmapIndex, 1},
        DiffCase{{4, 3, 3, 2}, 160, 5, 105, 0.5, DominanceMode::kLinearScan,
                 1},
        DiffCase{{5, 2, 4}, 110, 6, 106, 0.6, DominanceMode::kBitmapIndex,
                 1},
        DiffCase{{1, 2, 3}, 40, 3, 107, 0.4, DominanceMode::kBitmapIndex, 1},
        DiffCase{{2, 6, 2, 3}, 140, 4, 108, 0.4, DominanceMode::kNoPruning,
                 1},
        DiffCase{{3, 3}, 3, 10, 109, 0.2, DominanceMode::kBitmapIndex, 1},
        DiffCase{{2, 3, 3}, 30, 1, 110, 0.7, DominanceMode::kLinearScan, 1},
        // Parallel configurations (2 and 4 workers).
        DiffCase{{2, 2, 2, 2}, 120, 4, 111, 0.5, DominanceMode::kBitmapIndex,
                 2},
        DiffCase{{3, 3, 3}, 90, 9, 112, 0.8, DominanceMode::kBitmapIndex, 2},
        DiffCase{{2, 2, 2, 2, 2}, 200, 6, 113, 0.4,
                 DominanceMode::kLinearScan, 4},
        DiffCase{{4, 4}, 12, 1, 114, 0.6, DominanceMode::kBitmapIndex, 4}),
    CaseName);

TEST(PackedFallback, WideSchemaRoutesToLegacy) {
  // 50 binary attributes (2 packed bits each) plus 160 cardinality-1
  // attributes (1 bit each) need 260 bits > PackedPattern's 256-bit
  // capacity, while the combination space stays 2^50 — small enough for
  // AggregatedData. The codec must refuse and the public entry points must
  // still answer (via the legacy representation).
  std::vector<int> wide(50, 2);
  wide.insert(wide.end(), 160, 1);
  const Schema schema = Schema::Uniform(wide);
  EXPECT_FALSE(PatternCodec::Build(schema).ok());

  Dataset data(schema);
  std::vector<Value> row(wide.size(), 0);
  data.AppendRow(row);
  row[0] = 1;
  data.AppendRow(row);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options{.tau = 1};
  options.max_level = 1;
  const auto mups = FindMupsPatternBreaker(oracle, options);
  EXPECT_FALSE(mups.empty());

  // The packed dispatch reports the capacity failure explicitly.
  auto packed = FindMupsPacked(MupAlgorithm::kPatternBreaker, oracle, options);
  EXPECT_FALSE(packed.ok());
  EXPECT_EQ(packed.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace coverage

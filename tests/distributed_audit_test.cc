// Bit-identity proof for the scatter-gather audit
// (cluster/distributed_audit.h): over LocalShardBackends — the same
// CoverageEngine the coordinator's HTTP path wraps — the distributed MUP
// set must equal a single-node audit of the concatenated rows EXACTLY,
// across shard counts {1, 2, 4} × all three dominance modes, on real and
// adversarial data. Plus: empty shards, level caps, option validation,
// and shard-failure attribution.

#include "cluster/distributed_audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/shard_backend.h"
#include "datagen/adversarial.h"
#include "datagen/airbnb.h"
#include "datagen/compas.h"
#include "service/coverage_service.h"

namespace coverage {
namespace cluster {
namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

/// Round-robin row slice `index` of `count` — the same striding
/// tools/coverage_server.cc applies in --role shard mode.
Dataset Slice(const Dataset& full, std::size_t index, std::size_t count) {
  Dataset slice(full.schema());
  for (std::size_t r = index; r < full.num_rows(); r += count) {
    slice.AppendRow(full.row(r));
  }
  return slice;
}

struct Backends {
  std::vector<std::unique_ptr<LocalShardBackend>> owned;
  std::vector<ShardBackend*> ptrs;
};

Backends MakeBackends(const Dataset& full, std::size_t count) {
  Backends backends;
  for (std::size_t i = 0; i < count; ++i) {
    auto service = CoverageService::FromDataset(Slice(full, i, count));
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    backends.owned.push_back(std::make_unique<LocalShardBackend>(
        "shard" + std::to_string(i), std::move(*service)));
    backends.ptrs.push_back(backends.owned.back().get());
  }
  return backends;
}

std::vector<std::string> SortedMups(const std::vector<Pattern>& mups) {
  std::vector<std::string> out;
  out.reserve(mups.size());
  for (const Pattern& p : mups) out.push_back(p.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

/// Single-node ground truth on the concatenated rows.
std::vector<std::string> SingleNodeMups(const Dataset& full,
                                        std::uint64_t tau, int max_level) {
  auto service = CoverageService::FromDataset(full);
  EXPECT_TRUE(service.ok());
  AuditRequest request;
  request.tau = tau;
  request.max_level = max_level;
  auto audit = service->Audit(request);
  EXPECT_TRUE(audit.ok()) << audit.status().ToString();
  return SortedMups(audit->mups);
}

void ExpectBitIdentical(const Dataset& full, std::uint64_t tau,
                        int max_level = -1) {
  const std::vector<std::string> expected =
      SingleNodeMups(full, tau, max_level);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    for (const DominanceMode mode :
         {DominanceMode::kBitmapIndex, DominanceMode::kLinearScan,
          DominanceMode::kNoPruning}) {
      Backends backends = MakeBackends(full, shards);
      DistributedAuditOptions options;
      options.tau = tau;
      options.max_level = max_level;
      options.dominance_mode = mode;
      auto result =
          RunDistributedAudit(full.schema(), backends.ptrs, options);
      ASSERT_TRUE(result.ok())
          << shards << " shards: " << result.status().ToString();
      EXPECT_EQ(SortedMups(result->mups), expected)
          << shards << " shards, mode " << static_cast<int>(mode);
      EXPECT_EQ(result->num_rows, full.num_rows());
      EXPECT_EQ(result->tau, tau);
      // The result arrives pre-sorted in Pattern order — the same order
      // every single-node algorithm emits (determinism contract).
      EXPECT_TRUE(
          std::is_sorted(result->mups.begin(), result->mups.end()));
    }
  }
}

TEST(DistributedAuditTest, BitIdenticalOnCompas) {
  // Real schema (2/4/4/7), real value skew; tau low enough for deep MUPs.
  ExpectBitIdentical(datagen::MakeCompas(1500, 42).data, /*tau=*/12);
}

TEST(DistributedAuditTest, BitIdenticalOnAirbnb) {
  // Wider schema exercises the planner's algorithm choice per shard.
  ExpectBitIdentical(datagen::MakeAirbnb(1200, 5, 7), /*tau=*/20);
}

TEST(DistributedAuditTest, BitIdenticalOnAdversarialDiagonal) {
  // MakeDiagonal: row r has value 1 exactly on attribute r — striped
  // slices see *disjoint* non-zero cells, so every shard's local MUP set
  // wildly disagrees with the global one. Tier 2 must repair all of it.
  ExpectBitIdentical(datagen::MakeDiagonal(6), /*tau=*/1);
  ExpectBitIdentical(datagen::MakeDiagonal(6), /*tau=*/2);
}

TEST(DistributedAuditTest, BitIdenticalUnderLevelCap) {
  ExpectBitIdentical(datagen::MakeCompas(1500, 42).data, /*tau=*/12,
                     /*max_level=*/2);
}

TEST(DistributedAuditTest, EmptyShardsAreHarmless) {
  // 3 rows over 4 shards: one slice is empty; its cov is 0 for everything
  // and its local MUP antichain is the root. Must not perturb the result.
  const Dataset full = datagen::MakeDiagonal(3);
  ASSERT_EQ(full.num_rows(), 3u);
  const std::vector<std::string> expected = SingleNodeMups(full, 1, -1);
  Backends backends = MakeBackends(full, 4);
  DistributedAuditOptions options;
  options.tau = 1;
  auto result = RunDistributedAudit(full.schema(), backends.ptrs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedMups(result->mups), expected);
  ASSERT_EQ(result->shards.size(), 4u);
  EXPECT_EQ(result->shards[3].num_rows, 0u);
}

TEST(DistributedAuditTest, TinyBatchesScatterInRounds) {
  // max_batch_patterns=1 forces one RPC per tier-2 pattern; output is
  // unchanged, only the round count grows.
  const Dataset full = datagen::MakeCompas(800, 9).data;
  const std::vector<std::string> expected = SingleNodeMups(full, 10, -1);
  Backends backends = MakeBackends(full, 2);
  DistributedAuditOptions options;
  options.tau = 10;
  options.max_batch_patterns = 1;
  auto result = RunDistributedAudit(full.schema(), backends.ptrs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedMups(result->mups), expected);
  EXPECT_GE(result->stats.count_rounds, result->stats.patterns_counted);
}

TEST(DistributedAuditTest, StatsAccountForBothTiers) {
  const Dataset full = datagen::MakeCompas(1500, 42).data;
  Backends backends = MakeBackends(full, 2);
  DistributedAuditOptions options;
  options.tau = 12;

  auto pruned = RunDistributedAudit(full.schema(), backends.ptrs, options);
  ASSERT_TRUE(pruned.ok());
  // Tier 1 must actually fire with the index on...
  EXPECT_GT(pruned->stats.nodes_pruned_local, 0u);

  // ...and with pruning disabled, every evaluated node pays the RPC tier.
  options.dominance_mode = DominanceMode::kNoPruning;
  auto unpruned = RunDistributedAudit(full.schema(), backends.ptrs, options);
  ASSERT_TRUE(unpruned.ok());
  EXPECT_EQ(unpruned->stats.nodes_pruned_local, 0u);
  EXPECT_GT(unpruned->stats.patterns_counted,
            pruned->stats.patterns_counted);
  // Same answer either way.
  EXPECT_EQ(SortedMups(unpruned->mups), SortedMups(pruned->mups));
}

TEST(DistributedAuditTest, ToAuditResultIsWireCompatible) {
  const Dataset full = datagen::MakeCompas(600, 3).data;
  Backends backends = MakeBackends(full, 2);
  DistributedAuditOptions options;
  options.tau = 8;
  auto result = RunDistributedAudit(full.schema(), backends.ptrs, options);
  ASSERT_TRUE(result.ok());
  const AuditResult audit = result->ToAuditResult();
  EXPECT_EQ(audit.algorithm, "DISTRIBUTED-BREAKER");
  EXPECT_EQ(audit.mups.size(), result->mups.size());
  EXPECT_EQ(audit.num_rows, full.num_rows());
  EXPECT_EQ(audit.tau, 8u);
}

TEST(DistributedAuditTest, OptionsValidate) {
  DistributedAuditOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.tau = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = DistributedAuditOptions();
  options.max_batch_patterns = 0;
  EXPECT_FALSE(options.Validate().ok());

  const Dataset full = datagen::MakeDiagonal(3);
  Backends backends = MakeBackends(full, 2);
  auto no_shards = RunDistributedAudit(full.schema(), {}, {});
  EXPECT_FALSE(no_shards.ok());
}

/// A backend whose Counts always fails — exercises failure attribution.
class FailingBackend : public ShardBackend {
 public:
  explicit FailingBackend(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  StatusOr<ShardCountsResponse> Counts(
      const std::vector<Pattern>&) override {
    return Status::Internal("shard " + name_ + ": connection refused");
  }
  StatusOr<ShardCandidatesResponse> Candidates(
      const AuditRequest&) override {
    return Status::Internal("shard " + name_ + ": connection refused");
  }

 private:
  std::string name_;
};

TEST(DistributedAuditTest, ShardFailureNamesTheShard) {
  const Dataset full = datagen::MakeCompas(600, 3).data;
  Backends backends = MakeBackends(full, 2);
  FailingBackend bad("10.9.9.9:9999");
  std::vector<ShardBackend*> shards = {backends.ptrs[0], &bad,
                                       backends.ptrs[1]};
  DistributedAuditOptions options;
  options.tau = 8;
  std::string failed_shard;
  auto result =
      RunDistributedAudit(full.schema(), shards, options, &failed_shard);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(failed_shard, "10.9.9.9:9999");
}

}  // namespace
}  // namespace cluster
}  // namespace coverage

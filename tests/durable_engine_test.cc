#include "persist/durable_engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "persist/snapshot.h"

namespace coverage {
namespace persist {
namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

Dataset RandomBatch(const Schema& schema, std::size_t rows, Rng* rng) {
  Dataset batch(schema);
  std::vector<Value> row(static_cast<std::size_t>(schema.num_attributes()));
  for (std::size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      row[static_cast<std::size_t>(a)] = static_cast<Value>(
          rng->NextUint64(static_cast<std::uint64_t>(schema.cardinality(a))));
    }
    batch.AppendRow(row);
  }
  return batch;
}

/// Full observable-state equality: epoch, row count, MUP set, and the
/// coverage counts of every pattern up to level 2.
void ExpectEngineParity(const CoverageEngine& a, const CoverageEngine& b) {
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.Mups(), b.Mups());
  const Schema& schema = a.schema();
  const int d = schema.num_attributes();
  for (int i = 0; i < d; ++i) {
    for (Value v = 0; v < schema.cardinality(i); ++v) {
      std::vector<Value> cells(static_cast<std::size_t>(d), kWildcard);
      cells[static_cast<std::size_t>(i)] = v;
      const Pattern p1(cells);
      EXPECT_EQ(a.Query(p1), b.Query(p1)) << "level-1 " << i << "=" << v;
      for (int j = i + 1; j < d; ++j) {
        for (Value w = 0; w < schema.cardinality(j); ++w) {
          cells[static_cast<std::size_t>(j)] = w;
          const Pattern p2(cells);
          EXPECT_EQ(a.Query(p2), b.Query(p2));
          cells[static_cast<std::size_t>(j)] = kWildcard;
        }
      }
    }
  }
}

class DurableEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("durable_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DurableEngineTest, CreateAppendCloseRecoverIsBitIdentical) {
  const Schema schema = Schema::Uniform({2, 3, 2});
  EngineOptions eopts;
  eopts.tau = 3;
  eopts.durability = DurabilityMode::kFsync;

  CoverageEngine shadow(schema, eopts);
  Rng rng(7);
  {
    auto durable = DurableEngine::Create(dir_, schema, eopts);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    for (int i = 0; i < 5; ++i) {
      const Dataset batch = RandomBatch(schema, 10, &rng);
      ASSERT_TRUE((*durable)->Append(batch).ok());
      ASSERT_TRUE(shadow.AppendRows(batch).ok());
    }
    // Mutation records only: the segment header is bookkeeping, not data.
    EXPECT_EQ((*durable)->persist_stats().records_logged, 5u);
  }

  auto recovered = DurableEngine::Recover(dir_, eopts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery_stats().recovered);
  ExpectEngineParity((*recovered)->engine(), shadow);

  // The recovered session keeps working.
  const Dataset more = RandomBatch(schema, 8, &rng);
  ASSERT_TRUE((*recovered)->Append(more).ok());
  ASSERT_TRUE(shadow.AppendRows(more).ok());
  ExpectEngineParity((*recovered)->engine(), shadow);
}

TEST_F(DurableEngineTest, RetractionsReplayExactly) {
  const Schema schema = Schema::Uniform({2, 2, 3});
  EngineOptions eopts;
  eopts.tau = 4;
  eopts.durability = DurabilityMode::kFsync;
  CoverageEngine shadow(schema, eopts);
  Rng rng(11);
  Dataset first(schema);
  {
    auto durable = DurableEngine::Create(dir_, schema, eopts);
    ASSERT_TRUE(durable.ok());
    first = RandomBatch(schema, 20, &rng);
    ASSERT_TRUE((*durable)->Append(first).ok());
    ASSERT_TRUE(shadow.AppendRows(first).ok());
    // Retract the first three rows (GDPR-style erasure).
    Dataset gone(schema);
    for (std::size_t r = 0; r < 3; ++r) gone.AppendRow(first.row(r));
    ASSERT_TRUE((*durable)->Retract(gone).ok());
    ASSERT_TRUE(shadow.RetractRows(gone).ok());
  }
  auto recovered = DurableEngine::Recover(dir_, eopts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectEngineParity((*recovered)->engine(), shadow);
}

TEST_F(DurableEngineTest, SlidingWindowEvictionsReplayExactly) {
  const Schema schema = Schema::Uniform({3, 2, 2});
  EngineOptions eopts;
  eopts.tau = 2;
  eopts.durability = DurabilityMode::kFsync;
  eopts.window_max_epochs = 3;  // keep only the 3 newest batches
  CoverageEngine shadow(schema, eopts);
  Rng rng(13);
  {
    auto durable = DurableEngine::Create(dir_, schema, eopts);
    ASSERT_TRUE(durable.ok());
    for (int i = 0; i < 8; ++i) {
      const Dataset batch = RandomBatch(schema, 6, &rng);
      ASSERT_TRUE((*durable)->Append(batch).ok());
      ASSERT_TRUE(shadow.AppendRows(batch).ok());
    }
  }
  auto recovered = DurableEngine::Recover(dir_, eopts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectEngineParity((*recovered)->engine(), shadow);
}

TEST_F(DurableEngineTest, StoredProblemKnobsWinOnReopen) {
  const Schema schema = Schema::Binary(3);
  EngineOptions stored;
  stored.tau = 9;
  stored.max_level = 2;
  stored.dominance_mode = DominanceMode::kLinearScan;
  {
    auto durable = DurableEngine::Create(dir_, schema, stored);
    ASSERT_TRUE(durable.ok());
  }
  EngineOptions runtime;
  runtime.tau = 999;  // must be ignored: tau defines the stored session
  runtime.num_threads = 2;
  runtime.durability = DurabilityMode::kNone;
  auto recovered = DurableEngine::Recover(dir_, runtime);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->engine().options().tau, 9u);
  EXPECT_EQ((*recovered)->engine().options().max_level, 2);
  EXPECT_EQ((*recovered)->engine().options().dominance_mode,
            DominanceMode::kLinearScan);
  // Runtime knobs come from the caller.
  EXPECT_EQ((*recovered)->engine().options().num_threads, 2);
  EXPECT_EQ((*recovered)->durability(), DurabilityMode::kNone);
}

TEST_F(DurableEngineTest, CreateRefusesNonEmptyDirAndRecoverNeedsState) {
  const Schema schema = Schema::Binary(2);
  {
    auto durable = DurableEngine::Create(dir_, schema, {});
    ASSERT_TRUE(durable.ok());
  }
  EXPECT_FALSE(DurableEngine::Create(dir_, schema, {}).ok());

  const std::string empty_dir = dir_ + "_empty";
  ASSERT_TRUE(FileSystem::Default()->CreateDirs(empty_dir).ok());
  auto recovered = DurableEngine::Recover(empty_dir, {});
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
  std::filesystem::remove_all(empty_dir);
}

TEST_F(DurableEngineTest, CheckpointRotatesWalAndPrunesGenerations) {
  const Schema schema = Schema::Uniform({2, 2});
  EngineOptions eopts;
  eopts.tau = 2;
  DurableEngineOptions dopts;
  dopts.keep_snapshots = 2;
  auto durable = DurableEngine::Create(dir_, schema, eopts, dopts);
  ASSERT_TRUE(durable.ok());
  Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*durable)->Append(RandomBatch(schema, 4, &rng)).ok());
    ASSERT_TRUE((*durable)->Checkpoint().ok());
  }
  auto listing = ListSessionDir(FileSystem::Default(), dir_);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->snapshot_epochs.size(), 2u);  // pruned to keep_snapshots
  EXPECT_EQ(listing->snapshot_epochs.back(), 4u);
  // No WAL segment older than the oldest kept snapshot survives.
  ASSERT_FALSE(listing->wal_bases.empty());
  EXPECT_GE(listing->wal_bases.front(), listing->snapshot_epochs.front());
  EXPECT_EQ((*durable)->persist_stats().checkpoints_written, 4u);
}

TEST_F(DurableEngineTest, AutoCheckpointTriggersOnWalGrowth) {
  const Schema schema = Schema::Uniform({3, 3});
  EngineOptions eopts;
  eopts.tau = 2;
  eopts.durability = DurabilityMode::kAsync;  // WAL written, never fsynced
  DurableEngineOptions dopts;
  dopts.checkpoint_after_wal_bytes = 256;  // tiny: trigger quickly
  auto durable = DurableEngine::Create(dir_, schema, eopts, dopts);
  ASSERT_TRUE(durable.ok());
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*durable)->Append(RandomBatch(schema, 8, &rng)).ok());
  }
  EXPECT_GT((*durable)->persist_stats().checkpoints_written, 0u);
}

TEST_F(DurableEngineTest, WalFailurePoisonsMutationsButNotReads) {
  FaultFs fs(FileSystem::Default());
  DurableEngineOptions dopts;
  dopts.fs = &fs;
  dopts.checkpoint_after_wal_bytes = 0;  // keep the WAL as the only sink
  const Schema schema = Schema::Uniform({2, 2});
  EngineOptions eopts;
  eopts.tau = 2;
  eopts.durability = DurabilityMode::kFsync;
  auto durable = DurableEngine::Create(dir_, schema, eopts, dopts);
  ASSERT_TRUE(durable.ok());
  Rng rng(17);
  ASSERT_TRUE((*durable)->Append(RandomBatch(schema, 5, &rng)).ok());
  ASSERT_TRUE((*durable)->health().ok());

  fs.FailNextAppend(Status::Internal("injected ENOSPC"));
  const Dataset doomed = RandomBatch(schema, 5, &rng);
  EXPECT_FALSE((*durable)->Append(doomed).ok());
  EXPECT_FALSE((*durable)->health().ok());
  // Poisoned: memory may be ahead of disk, so no further durability
  // promises — but reads still serve the published snapshot.
  EXPECT_FALSE((*durable)->Append(doomed).ok());
  EXPECT_GE((*durable)->engine().num_rows(), 5u);
}

TEST_F(DurableEngineTest, CorruptNewestSnapshotFallsBackOneGeneration) {
  const Schema schema = Schema::Uniform({2, 3});
  EngineOptions eopts;
  eopts.tau = 3;
  eopts.durability = DurabilityMode::kFsync;
  CoverageEngine shadow(schema, eopts);
  Rng rng(23);
  {
    auto durable = DurableEngine::Create(dir_, schema, eopts);
    ASSERT_TRUE(durable.ok());
    for (int i = 0; i < 3; ++i) {
      const Dataset batch = RandomBatch(schema, 6, &rng);
      ASSERT_TRUE((*durable)->Append(batch).ok());
      ASSERT_TRUE(shadow.AppendRows(batch).ok());
      ASSERT_TRUE((*durable)->Checkpoint().ok());
    }
  }
  auto listing = ListSessionDir(FileSystem::Default(), dir_);
  ASSERT_TRUE(listing.ok());
  ASSERT_GE(listing->snapshot_epochs.size(), 2u);

  // Corrupt the newest snapshot's checksum region.
  const std::string newest =
      dir_ + "/" + SnapshotFileName(listing->snapshot_epochs.back());
  auto raw = FileSystem::Default()->ReadFileToString(newest);
  ASSERT_TRUE(raw.ok());
  std::string damaged = *raw;
  damaged[damaged.size() / 2] ^= 0x10;
  {
    auto file = FileSystem::Default()->NewWritableFile(newest + ".tmp", true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(damaged).ok());
    ASSERT_TRUE((*file)->Close().ok());
    ASSERT_TRUE(
        FileSystem::Default()->Rename(newest + ".tmp", newest).ok());
  }

  auto recovered = DurableEngine::Recover(dir_, eopts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GE((*recovered)->recovery_stats().snapshots_discarded, 1u);
  EXPECT_FALSE((*recovered)->recovery_stats().warnings.empty());
  // The previous generation plus the retained WAL segments cover everything
  // the corrupt snapshot held: recovery lands on the exact same state.
  ExpectEngineParity((*recovered)->engine(), shadow);
}

}  // namespace
}  // namespace persist
}  // namespace coverage

// Degenerate-shape edge cases for the incremental engine, each driven
// through the full durable path (Create → mutate → close → Recover) in all
// three dominance modes: a single-attribute schema (every pattern is level
// 0 or 1), a cardinality-1 attribute (its only value is its whole domain),
// and retraction of every row back to an empty window.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "persist/durable_engine.h"

namespace coverage {
namespace persist {
namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

Dataset RandomBatch(const Schema& schema, std::size_t rows, Rng* rng,
                    Dataset* log = nullptr) {
  Dataset batch(schema);
  std::vector<Value> row(static_cast<std::size_t>(schema.num_attributes()));
  for (std::size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      row[static_cast<std::size_t>(a)] = static_cast<Value>(
          rng->NextUint64(static_cast<std::uint64_t>(schema.cardinality(a))));
    }
    batch.AppendRow(row);
    if (log != nullptr) log->AppendRow(row);
  }
  return batch;
}

class EngineEdgeTest : public ::testing::TestWithParam<DominanceMode> {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("engine_edge_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineOptions Options(std::uint64_t tau) const {
    EngineOptions opts;
    opts.tau = tau;
    opts.dominance_mode = GetParam();
    opts.durability = DurabilityMode::kFsync;
    return opts;
  }

  std::string dir_;
};

TEST_P(EngineEdgeTest, SingleAttributeSchema) {
  // d == 1: the pattern graph is just the root plus one level-1 node per
  // value, so every maintenance structure runs at its smallest size.
  const Schema schema = Schema::Uniform({4});
  const EngineOptions opts = Options(/*tau=*/3);
  CoverageEngine shadow(schema, opts);
  Rng rng(101);
  {
    auto durable = DurableEngine::Create(dir_, schema, opts);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    for (int i = 0; i < 4; ++i) {
      const Dataset batch = RandomBatch(schema, 5, &rng);
      ASSERT_TRUE((*durable)->Append(batch).ok());
      ASSERT_TRUE(shadow.AppendRows(batch).ok());
      EXPECT_EQ((*durable)->engine().Mups(), shadow.Mups());
    }
  }
  auto recovered = DurableEngine::Recover(dir_, opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery_stats().recovered);
  EXPECT_EQ((*recovered)->engine().epoch(), shadow.epoch());
  EXPECT_EQ((*recovered)->engine().Mups(), shadow.Mups());

  // Every MUP over a 1-attribute schema is the root or a single value.
  for (const Pattern& p : (*recovered)->engine().Mups()) {
    EXPECT_LE(p.level(), 1);
    EXPECT_EQ(p.num_attributes(), 1);
  }
}

TEST_P(EngineEdgeTest, CardinalityOneAttribute) {
  // The middle attribute has exactly one value: its level-1 node covers
  // the same rows as the root, and its packed field is a single bit.
  const Schema schema = Schema::Uniform({3, 1, 2});
  const EngineOptions opts = Options(/*tau=*/4);
  CoverageEngine shadow(schema, opts);
  Rng rng(202);
  {
    auto durable = DurableEngine::Create(dir_, schema, opts);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    for (int i = 0; i < 5; ++i) {
      const Dataset batch = RandomBatch(schema, 7, &rng);
      ASSERT_TRUE((*durable)->Append(batch).ok());
      ASSERT_TRUE(shadow.AppendRows(batch).ok());
      EXPECT_EQ((*durable)->engine().Mups(), shadow.Mups());
    }
  }
  auto recovered = DurableEngine::Recover(dir_, opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->engine().Mups(), shadow.Mups());

  // Fixing the cardinality-1 attribute never changes a pattern's matches:
  // cov(P with a1=0) == cov(P with a1=X) for every P.
  const CoverageEngine& engine = (*recovered)->engine();
  EXPECT_EQ(engine.Query(Pattern({kWildcard, 0, kWildcard})),
            engine.Query(Pattern::Root(3)));
  for (Value v = 0; v < 3; ++v) {
    EXPECT_EQ(engine.Query(Pattern({v, 0, kWildcard})),
              engine.Query(Pattern({v, kWildcard, kWildcard})));
  }
}

TEST_P(EngineEdgeTest, RetractionToEmptyWindow) {
  const Schema schema = Schema::Uniform({2, 3, 2});
  const EngineOptions opts = Options(/*tau=*/3);
  CoverageEngine shadow(schema, opts);
  Rng rng(303);
  Dataset everything(schema);
  {
    auto durable = DurableEngine::Create(dir_, schema, opts);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    for (int i = 0; i < 3; ++i) {
      const Dataset batch = RandomBatch(schema, 6, &rng, &everything);
      ASSERT_TRUE((*durable)->Append(batch).ok());
      ASSERT_TRUE(shadow.AppendRows(batch).ok());
    }
    // Retract every appended row; the engine must land back on the empty
    // window: zero rows, and the all-wildcard root as the only MUP (its
    // coverage is 0 < tau, and it dominates everything else).
    ASSERT_TRUE((*durable)->Retract(everything).ok());
    ASSERT_TRUE(shadow.RetractRows(everything).ok());
    EXPECT_EQ((*durable)->engine().num_rows(), 0u);
    EXPECT_EQ((*durable)->engine().Mups(), shadow.Mups());
    EXPECT_EQ((*durable)->engine().Mups(),
              std::vector<Pattern>{Pattern::Root(3)});
  }

  // The retracted-to-empty state must survive recovery...
  auto recovered = DurableEngine::Recover(dir_, opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->engine().num_rows(), 0u);
  EXPECT_EQ((*recovered)->engine().epoch(), shadow.epoch());
  EXPECT_EQ((*recovered)->engine().Mups(),
            std::vector<Pattern>{Pattern::Root(3)});

  // ...and the empty engine must keep working: a fresh append behaves
  // exactly like a first append on a brand-new session.
  const Dataset again = RandomBatch(schema, 10, &rng);
  CoverageEngine fresh(schema, opts);
  ASSERT_TRUE((*recovered)->Append(again).ok());
  ASSERT_TRUE(fresh.AppendRows(again).ok());
  EXPECT_EQ((*recovered)->engine().Mups(), fresh.Mups());
  EXPECT_EQ((*recovered)->engine().num_rows(), fresh.num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    AllDominanceModes, EngineEdgeTest,
    ::testing::Values(DominanceMode::kBitmapIndex, DominanceMode::kLinearScan,
                      DominanceMode::kNoPruning),
    [](const ::testing::TestParamInfo<DominanceMode>& info) {
      switch (info.param) {
        case DominanceMode::kBitmapIndex: return std::string("BitmapIndex");
        case DominanceMode::kLinearScan: return std::string("LinearScan");
        case DominanceMode::kNoPruning: return std::string("NoPruning");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace persist
}  // namespace coverage

#include "engine/coverage_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "datagen/adversarial.h"
#include "datagen/airbnb.h"
#include "datagen/compas.h"
#include "mups/mups.h"

namespace coverage {
namespace {

/// The ground truth the engine must reproduce bit-identically: a
/// from-scratch DEEPDIVER run on the accumulated data (sorted output).
std::vector<Pattern> FromScratchMups(const Dataset& data,
                                     const EngineOptions& eopts) {
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions opts;
  opts.tau = eopts.tau;
  opts.max_level = eopts.max_level;
  opts.dominance_mode = eopts.dominance_mode;
  return FindMupsDeepDiver(oracle, opts);
}

std::string ToCsv(const Dataset& data) {
  std::ostringstream os;
  EXPECT_TRUE(data.WriteCsv(os).ok());
  return os.str();
}

TEST(CoverageEngine, EpochZeroIsEmptyWithRootMup) {
  const Schema schema = Schema::Binary(3);
  CoverageEngine engine(schema, {.tau = 5});
  EXPECT_EQ(engine.epoch(), 0u);
  EXPECT_EQ(engine.num_rows(), 0u);
  EXPECT_EQ(engine.Mups(), std::vector<Pattern>{Pattern::Root(3)});
  EXPECT_EQ(engine.Query(Pattern::Root(3)), 0u);
}

TEST(CoverageEngine, AppendRowsValidatesShapeAndRange) {
  const Schema schema = Schema::Binary(2);
  CoverageEngine engine(schema, {.tau = 1});
  const std::vector<Value> narrow = {Value{1}};
  const std::vector<Value> out_of_range = {Value{1}, Value{2}};
  const std::vector<CoverageEngine::Row> bad_width = {narrow};
  const std::vector<CoverageEngine::Row> bad_range = {out_of_range};
  EXPECT_FALSE(engine.AppendRows(std::span(bad_width)).ok());
  EXPECT_FALSE(engine.AppendRows(std::span(bad_range)).ok());
  EXPECT_EQ(engine.epoch(), 0u);  // failed appends publish nothing

  const std::vector<Value> good = {Value{1}, Value{0}};
  const std::vector<CoverageEngine::Row> two_rows = {good, good};
  ASSERT_TRUE(engine.AppendRows(std::span(two_rows)).ok());
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.num_rows(), 2u);
  EXPECT_EQ(engine.Query(Pattern({Value{1}, Value{0}})), 2u);
}

TEST(CoverageEngine, RejectsForeignSchemaAndBadIngestInput) {
  CoverageEngine engine(Schema::Binary(2), {.tau = 1});
  EXPECT_FALSE(engine.AppendRows(Dataset(Schema::Binary(3))).ok());

  std::istringstream bad_header("X,Y\n0,1\n");
  EXPECT_FALSE(engine.IngestCsvChunked(bad_header, 10).ok());
  std::istringstream fine("A1,A2\n0,1\n");
  EXPECT_FALSE(engine.IngestCsvChunked(fine, 0).ok());  // chunk_rows >= 1
  EXPECT_EQ(engine.epoch(), 0u);
}

/// Chunked ingest must land on exactly the from-scratch state for any chunk
/// size, on all three workload families of §V.
TEST(CoverageEngine, ChunkedIngestEqualsWholeFileAcrossDatasets) {
  struct Case {
    const char* name;
    Dataset data;
    std::uint64_t tau;
  };
  std::vector<Case> cases;
  cases.push_back({"compas", datagen::MakeCompas(2000).data, 10});
  cases.push_back({"airbnb", datagen::MakeAirbnb(3000, 8), 12});
  cases.push_back({"diagonal", datagen::MakeDiagonal(8), 5});

  for (const Case& c : cases) {
    const std::string csv = ToCsv(c.data);
    EngineOptions opts;
    opts.tau = c.tau;
    const std::vector<Pattern> expected = FromScratchMups(c.data, opts);

    for (const std::size_t chunk_rows : {3u, 64u, 100000u}) {
      CoverageEngine engine(c.data.schema(), opts);
      std::istringstream in(csv);
      const auto stats = engine.IngestCsvChunked(in, chunk_rows);
      ASSERT_TRUE(stats.ok()) << c.name << ": " << stats.status().ToString();
      EXPECT_EQ(stats->rows, c.data.num_rows());
      EXPECT_LE(stats->peak_chunk_rows, chunk_rows);
      EXPECT_EQ(stats->chunks,
                (c.data.num_rows() + chunk_rows - 1) / chunk_rows);
      EXPECT_EQ(engine.num_rows(), c.data.num_rows());
      EXPECT_EQ(engine.Mups(), expected)
          << c.name << " chunk_rows=" << chunk_rows;
    }
  }
}

/// Point queries on the engine snapshot must agree with a from-scratch
/// oracle for arbitrary patterns.
TEST(CoverageEngine, QueriesMatchFromScratchOracle) {
  const Dataset data = datagen::MakeAirbnb(1500, 6);
  CoverageEngine engine(data.schema(), {.tau = 8});
  ASSERT_TRUE(engine.AppendRows(data).ok());

  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  QueryContext engine_ctx;
  QueryContext oracle_ctx;
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Value> cells(6);
    for (int i = 0; i < 6; ++i) {
      cells[static_cast<std::size_t>(i)] =
          static_cast<Value>(rng.NextInt(-1, 1));
    }
    const Pattern p(cells);
    ASSERT_EQ(engine.Query(p, engine_ctx), oracle.Coverage(p, oracle_ctx))
        << p.ToString();
    ASSERT_EQ(engine.QueryAtLeast(p, 8, engine_ctx),
              oracle.CoverageAtLeast(p, 8, oracle_ctx))
        << p.ToString();
  }
}

/// A held snapshot keeps answering for its own epoch after later appends.
TEST(CoverageEngine, SnapshotsAreImmutableAcrossEpochs) {
  const datagen::LabeledData compas = datagen::MakeCompas(600);
  CoverageEngine engine(compas.data.schema(), {.tau = 10});
  ASSERT_TRUE(engine.AppendRows(compas.data.Head(300)).ok());
  const auto old_snapshot = engine.snapshot();
  const std::vector<Pattern> old_mups = old_snapshot->mups();
  const std::uint64_t old_rows = old_snapshot->num_rows();

  Dataset tail(compas.data.schema());
  for (std::size_t r = 300; r < compas.data.num_rows(); ++r) {
    tail.AppendRow(compas.data.row(r));
  }
  ASSERT_TRUE(engine.AppendRows(tail).ok());

  EXPECT_EQ(old_snapshot->num_rows(), old_rows);
  EXPECT_EQ(old_snapshot->mups(), old_mups);
  EXPECT_EQ(old_snapshot->epoch(), 1u);
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_EQ(engine.num_rows(), compas.data.num_rows());
  EXPECT_EQ(engine.Mups(), FromScratchMups(compas.data, engine.options()));
}

/// The core invariant: after every randomized append batch, the maintained
/// MUP set is bit-identical to a from-scratch recompute — across all
/// dominance modes, serial and 8-thread rechecks, and a level cap.
TEST(CoverageEngineProperty, IncrementalEqualsFromScratchAfterRandomBatches) {
  using DominanceMode = MupSearchOptions::DominanceMode;
  const Schema schema = Schema::Uniform({3, 2, 4, 2});
  for (const DominanceMode mode :
       {DominanceMode::kBitmapIndex, DominanceMode::kLinearScan,
        DominanceMode::kNoPruning}) {
    for (const int threads : {1, 8}) {
      for (const int max_level : {-1, 2}) {
        EngineOptions opts;
        opts.tau = 5;
        opts.max_level = max_level;
        opts.num_threads = threads;
        opts.dominance_mode = mode;
        CoverageEngine engine(schema, opts);
        Dataset accumulated(schema);
        Rng rng(1000 + 100 * static_cast<int>(mode) + 10 * threads +
                (max_level + 1));
        std::vector<Value> row(4);
        for (int batch = 0; batch < 12; ++batch) {
          const std::size_t k = rng.NextUint64(41);  // 0..40, empties too
          Dataset chunk(schema);
          for (std::size_t r = 0; r < k; ++r) {
            for (int i = 0; i < 4; ++i) {
              // Skew toward low values so counts actually cross τ.
              const auto card =
                  static_cast<std::uint64_t>(schema.cardinality(i));
              row[static_cast<std::size_t>(i)] = static_cast<Value>(
                  std::min(rng.NextUint64(card), rng.NextUint64(card)));
            }
            chunk.AppendRow(row);
            accumulated.AppendRow(row);
          }
          ASSERT_TRUE(engine.AppendRows(chunk).ok());
          ASSERT_EQ(engine.Mups(), FromScratchMups(accumulated, opts))
              << "mode=" << static_cast<int>(mode) << " threads=" << threads
              << " max_level=" << max_level << " batch=" << batch;
        }
      }
    }
  }
}

/// MUP-heavy workload (Theorem-1 diagonal, ~936 MUPs): the 8-thread recheck
/// sweep takes the pool path and must stay exact while appends shrink the
/// MUP set.
TEST(CoverageEngineProperty, ParallelRecheckOnMupHeavyDiagonal) {
  const Dataset diagonal = datagen::MakeDiagonal(12);
  EngineOptions opts;
  opts.tau = 7;
  opts.num_threads = 8;
  CoverageEngine engine(diagonal.schema(), opts);
  ASSERT_TRUE(engine.AppendRows(diagonal).ok());

  Dataset accumulated(diagonal.schema());
  for (std::size_t r = 0; r < diagonal.num_rows(); ++r) {
    accumulated.AppendRow(diagonal.row(r));
  }
  ASSERT_EQ(engine.Mups(), FromScratchMups(accumulated, opts));
  ASSERT_GE(engine.Mups().size(), 128u);  // exercises the pool threshold

  // Re-appending diagonal rows pushes singleton counts over τ batch by
  // batch; every epoch must still match a from-scratch run.
  Rng rng(7);
  for (int batch = 0; batch < 6; ++batch) {
    Dataset chunk(diagonal.schema());
    for (int r = 0; r < 8; ++r) {
      const std::size_t pick = rng.NextUint64(diagonal.num_rows());
      chunk.AppendRow(diagonal.row(pick));
      accumulated.AppendRow(diagonal.row(pick));
    }
    EngineUpdateStats stats;
    ASSERT_TRUE(engine.AppendRows(chunk, &stats).ok());
    ASSERT_EQ(engine.Mups(), FromScratchMups(accumulated, opts))
        << "batch " << batch;
    EXPECT_EQ(stats.mups_rechecked,
              stats.mups_newly_covered +
                  (engine.Mups().size() - stats.mups_added));
  }
}

/// Validates the engine's set against the paper's MUP invariants directly
/// (every MUP uncovered, parents covered, antichain).
TEST(CoverageEngine, MaintainedSetSatisfiesMupInvariants) {
  const Dataset data = datagen::MakeAirbnb(2500, 7);
  CoverageEngine engine(data.schema(), {.tau = 15});
  const std::string csv = ToCsv(data);
  std::istringstream in(csv);
  ASSERT_TRUE(engine.IngestCsvChunked(in, 500).ok());

  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  EXPECT_TRUE(ValidateMupSet(engine.Mups(), oracle, 15).ok());
}

/// Readers on snapshots must never observe a torn epoch while a writer
/// advances; run under TSan in CI.
TEST(CoverageEngine, ConcurrentReadersDuringAppends) {
  const datagen::LabeledData compas = datagen::MakeCompas(2000);
  CoverageEngine engine(compas.data.schema(), {.tau = 10});
  ASSERT_TRUE(engine.AppendRows(compas.data.Head(100)).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&engine, &stop] {
      QueryContext ctx;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = engine.snapshot();
        // Internal consistency of one epoch: the root's coverage equals the
        // row count, and every published MUP is uncovered on that epoch.
        const int d = snap->data().schema().num_attributes();
        ASSERT_EQ(snap->oracle().Coverage(Pattern::Root(d), ctx),
                  snap->num_rows());
        for (const Pattern& mup : snap->mups()) {
          ASSERT_FALSE(snap->oracle().CoverageAtLeast(mup, 10, ctx));
        }
      }
    });
  }

  std::size_t next = 100;
  while (next < compas.data.num_rows()) {
    const std::size_t end = std::min(next + 100, compas.data.num_rows());
    Dataset chunk(compas.data.schema());
    for (std::size_t r = next; r < end; ++r) {
      chunk.AppendRow(compas.data.row(r));
    }
    ASSERT_TRUE(engine.AppendRows(chunk).ok());
    next = end;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(engine.Mups(), FromScratchMups(compas.data, engine.options()));
}

}  // namespace
}  // namespace coverage

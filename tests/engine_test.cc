#include "engine/coverage_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "datagen/adversarial.h"
#include "datagen/airbnb.h"
#include "datagen/compas.h"
#include "mups/mups.h"

namespace coverage {
namespace {

/// The ground truth the engine must reproduce bit-identically: a
/// from-scratch DEEPDIVER run on the accumulated data (sorted output).
std::vector<Pattern> FromScratchMups(const Dataset& data,
                                     const EngineOptions& eopts) {
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions opts;
  opts.tau = eopts.tau;
  opts.max_level = eopts.max_level;
  opts.dominance_mode = eopts.dominance_mode;
  return FindMupsDeepDiver(oracle, opts);
}

std::string ToCsv(const Dataset& data) {
  std::ostringstream os;
  EXPECT_TRUE(data.WriteCsv(os).ok());
  return os.str();
}

TEST(CoverageEngine, EpochZeroIsEmptyWithRootMup) {
  const Schema schema = Schema::Binary(3);
  CoverageEngine engine(schema, {.tau = 5});
  EXPECT_EQ(engine.epoch(), 0u);
  EXPECT_EQ(engine.num_rows(), 0u);
  EXPECT_EQ(engine.Mups(), std::vector<Pattern>{Pattern::Root(3)});
  EXPECT_EQ(engine.Query(Pattern::Root(3)), 0u);
}

TEST(CoverageEngine, AppendRowsValidatesShapeAndRange) {
  const Schema schema = Schema::Binary(2);
  CoverageEngine engine(schema, {.tau = 1});
  const std::vector<Value> narrow = {Value{1}};
  const std::vector<Value> out_of_range = {Value{1}, Value{2}};
  const std::vector<CoverageEngine::Row> bad_width = {narrow};
  const std::vector<CoverageEngine::Row> bad_range = {out_of_range};
  EXPECT_FALSE(engine.AppendRows(std::span(bad_width)).ok());
  EXPECT_FALSE(engine.AppendRows(std::span(bad_range)).ok());
  EXPECT_EQ(engine.epoch(), 0u);  // failed appends publish nothing

  const std::vector<Value> good = {Value{1}, Value{0}};
  const std::vector<CoverageEngine::Row> two_rows = {good, good};
  ASSERT_TRUE(engine.AppendRows(std::span(two_rows)).ok());
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.num_rows(), 2u);
  EXPECT_EQ(engine.Query(Pattern({Value{1}, Value{0}})), 2u);
}

TEST(CoverageEngine, RejectsForeignSchemaAndBadIngestInput) {
  CoverageEngine engine(Schema::Binary(2), {.tau = 1});
  EXPECT_FALSE(engine.AppendRows(Dataset(Schema::Binary(3))).ok());

  std::istringstream bad_header("X,Y\n0,1\n");
  EXPECT_FALSE(engine.IngestCsvChunked(bad_header, 10).ok());
  std::istringstream fine("A1,A2\n0,1\n");
  EXPECT_FALSE(engine.IngestCsvChunked(fine, 0).ok());  // chunk_rows >= 1
  EXPECT_EQ(engine.epoch(), 0u);
}

/// Chunked ingest must land on exactly the from-scratch state for any chunk
/// size, on all three workload families of §V.
TEST(CoverageEngine, ChunkedIngestEqualsWholeFileAcrossDatasets) {
  struct Case {
    const char* name;
    Dataset data;
    std::uint64_t tau;
  };
  std::vector<Case> cases;
  cases.push_back({"compas", datagen::MakeCompas(2000).data, 10});
  cases.push_back({"airbnb", datagen::MakeAirbnb(3000, 8), 12});
  cases.push_back({"diagonal", datagen::MakeDiagonal(8), 5});

  for (const Case& c : cases) {
    const std::string csv = ToCsv(c.data);
    EngineOptions opts;
    opts.tau = c.tau;
    const std::vector<Pattern> expected = FromScratchMups(c.data, opts);

    for (const std::size_t chunk_rows : {3u, 64u, 100000u}) {
      CoverageEngine engine(c.data.schema(), opts);
      std::istringstream in(csv);
      const auto stats = engine.IngestCsvChunked(in, chunk_rows);
      ASSERT_TRUE(stats.ok()) << c.name << ": " << stats.status().ToString();
      EXPECT_EQ(stats->rows, c.data.num_rows());
      EXPECT_LE(stats->peak_chunk_rows, chunk_rows);
      EXPECT_EQ(stats->chunks,
                (c.data.num_rows() + chunk_rows - 1) / chunk_rows);
      EXPECT_EQ(engine.num_rows(), c.data.num_rows());
      EXPECT_EQ(engine.Mups(), expected)
          << c.name << " chunk_rows=" << chunk_rows;
    }
  }
}

/// Point queries on the engine snapshot must agree with a from-scratch
/// oracle for arbitrary patterns.
TEST(CoverageEngine, QueriesMatchFromScratchOracle) {
  const Dataset data = datagen::MakeAirbnb(1500, 6);
  CoverageEngine engine(data.schema(), {.tau = 8});
  ASSERT_TRUE(engine.AppendRows(data).ok());

  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  QueryContext engine_ctx;
  QueryContext oracle_ctx;
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Value> cells(6);
    for (int i = 0; i < 6; ++i) {
      cells[static_cast<std::size_t>(i)] =
          static_cast<Value>(rng.NextInt(-1, 1));
    }
    const Pattern p(cells);
    ASSERT_EQ(engine.Query(p, engine_ctx), oracle.Coverage(p, oracle_ctx))
        << p.ToString();
    ASSERT_EQ(engine.QueryAtLeast(p, 8, engine_ctx),
              oracle.CoverageAtLeast(p, 8, oracle_ctx))
        << p.ToString();
  }
}

/// A held snapshot keeps answering for its own epoch after later appends.
TEST(CoverageEngine, SnapshotsAreImmutableAcrossEpochs) {
  const datagen::LabeledData compas = datagen::MakeCompas(600);
  CoverageEngine engine(compas.data.schema(), {.tau = 10});
  ASSERT_TRUE(engine.AppendRows(compas.data.Head(300)).ok());
  const auto old_snapshot = engine.snapshot();
  const std::vector<Pattern> old_mups = old_snapshot->mups();
  const std::uint64_t old_rows = old_snapshot->num_rows();

  Dataset tail(compas.data.schema());
  for (std::size_t r = 300; r < compas.data.num_rows(); ++r) {
    tail.AppendRow(compas.data.row(r));
  }
  ASSERT_TRUE(engine.AppendRows(tail).ok());

  EXPECT_EQ(old_snapshot->num_rows(), old_rows);
  EXPECT_EQ(old_snapshot->mups(), old_mups);
  EXPECT_EQ(old_snapshot->epoch(), 1u);
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_EQ(engine.num_rows(), compas.data.num_rows());
  EXPECT_EQ(engine.Mups(), FromScratchMups(compas.data, engine.options()));
}

/// The core invariant: after every randomized append batch, the maintained
/// MUP set is bit-identical to a from-scratch recompute — across all
/// dominance modes, serial and 8-thread rechecks, and a level cap.
TEST(CoverageEngineProperty, IncrementalEqualsFromScratchAfterRandomBatches) {
  using DominanceMode = MupSearchOptions::DominanceMode;
  const Schema schema = Schema::Uniform({3, 2, 4, 2});
  for (const DominanceMode mode :
       {DominanceMode::kBitmapIndex, DominanceMode::kLinearScan,
        DominanceMode::kNoPruning}) {
    for (const int threads : {1, 8}) {
      for (const int max_level : {-1, 2}) {
        EngineOptions opts;
        opts.tau = 5;
        opts.max_level = max_level;
        opts.num_threads = threads;
        opts.dominance_mode = mode;
        CoverageEngine engine(schema, opts);
        Dataset accumulated(schema);
        Rng rng(1000 + 100 * static_cast<int>(mode) + 10 * threads +
                (max_level + 1));
        std::vector<Value> row(4);
        for (int batch = 0; batch < 12; ++batch) {
          const std::size_t k = rng.NextUint64(41);  // 0..40, empties too
          Dataset chunk(schema);
          for (std::size_t r = 0; r < k; ++r) {
            for (int i = 0; i < 4; ++i) {
              // Skew toward low values so counts actually cross τ.
              const auto card =
                  static_cast<std::uint64_t>(schema.cardinality(i));
              row[static_cast<std::size_t>(i)] = static_cast<Value>(
                  std::min(rng.NextUint64(card), rng.NextUint64(card)));
            }
            chunk.AppendRow(row);
            accumulated.AppendRow(row);
          }
          ASSERT_TRUE(engine.AppendRows(chunk).ok());
          ASSERT_EQ(engine.Mups(), FromScratchMups(accumulated, opts))
              << "mode=" << static_cast<int>(mode) << " threads=" << threads
              << " max_level=" << max_level << " batch=" << batch;
        }
      }
    }
  }
}

/// MUP-heavy workload (Theorem-1 diagonal, ~936 MUPs): the 8-thread recheck
/// sweep takes the pool path and must stay exact while appends shrink the
/// MUP set.
TEST(CoverageEngineProperty, ParallelRecheckOnMupHeavyDiagonal) {
  const Dataset diagonal = datagen::MakeDiagonal(12);
  EngineOptions opts;
  opts.tau = 7;
  opts.num_threads = 8;
  CoverageEngine engine(diagonal.schema(), opts);
  ASSERT_TRUE(engine.AppendRows(diagonal).ok());

  Dataset accumulated(diagonal.schema());
  for (std::size_t r = 0; r < diagonal.num_rows(); ++r) {
    accumulated.AppendRow(diagonal.row(r));
  }
  ASSERT_EQ(engine.Mups(), FromScratchMups(accumulated, opts));
  ASSERT_GE(engine.Mups().size(), 128u);  // exercises the pool threshold

  // Re-appending diagonal rows pushes singleton counts over τ batch by
  // batch; every epoch must still match a from-scratch run.
  Rng rng(7);
  for (int batch = 0; batch < 6; ++batch) {
    Dataset chunk(diagonal.schema());
    for (int r = 0; r < 8; ++r) {
      const std::size_t pick = rng.NextUint64(diagonal.num_rows());
      chunk.AppendRow(diagonal.row(pick));
      accumulated.AppendRow(diagonal.row(pick));
    }
    EngineUpdateStats stats;
    ASSERT_TRUE(engine.AppendRows(chunk, &stats).ok());
    ASSERT_EQ(engine.Mups(), FromScratchMups(accumulated, opts))
        << "batch " << batch;
    EXPECT_EQ(stats.mups_rechecked,
              stats.mups_newly_covered +
                  (engine.Mups().size() - stats.mups_added));
  }
}

/// Validates the engine's set against the paper's MUP invariants directly
/// (every MUP uncovered, parents covered, antichain).
TEST(CoverageEngine, MaintainedSetSatisfiesMupInvariants) {
  const Dataset data = datagen::MakeAirbnb(2500, 7);
  CoverageEngine engine(data.schema(), {.tau = 15});
  const std::string csv = ToCsv(data);
  std::istringstream in(csv);
  ASSERT_TRUE(engine.IngestCsvChunked(in, 500).ok());

  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  EXPECT_TRUE(ValidateMupSet(engine.Mups(), oracle, 15).ok());
}

/// Readers on snapshots must never observe a torn epoch while a writer
/// advances; run under TSan in CI.
TEST(CoverageEngine, ConcurrentReadersDuringAppends) {
  const datagen::LabeledData compas = datagen::MakeCompas(2000);
  CoverageEngine engine(compas.data.schema(), {.tau = 10});
  ASSERT_TRUE(engine.AppendRows(compas.data.Head(100)).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&engine, &stop] {
      QueryContext ctx;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = engine.snapshot();
        // Internal consistency of one epoch: the root's coverage equals the
        // row count, and every published MUP is uncovered on that epoch.
        const int d = snap->data().schema().num_attributes();
        ASSERT_EQ(snap->oracle().Coverage(Pattern::Root(d), ctx),
                  snap->num_rows());
        for (const Pattern& mup : snap->mups()) {
          ASSERT_FALSE(snap->oracle().CoverageAtLeast(mup, 10, ctx));
        }
      }
    });
  }

  std::size_t next = 100;
  while (next < compas.data.num_rows()) {
    const std::size_t end = std::min(next + 100, compas.data.num_rows());
    Dataset chunk(compas.data.schema());
    for (std::size_t r = next; r < end; ++r) {
      chunk.AppendRow(compas.data.row(r));
    }
    ASSERT_TRUE(engine.AppendRows(chunk).ok());
    next = end;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(engine.Mups(), FromScratchMups(compas.data, engine.options()));
}

// ---------------------------------------------------------------------------
// Retraction (RetractRows) and sliding-window mode
// ---------------------------------------------------------------------------

Dataset FromRows(const Schema& schema,
                 const std::vector<std::vector<Value>>& rows) {
  Dataset d(schema);
  for (const auto& r : rows) d.AppendRow(r);
  return d;
}

TEST(CoverageEngineRetract, ValidatesAndRejectsAbsentRows) {
  const Schema schema = Schema::Binary(2);
  CoverageEngine engine(schema, {.tau = 1});
  ASSERT_TRUE(engine.AppendRows(FromRows(schema, {{0, 0}, {0, 1}})).ok());
  ASSERT_EQ(engine.epoch(), 1u);

  // A combination never appended cannot be retracted.
  EXPECT_FALSE(engine.RetractRows(FromRows(schema, {{1, 1}})).ok());
  // Nor more occurrences than are present.
  EXPECT_FALSE(
      engine.RetractRows(FromRows(schema, {{0, 0}, {0, 0}})).ok());
  // Failed retractions publish nothing.
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.num_rows(), 2u);

  EngineUpdateStats stats;
  ASSERT_TRUE(engine.RetractRows(FromRows(schema, {{0, 1}}), &stats).ok());
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_EQ(engine.num_rows(), 1u);
  EXPECT_EQ(stats.rows_retracted, 1u);
  EXPECT_EQ(stats.combinations_tombstoned, 1u);
  EXPECT_EQ(engine.Query(Pattern({Value{0}, Value{1}})), 0u);
  EXPECT_EQ(engine.Query(Pattern({Value{0}, Value{0}})), 1u);
  // Schema mismatches are rejected like on the append side.
  EXPECT_FALSE(engine.RetractRows(Dataset(Schema::Binary(3))).ok());
}

TEST(CoverageEngineRetract, DuplicateRowRetractionWithinOneBatch) {
  const Schema schema = Schema::Binary(2);
  CoverageEngine engine(schema, {.tau = 2});
  const std::vector<Value> row = {Value{1}, Value{0}};
  ASSERT_TRUE(
      engine.AppendRows(FromRows(schema, {row, row, row, row, row})).ok());

  // Three duplicates of the same row retracted in one batch.
  ASSERT_TRUE(engine.RetractRows(FromRows(schema, {row, row, row})).ok());
  EXPECT_EQ(engine.Query(Pattern(row)), 2u);
  // Over-retraction within one batch fails atomically: nothing changes.
  EXPECT_FALSE(engine.RetractRows(FromRows(schema, {row, row, row})).ok());
  EXPECT_EQ(engine.Query(Pattern(row)), 2u);
  ASSERT_TRUE(engine.RetractRows(FromRows(schema, {row, row})).ok());
  EXPECT_EQ(engine.num_rows(), 0u);
  EXPECT_EQ(engine.Mups(), std::vector<Pattern>{Pattern::Root(2)});
}

TEST(CoverageEngineRetract, RetractionUncoversRoot) {
  const Schema schema = Schema::Uniform({2, 3});
  EngineOptions opts;
  opts.tau = 5;
  CoverageEngine engine(schema, opts);
  Dataset data = FromRows(
      schema, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}});
  ASSERT_TRUE(engine.AppendRows(data).ok());
  // cov(root) = 6 >= 5: the root is covered, so it is not a MUP.
  const std::vector<Pattern> before = engine.Mups();
  ASSERT_FALSE(std::count(before.begin(), before.end(), Pattern::Root(2)));

  ASSERT_TRUE(engine.RetractRows(FromRows(schema, {{0, 0}, {1, 2}})).ok());
  // cov(root) = 4 < 5: the whole graph is uncovered and the root is the
  // unique maximal uncovered pattern.
  EXPECT_EQ(engine.Mups(), std::vector<Pattern>{Pattern::Root(2)});
  Dataset surviving =
      FromRows(schema, {{0, 1}, {0, 2}, {1, 0}, {1, 1}});
  EXPECT_EQ(engine.Mups(), FromScratchMups(surviving, opts));
}

/// The core retraction invariant: after every randomized append/retract
/// step, the maintained MUP set is bit-identical to a from-scratch DEEPDIVER
/// on the surviving rows — across all dominance modes, serial and 8-thread
/// rechecks, and a level cap.
TEST(CoverageEngineRetractProperty, RandomAppendRetractEqualsFromScratch) {
  using DominanceMode = MupSearchOptions::DominanceMode;
  const Schema schema = Schema::Uniform({3, 2, 4, 2});
  for (const DominanceMode mode :
       {DominanceMode::kBitmapIndex, DominanceMode::kLinearScan,
        DominanceMode::kNoPruning}) {
    for (const int threads : {1, 8}) {
      for (const int max_level : {-1, 2}) {
        EngineOptions opts;
        opts.tau = 5;
        opts.max_level = max_level;
        opts.num_threads = threads;
        opts.dominance_mode = mode;
        CoverageEngine engine(schema, opts);
        std::vector<std::vector<Value>> live;  // surviving row multiset
        Rng rng(5000 + 100 * static_cast<int>(mode) + 10 * threads +
                (max_level + 1));
        for (int step = 0; step < 16; ++step) {
          const bool retract = !live.empty() && rng.NextUint64(3) == 0;
          if (retract) {
            // Retract a random sub-multiset (up to half the live rows).
            const std::size_t k = 1 + rng.NextUint64(live.size() / 2 + 1);
            Dataset batch(schema);
            for (std::size_t i = 0; i < k && !live.empty(); ++i) {
              const std::size_t pick = rng.NextUint64(live.size());
              batch.AppendRow(live[pick]);
              live[pick] = live.back();
              live.pop_back();
            }
            EngineUpdateStats stats;
            ASSERT_TRUE(engine.RetractRows(batch, &stats).ok());
            ASSERT_EQ(stats.rows_retracted, batch.num_rows());
          } else {
            const std::size_t k = rng.NextUint64(31);  // 0..30, empties too
            Dataset batch(schema);
            std::vector<Value> row(4);
            for (std::size_t r = 0; r < k; ++r) {
              for (int i = 0; i < 4; ++i) {
                // Skew toward low values so counts actually cross τ.
                const auto card =
                    static_cast<std::uint64_t>(schema.cardinality(i));
                row[static_cast<std::size_t>(i)] = static_cast<Value>(
                    std::min(rng.NextUint64(card), rng.NextUint64(card)));
              }
              batch.AppendRow(row);
              live.push_back(row);
            }
            ASSERT_TRUE(engine.AppendRows(batch).ok());
          }
          ASSERT_EQ(engine.num_rows(), live.size());
          ASSERT_EQ(engine.Mups(),
                    FromScratchMups(FromRows(schema, live), opts))
              << "mode=" << static_cast<int>(mode) << " threads=" << threads
              << " max_level=" << max_level << " step=" << step
              << (retract ? " (retract)" : " (append)");
        }
      }
    }
  }
}

/// Emulates the engine's window semantics (evict whole oldest batches past
/// the caps) so tests can state the expected surviving multiset.
struct WindowModel {
  std::size_t max_rows = 0;
  std::size_t max_epochs = 0;
  std::deque<std::vector<std::vector<Value>>> batches;
  std::size_t rows = 0;

  void Append(const std::vector<std::vector<Value>>& batch) {
    batches.push_back(batch);
    rows += batch.size();
    while (!batches.empty() &&
           ((max_rows > 0 && rows > max_rows) ||
            (max_epochs > 0 && batches.size() > max_epochs))) {
      rows -= batches.front().size();
      batches.pop_front();
    }
  }

  std::vector<std::vector<Value>> Live() const {
    std::vector<std::vector<Value>> all;
    for (const auto& b : batches) all.insert(all.end(), b.begin(), b.end());
    return all;
  }
};

TEST(CoverageEngineWindow, SlidingWindowMatchesFromScratchOnRetainedRows) {
  const datagen::LabeledData compas = datagen::MakeCompas(900);
  const Schema& schema = compas.data.schema();
  EngineOptions opts;
  opts.tau = 8;
  opts.window_max_rows = 300;
  CoverageEngine engine(schema, opts);
  WindowModel model{.max_rows = 300};

  std::size_t next = 0;
  Rng rng(42);
  while (next < compas.data.num_rows()) {
    const std::size_t take = std::min<std::size_t>(
        40 + rng.NextUint64(81), compas.data.num_rows() - next);
    std::vector<std::vector<Value>> batch;
    Dataset chunk(schema);
    for (std::size_t r = next; r < next + take; ++r) {
      chunk.AppendRow(compas.data.row(r));
      batch.emplace_back(compas.data.row(r).begin(),
                         compas.data.row(r).end());
    }
    next += take;
    model.Append(batch);
    EngineUpdateStats stats;
    ASSERT_TRUE(engine.AppendRows(chunk, &stats).ok());
    ASSERT_EQ(engine.num_rows(), model.rows);
    ASSERT_LE(engine.num_rows(), 300u);
    ASSERT_EQ(engine.Mups(),
              FromScratchMups(FromRows(schema, model.Live()), opts))
        << "after " << next << " streamed rows";
  }
  // The stream outgrew the window, so evictions actually happened.
  EXPECT_LT(engine.num_rows(), compas.data.num_rows());
}

TEST(CoverageEngineWindow, BatchLargerThanWindowIsAppendedAndEvicted) {
  const Schema schema = Schema::Uniform({3, 3});
  EngineOptions opts;
  opts.tau = 2;
  opts.window_max_rows = 10;
  CoverageEngine engine(schema, opts);

  // Fill the window, then append one batch bigger than the whole window:
  // it is retained and immediately evicted in the same epoch, together with
  // everything older — the window shrinks to empty.
  ASSERT_TRUE(engine.AppendRows(FromRows(schema, {{0, 0}, {1, 1}})).ok());
  Dataset big(schema);
  Rng rng(3);
  std::vector<Value> row(2);
  for (int r = 0; r < 25; ++r) {
    row[0] = static_cast<Value>(rng.NextUint64(3));
    row[1] = static_cast<Value>(rng.NextUint64(3));
    big.AppendRow(row);
  }
  EngineUpdateStats stats;
  ASSERT_TRUE(engine.AppendRows(big, &stats).ok());
  EXPECT_EQ(stats.rows_appended, 25u);
  EXPECT_EQ(stats.rows_retracted, 27u);  // the old window and the batch
  EXPECT_EQ(engine.num_rows(), 0u);
  EXPECT_EQ(engine.Mups(), std::vector<Pattern>{Pattern::Root(2)});

  // The engine recovers: appending into the tombstoned state revives
  // combinations in place and matches a from-scratch run.
  Dataset small = FromRows(schema, {{0, 0}, {0, 0}, {2, 2}});
  ASSERT_TRUE(engine.AppendRows(small).ok());
  EXPECT_EQ(engine.num_rows(), 3u);
  EXPECT_EQ(engine.Mups(), FromScratchMups(small, opts));
}

TEST(CoverageEngineWindow, MaxEpochsKeepsMostRecentBatches) {
  const Schema schema = Schema::Uniform({4, 2});
  EngineOptions opts;
  opts.tau = 2;
  opts.window_max_epochs = 2;
  CoverageEngine engine(schema, opts);
  WindowModel model{.max_epochs = 2};

  Rng rng(11);
  for (int batch_no = 0; batch_no < 6; ++batch_no) {
    std::vector<std::vector<Value>> batch;
    const std::size_t k = 3 + rng.NextUint64(5);
    for (std::size_t r = 0; r < k; ++r) {
      batch.push_back({static_cast<Value>(rng.NextUint64(4)),
                       static_cast<Value>(rng.NextUint64(2))});
    }
    model.Append(batch);
    ASSERT_TRUE(engine.AppendRows(FromRows(schema, batch)).ok());
    ASSERT_EQ(engine.num_rows(), model.rows);
    ASSERT_EQ(engine.Mups(),
              FromScratchMups(FromRows(schema, model.Live()), opts))
        << "batch " << batch_no;
  }

  // An empty append must not occupy an epoch slot: with the window already
  // full, it would otherwise evict a real batch without any data arriving.
  const std::vector<Pattern> before = engine.Mups();
  const std::uint64_t rows_before = engine.num_rows();
  ASSERT_TRUE(engine.AppendRows(Dataset(schema)).ok());
  EXPECT_EQ(engine.num_rows(), rows_before);
  EXPECT_EQ(engine.Mups(), before);
}

TEST(CoverageEngineWindow, ExplicitRetractionScrubsRetainedBatches) {
  const Schema schema = Schema::Binary(2);
  EngineOptions opts;
  opts.tau = 1;
  opts.window_max_rows = 4;
  CoverageEngine engine(schema, opts);

  // Window: [ {00, 00, 01} ].
  ASSERT_TRUE(
      engine.AppendRows(FromRows(schema, {{0, 0}, {0, 0}, {0, 1}})).ok());
  // GDPR-style erasure of one 00 occurrence scrubs it from the retained
  // batch too, so the window now holds 2 rows, not 3.
  ASSERT_TRUE(engine.RetractRows(FromRows(schema, {{0, 0}})).ok());
  EXPECT_EQ(engine.num_rows(), 2u);

  // Appending 2 more rows lands exactly on the cap: nothing is evicted.
  // Without the scrub the bookkeeping would see 5 rows and wrongly evict
  // the first batch.
  ASSERT_TRUE(engine.AppendRows(FromRows(schema, {{1, 0}, {1, 1}})).ok());
  EXPECT_EQ(engine.num_rows(), 4u);
  Dataset expected =
      FromRows(schema, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  EXPECT_EQ(engine.Mups(), FromScratchMups(expected, opts));

  // One more row pushes past the cap and evicts the scrubbed first batch
  // ({00, 01} — the retracted occurrence must not be double-retracted).
  ASSERT_TRUE(engine.AppendRows(FromRows(schema, {{1, 1}})).ok());
  EXPECT_EQ(engine.num_rows(), 3u);
  Dataset retained = FromRows(schema, {{1, 0}, {1, 1}, {1, 1}});
  EXPECT_EQ(engine.Mups(), FromScratchMups(retained, opts));
}

TEST(CoverageEngineWindow, ChunkedIngestRespectsWindow) {
  const Dataset data = datagen::MakeAirbnb(1200, 6);
  const std::string csv = ToCsv(data);
  EngineOptions opts;
  opts.tau = 6;
  opts.window_max_rows = 500;
  CoverageEngine engine(data.schema(), opts);
  std::istringstream in(csv);
  const auto stats = engine.IngestCsvChunked(in, 200);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows, 1200u);

  // 200-row chunks into a 500-row cap retain the last 2 chunks (400 rows):
  // appending chunk 7 would make 600, evicting down to 400... the steady
  // state after each append is 400 + the new 200 = 600 > 500 → evict → 400.
  EXPECT_EQ(engine.num_rows(), 400u);
  Dataset tail(data.schema());
  for (std::size_t r = 800; r < 1200; ++r) tail.AppendRow(data.row(r));
  EXPECT_EQ(engine.Mups(), FromScratchMups(tail, opts));
}

/// Readers on snapshots must never observe a torn epoch while a writer
/// advances through windowed appends and explicit retractions; run under
/// TSan in CI.
TEST(CoverageEngineWindow, ConcurrentReadersDuringWindowedAppends) {
  const datagen::LabeledData compas = datagen::MakeCompas(1200);
  const Schema& schema = compas.data.schema();
  EngineOptions opts;
  opts.tau = 10;
  opts.window_max_rows = 300;
  CoverageEngine engine(schema, opts);
  ASSERT_TRUE(engine.AppendRows(compas.data.Head(100)).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&engine, &stop] {
      QueryContext ctx;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = engine.snapshot();
        // Internal consistency of one epoch: the root's coverage equals the
        // row count, and every published MUP is uncovered on that epoch.
        const int d = snap->data().schema().num_attributes();
        ASSERT_EQ(snap->oracle().Coverage(Pattern::Root(d), ctx),
                  snap->num_rows());
        for (const Pattern& mup : snap->mups()) {
          ASSERT_FALSE(snap->oracle().CoverageAtLeast(mup, 10, ctx));
        }
      }
    });
  }

  std::size_t next = 100;
  int step = 0;
  while (next < compas.data.num_rows()) {
    const std::size_t end = std::min(next + 100, compas.data.num_rows());
    Dataset chunk(schema);
    for (std::size_t r = next; r < end; ++r) {
      chunk.AppendRow(compas.data.row(r));
    }
    ASSERT_TRUE(engine.AppendRows(chunk).ok());
    if (++step % 3 == 0 && engine.num_rows() > 20) {
      // Interleave explicit erasure of a few currently-live rows.
      const auto snap = engine.snapshot();
      Dataset erase(schema);
      for (std::size_t k = 0;
           k < snap->data().num_combinations() && erase.num_rows() < 5;
           ++k) {
        if (snap->data().count(k) > 0) {
          erase.AppendRow(snap->data().combination(k));
        }
      }
      ASSERT_TRUE(engine.RetractRows(erase).ok());
    }
    next = end;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
}

}  // namespace
}  // namespace coverage

// Property sweep for Problem 2: on random datasets over assorted schemas,
// the full pipeline (identify MUPs -> expand to level λ -> greedy hitting
// set -> apply plan) must always raise the maximum covered level to at least
// λ, and the plan must be internally consistent.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/scan_coverage.h"
#include "enhancement/enhancement.h"
#include "mups/mups.h"
#include "pattern/pattern_graph.h"

namespace coverage {
namespace {

struct PlanCase {
  std::vector<int> cardinalities;
  std::size_t num_rows;
  std::uint64_t tau;
  int lambda;
  std::uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<PlanCase>& info) {
  std::string name = "c";
  for (int c : info.param.cardinalities) name += std::to_string(c);
  name += "_n" + std::to_string(info.param.num_rows);
  name += "_tau" + std::to_string(info.param.tau);
  name += "_l" + std::to_string(info.param.lambda);
  name += "_s" + std::to_string(info.param.seed);
  return name;
}

Dataset Generate(const PlanCase& c) {
  const Schema schema = Schema::Uniform(c.cardinalities);
  Rng rng(c.seed);
  Dataset data(schema);
  std::vector<Value> row(c.cardinalities.size());
  for (std::size_t r = 0; r < c.num_rows; ++r) {
    for (std::size_t a = 0; a < c.cardinalities.size(); ++a) {
      const auto card = static_cast<std::uint64_t>(c.cardinalities[a]);
      row[a] = static_cast<Value>(
          std::min(rng.NextUint64(card), rng.NextUint64(card)));
    }
    data.AppendRow(row);
  }
  return data;
}

class EnhancementSweep : public ::testing::TestWithParam<PlanCase> {};

TEST_P(EnhancementSweep, PlanReachesTargetLevel) {
  const PlanCase& c = GetParam();
  const Dataset data = Generate(c);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = c.tau});

  EnhancementOptions options;
  options.tau = c.tau;
  options.lambda = c.lambda;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->unresolvable.empty());

  // Internal consistency: every target is hit by some pick; picks carry
  // enough copies; the generalized pattern matches its pick.
  for (const Pattern& target : plan->targets) {
    EXPECT_EQ(target.level(), c.lambda);
    bool hit = false;
    for (const auto& item : plan->items) {
      hit = hit || target.Matches(item.combination);
    }
    EXPECT_TRUE(hit) << target.ToString();
  }
  for (const auto& item : plan->items) {
    EXPECT_GE(item.copies, 1u);
    EXPECT_TRUE(item.generalized.Matches(item.combination));
  }

  // The applied plan reaches the target level.
  const Dataset enlarged = ApplyPlan(data, *plan);
  const AggregatedData agg2(enlarged);
  const BitmapCoverage oracle2(agg2);
  const auto mups2 = FindMupsDeepDiver(oracle2, MupSearchOptions{.tau = c.tau});
  EXPECT_GE(MaximumCoveredLevel(mups2, data.num_attributes()), c.lambda);
}

TEST_P(EnhancementSweep, EveryLevelLambdaPatternCoveredAfterApply) {
  // Stronger check against the definitional oracle: after applying the
  // plan, *every* pattern at level λ has coverage >= τ.
  const PlanCase& c = GetParam();
  const Dataset data = Generate(c);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = c.tau});
  EnhancementOptions options;
  options.tau = c.tau;
  options.lambda = c.lambda;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok());

  const Dataset enlarged = ApplyPlan(data, *plan);
  ScanCoverage scan(enlarged);
  PatternGraph graph(data.schema());
  auto at_level = graph.EnumerateLevel(c.lambda, 1 << 20);
  ASSERT_TRUE(at_level.ok());
  QueryContext ctx;
  for (const Pattern& p : *at_level) {
    EXPECT_GE(scan.Coverage(p, ctx), c.tau) << p.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnhancementSweep,
    ::testing::Values(
        PlanCase{{2, 2, 2}, 40, 3, 1, 1}, PlanCase{{2, 2, 2}, 40, 3, 2, 2},
        PlanCase{{2, 2, 2}, 40, 3, 3, 3}, PlanCase{{3, 2, 4}, 80, 4, 2, 4},
        PlanCase{{3, 3, 3}, 60, 5, 2, 5}, PlanCase{{2, 4, 2, 2}, 100, 3, 2, 6},
        PlanCase{{2, 2, 2, 2, 2}, 150, 4, 3, 7},
        PlanCase{{5, 2, 3}, 90, 6, 2, 8},
        PlanCase{{2, 2}, 5, 10, 2, 9},    // tiny data, big tau
        PlanCase{{3, 3}, 0, 2, 1, 10},    // empty dataset
        PlanCase{{2, 3, 2, 3}, 200, 2, 4, 11},
        PlanCase{{4, 4, 2}, 120, 8, 1, 12}),
    CaseName);

}  // namespace
}  // namespace coverage

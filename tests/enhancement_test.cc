#include "enhancement/enhancement.h"

#include <gtest/gtest.h>

#include "coverage/scan_coverage.h"
#include "datagen/adversarial.h"
#include "datagen/compas.h"
#include "enhancement/report.h"
#include "mups/mups.h"

namespace coverage {
namespace {

Pattern P(const std::string& text, const Schema& schema) {
  auto p = Pattern::Parse(text, schema);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

/// End-to-end invariant: after applying a plan, the maximum covered level of
/// the enlarged dataset is at least lambda.
void ExpectPlanReachesLevel(const Dataset& data, std::uint64_t tau,
                            int lambda) {
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});

  EnhancementOptions options;
  options.tau = tau;
  options.lambda = lambda;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->unresolvable.empty());

  const Dataset enlarged = ApplyPlan(data, *plan);
  const AggregatedData agg2(enlarged);
  const BitmapCoverage oracle2(agg2);
  const auto mups2 = FindMupsDeepDiver(oracle2, MupSearchOptions{.tau = tau});
  EXPECT_GE(MaximumCoveredLevel(mups2, data.num_attributes()), lambda)
      << "plan with " << plan->items.size() << " items failed";
}

Dataset MakeExample1() {
  Dataset data(Schema::Binary(3));
  data.AppendRow(std::vector<Value>{0, 1, 0});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  data.AppendRow(std::vector<Value>{0, 0, 0});
  data.AppendRow(std::vector<Value>{0, 1, 1});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  return data;
}

TEST(Enhancement, Example1LambdaOne) {
  // One MUP (1XX) at level 1; a single tuple with A1=1 fixes λ=1.
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 1});
  EnhancementOptions options;
  options.tau = 1;
  options.lambda = 1;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->items.size(), 1u);
  EXPECT_EQ(plan->items[0].combination[0], 1);
  EXPECT_EQ(plan->items[0].copies, 1u);
  EXPECT_EQ(plan->TotalTuples(), 1u);
}

TEST(Enhancement, PlanReachesRequestedLevelOnSmallData) {
  const Dataset data = MakeExample1();
  for (int lambda = 1; lambda <= 3; ++lambda) {
    ExpectPlanReachesLevel(data, 1, lambda);
  }
}

TEST(Enhancement, PlanReachesLevelWithHigherTau) {
  const Dataset data = MakeExample1();
  ExpectPlanReachesLevel(data, 2, 1);
  ExpectPlanReachesLevel(data, 2, 2);
}

TEST(Enhancement, CopiesReflectCoverageDeficit) {
  // τ=3 and the A1=1 half-space is empty: the level-1 plan must collect 3
  // copies of its pick.
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 3});
  EnhancementOptions options;
  options.tau = 3;
  options.lambda = 1;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok());
  std::uint64_t max_copies = 0;
  for (const auto& item : plan->items) {
    max_copies = std::max(max_copies, item.copies);
  }
  EXPECT_EQ(max_copies, 3u);
  ExpectPlanReachesLevel(data, 3, 1);
}

TEST(Enhancement, CoveringMupsIsNotEnoughAppendixC) {
  // Appendix C's point: covering the MUPs at level <= λ does not guarantee
  // maximum covered level λ; the plan must target all uncovered patterns at
  // level λ. Verify our planner passes the stricter end-to-end check on the
  // diagonal dataset where MUPs sit above and below λ.
  const Dataset data = datagen::MakeDiagonal(6);
  ExpectPlanReachesLevel(data, 4, 2);
  ExpectPlanReachesLevel(data, 4, 3);
}

TEST(Enhancement, VertexCoverReductionLevelOne) {
  const std::vector<std::pair<int, int>> edges = {
      {0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}};
  const Dataset data = datagen::MakeVertexCoverReduction(4, edges);
  ExpectPlanReachesLevel(data, 3, 1);
}

TEST(Enhancement, NaiveGreedySolvesSameInstance) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 1});
  EnhancementOptions options;
  options.tau = 1;
  options.lambda = 2;
  options.use_naive_greedy = true;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok());
  EnhancementOptions fast_options = options;
  fast_options.use_naive_greedy = false;
  auto fast_plan = PlanCoverageEnhancement(oracle, mups, fast_options);
  ASSERT_TRUE(fast_plan.ok());
  EXPECT_EQ(plan->items.size(), fast_plan->items.size());
  EXPECT_EQ(plan->targets.size(), fast_plan->targets.size());
}

TEST(Enhancement, ValidationOracleShapesPlan) {
  // §V-B3: rules must carry through to the plan's combinations.
  const auto compas = datagen::MakeCompas(2000, 3);
  const AggregatedData agg(compas.data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 10});

  ValidationOracle validator;
  const Schema& schema = compas.data.schema();
  validator.AddRule(*ValidationRule::Parse("marital in {unknown}", schema));
  validator.AddRule(*ValidationRule::Parse(
      "age in {<20} and marital in {married, separated, widowed, sig-other, "
      "divorced}",
      schema));

  EnhancementOptions options;
  options.tau = 10;
  options.lambda = 2;
  options.oracle = &validator;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok());
  for (const auto& item : plan->items) {
    EXPECT_TRUE(validator.IsValid(item.combination));
  }
  // Patterns like marital=unknown combinations may be unresolvable; each
  // reported one must indeed be unreachable under the rules.
  for (const Pattern& p : plan->unresolvable) {
    EXPECT_TRUE(p.is_deterministic(datagen::kCompasMarital) &&
                (p.cell(datagen::kCompasMarital) == 6 ||
                 p.cell(datagen::kCompasAge) == 0))
        << p.ToString();
  }
}

TEST(Enhancement, ValueCountVariantCoversQualifyingPatterns) {
  const Dataset data = datagen::MakeDiagonal(6);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const std::uint64_t tau = 4;
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});
  EnhancementOptions options;
  options.tau = tau;
  auto plan = PlanCoverageEnhancementByValueCount(oracle, mups, 8, options);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->unresolvable.empty());
  // After applying, every uncovered pattern with value count >= 8 is gone.
  const Dataset enlarged = ApplyPlan(data, *plan);
  const AggregatedData agg2(enlarged);
  const BitmapCoverage oracle2(agg2);
  const auto mups2 = FindMupsDeepDiver(oracle2, MupSearchOptions{.tau = tau});
  for (const Pattern& p : mups2) {
    EXPECT_LT(p.ValueCount(data.schema()), 8u) << p.ToString();
  }
}

TEST(Enhancement, TargetsMatchFig19InputSemantics) {
  const Dataset data = datagen::MakeDiagonal(6);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 4});
  EnhancementOptions options;
  options.tau = 4;
  options.lambda = 3;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok());
  // Output (picks) should be much smaller than input (targets): each pick
  // hits many patterns.
  EXPECT_GT(plan->targets.size(), plan->items.size());
}

// ----------------------------------------------------------------- report --

TEST(Report, NutritionalLabelMentionsKeyFacts) {
  const auto compas = datagen::MakeCompas(2000, 3);
  const AggregatedData agg(compas.data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 10});
  const CoverageReport report = BuildCoverageReport(
      compas.data.schema(), mups, compas.data.num_rows(), 10);
  EXPECT_EQ(report.num_mups, mups.size());
  EXPECT_EQ(report.num_rows, compas.data.num_rows());
  const std::string label = RenderNutritionalLabel(report);
  EXPECT_NE(label.find("COVERAGE LABEL"), std::string::npos);
  EXPECT_NE(label.find("maximum covered level"), std::string::npos);
}

TEST(Report, AcquisitionPlanRendering) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 1});
  EnhancementOptions options;
  options.tau = 1;
  options.lambda = 1;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok());
  const std::string text = RenderAcquisitionPlan(*plan, data.schema());
  EXPECT_NE(text.find("Acquisition plan"), std::string::npos);
  EXPECT_NE(text.find("collect"), std::string::npos);
}

TEST(Report, MostGeneralMupsComeFirst) {
  const Schema schema = Schema::Binary(4);
  const std::vector<Pattern> mups = {P("1011", schema), P("0XXX", schema),
                                     P("X10X", schema)};
  const CoverageReport report = BuildCoverageReport(schema, mups, 100, 5);
  ASSERT_EQ(report.most_general.size(), 3u);
  EXPECT_NE(report.most_general[0].find("0XXX"), std::string::npos);
}

}  // namespace
}  // namespace coverage

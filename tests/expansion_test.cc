#include "enhancement/expansion.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "coverage/scan_coverage.h"
#include "dataset/aggregate.h"
#include "mups/mups.h"
#include "pattern/pattern_graph.h"

namespace coverage {
namespace {

Pattern P(const std::string& text, const Schema& schema) {
  auto p = Pattern::Parse(text, schema);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

// Example 2 of the paper: 5 attributes, A2 and A3 ternary, rest binary.
Schema Example2Schema() { return Schema::Uniform({2, 3, 3, 2, 2}); }

std::vector<Pattern> Example2Mups(const Schema& schema) {
  return {P("XX01X", schema), P("1X20X", schema), P("XXXX1", schema),
          P("02XXX", schema), P("XX11X", schema), P("111XX", schema),
          P("X020X", schema)};
}

TEST(Expansion, Example2LambdaTwoAppendixCSemantics) {
  // Appendix C: M_λ = all uncovered patterns at exactly level λ. For λ=2
  // that keeps the level-2 MUPs (P1 = XX01X, P4 = 02XXX, P5 = XX11X) and
  // expands the level-1 MUP P3 = XXXX1 into its ten level-2 descendants;
  // the level-3 MUPs (P2, P6, P7) contribute nothing. (The paper's running
  // example loosely calls P1..P6 "the patterns with level 2", but its own
  // Appendix C — the 1X11X counterexample — fixes the semantics we follow.)
  const Schema schema = Example2Schema();
  auto m = UncoveredPatternsAtLevel(Example2Mups(schema), schema, 2, 10000);
  ASSERT_TRUE(m.ok());
  std::set<std::string> names;
  for (const Pattern& p : *m) names.insert(p.ToString());
  EXPECT_EQ(names,
            (std::set<std::string>{"XX01X", "02XXX", "XX11X",
                                   // level-2 descendants of P3 = XXXX1:
                                   "0XXX1", "1XXX1", "X0XX1", "X1XX1",
                                   "X2XX1", "XX0X1", "XX1X1", "XX2X1",
                                   "XXX01", "XXX11"}));
}

TEST(Expansion, Example2LambdaThreeExpandsDescendants) {
  const Schema schema = Example2Schema();
  auto m = UncoveredPatternsAtLevel(Example2Mups(schema), schema, 3, 10000);
  ASSERT_TRUE(m.ok());
  // Appendix C lists the level-3 descendants of P1 = XX01X; all must appear.
  for (const char* name :
       {"0X01X", "1X01X", "X001X", "X101X", "X201X", "XX010", "XX011"}) {
    EXPECT_TRUE(std::count(m->begin(), m->end(), P(name, schema)))
        << name << " missing";
  }
  // P7 itself sits at level 3 and must be included.
  EXPECT_TRUE(std::count(m->begin(), m->end(), P("X020X", schema)));
  // Every member has level 3 and is dominated-or-equalled by some MUP.
  for (const Pattern& p : *m) {
    EXPECT_EQ(p.level(), 3);
    bool dominated = false;
    for (const Pattern& mup : Example2Mups(schema)) {
      dominated = dominated || mup.DominatesOrEquals(p);
    }
    EXPECT_TRUE(dominated) << p.ToString();
  }
  // No duplicates.
  const std::set<Pattern> unique(m->begin(), m->end());
  EXPECT_EQ(unique.size(), m->size());
}

TEST(Expansion, MupsAboveLambdaAreIgnored) {
  const Schema schema = Example2Schema();
  auto m = UncoveredPatternsAtLevel({P("X020X", schema)}, schema, 2, 10000);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->empty());
}

TEST(Expansion, AgainstBruteForceOnRandomData) {
  // Property: M_λ equals {patterns at level λ with cov < τ} computed by
  // brute force, for every λ.
  Rng rng(5);
  const Schema schema = Schema::Uniform({2, 3, 2});
  Dataset data(schema);
  std::vector<Value> row(3);
  for (int i = 0; i < 40; ++i) {
    for (int a = 0; a < 3; ++a) {
      const auto c = static_cast<std::uint64_t>(schema.cardinality(a));
      row[static_cast<std::size_t>(a)] =
          static_cast<Value>(std::min(rng.NextUint64(c), rng.NextUint64(c)));
    }
    data.AppendRow(row);
  }
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  ScanCoverage scan(data);
  const std::uint64_t tau = 3;
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});

  PatternGraph graph(schema);
  for (int lambda = 0; lambda <= 3; ++lambda) {
    auto m = UncoveredPatternsAtLevel(mups, schema, lambda, 100000);
    ASSERT_TRUE(m.ok());
    auto at_level = graph.EnumerateLevel(lambda, 100000);
    ASSERT_TRUE(at_level.ok());
    std::set<Pattern> expected;
    QueryContext ctx;
    for (const Pattern& p : *at_level) {
      if (scan.Coverage(p, ctx) < tau) expected.insert(p);
    }
    EXPECT_EQ(std::set<Pattern>(m->begin(), m->end()), expected)
        << "lambda=" << lambda;
  }
}

TEST(Expansion, RespectsLimit) {
  const Schema schema = Schema::Binary(12);
  const auto result =
      UncoveredPatternsAtLevel({Pattern::Root(12)}, schema, 6, 100);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Expansion, RejectsBadLambda) {
  const Schema schema = Schema::Binary(3);
  EXPECT_FALSE(UncoveredPatternsAtLevel({}, schema, -1, 10).ok());
  EXPECT_FALSE(UncoveredPatternsAtLevel({}, schema, 4, 10).ok());
}

TEST(Expansion, EmptyMupListYieldsEmptyTargets) {
  const Schema schema = Schema::Binary(3);
  auto m = UncoveredPatternsAtLevel({}, schema, 2, 10);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->empty());
}

// --------------------------------------------------- value-count variant --

TEST(ValueCountExpansion, KeepsMupsAboveBar) {
  const Schema schema = Example2Schema();  // total combos = 2*3*3*2*2 = 72
  // P3 = XXXX1 has value count 36; with bar 36 only P3 qualifies and is
  // already minimal (every specialisation halves or thirds the count).
  auto m = UncoveredPatternsByValueCount(Example2Mups(schema), schema, 36,
                                         10000);
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->size(), 1u);
  EXPECT_EQ((*m)[0].ToString(), "XXXX1");
}

TEST(ValueCountExpansion, ExpandsToMinimalFrontier) {
  const Schema schema = Schema::Binary(4);  // 16 combinations
  // Root MUP with bar 4: minimal uncovered patterns with value count >= 4
  // are exactly the level-2 patterns (vc 4; children have vc 2).
  auto m = UncoveredPatternsByValueCount({Pattern::Root(4)}, schema, 4, 10000);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 24u);  // C(4,2) * 2^2
  for (const Pattern& p : *m) {
    EXPECT_EQ(p.level(), 2);
    EXPECT_EQ(p.ValueCount(schema), 4u);
  }
}

TEST(ValueCountExpansion, DropsMupsBelowBar) {
  const Schema schema = Example2Schema();
  // P2 = 1X20X has value count 3*2 = 6 < 10.
  auto m = UncoveredPatternsByValueCount({P("1X20X", schema)}, schema, 10,
                                         10000);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->empty());
}

TEST(ValueCountExpansion, HittingMinimalHitsAllQualifying) {
  // Property: every uncovered pattern with vc >= bar dominates-or-equals a
  // member of the minimal frontier.
  const Schema schema = Schema::Uniform({2, 3, 2});
  const std::vector<Pattern> mups = {P("1XX", schema), P("X2X", schema)};
  const std::uint64_t bar = 2;
  auto frontier = UncoveredPatternsByValueCount(mups, schema, bar, 10000);
  ASSERT_TRUE(frontier.ok());
  // Enumerate all uncovered patterns (descendants of MUPs) with vc >= bar.
  PatternGraph graph(schema);
  auto all = graph.EnumerateAll(100000);
  ASSERT_TRUE(all.ok());
  for (const Pattern& p : *all) {
    bool uncovered = false;
    for (const Pattern& mup : mups) uncovered |= mup.DominatesOrEquals(p);
    if (!uncovered || p.ValueCount(schema) < bar) continue;
    bool reachable = false;
    for (const Pattern& f : *frontier) {
      reachable = reachable || p.DominatesOrEquals(f);
    }
    EXPECT_TRUE(reachable) << p.ToString();
  }
}

TEST(ValueCountExpansion, RejectsZeroBar) {
  const Schema schema = Schema::Binary(3);
  EXPECT_FALSE(UncoveredPatternsByValueCount({}, schema, 0, 10).ok());
}

}  // namespace
}  // namespace coverage

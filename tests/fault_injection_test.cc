#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "engine/coverage_engine.h"
#include "persist/durable_engine.h"
#include "persist/fault_fs.h"

namespace coverage {
namespace persist {
namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

// ------------------------------------------------------------ FaultFs unit

TEST(FaultFs, CrashAfterBytesTearsTheCrossingWrite) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("faultfs_" + std::to_string(::getpid()) + "_tear"))
          .string();
  std::filesystem::remove_all(dir);
  FaultFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDirs(dir).ok());
  auto file = fs.NewWritableFile(dir + "/f", true);
  ASSERT_TRUE(file.ok());
  fs.CrashAfterBytes(5);
  // 3 bytes fit the budget...
  ASSERT_TRUE((*file)->Append("abc").ok());
  EXPECT_FALSE(fs.crashed());
  // ...the next 4-byte write crosses it: 2 bytes land, the call fails.
  EXPECT_FALSE((*file)->Append("defg").ok());
  EXPECT_TRUE(fs.crashed());
  // Every later mutation fails; reads pass through (the disk survived).
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE(fs.NewWritableFile(dir + "/g", true).ok());
  EXPECT_FALSE(fs.Rename(dir + "/f", dir + "/h").ok());
  auto contents = fs.ReadFileToString(dir + "/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "abcde");  // the torn prefix
  EXPECT_EQ(fs.bytes_written(), 5u);
  std::filesystem::remove_all(dir);
}

TEST(FaultFs, ObserverSeesOperationsAndResetDisarms) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("faultfs_" + std::to_string(::getpid()) + "_obs"))
          .string();
  std::filesystem::remove_all(dir);
  FaultFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDirs(dir).ok());
  std::vector<std::string> ops;
  fs.set_op_observer([&](std::string_view op, const std::string&) {
    ops.push_back(std::string(op));
  });
  auto file = fs.NewWritableFile(dir + "/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("a").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_GE(ops.size(), 4u);  // open, append, sync, close at least

  fs.CrashAfterBytes(0);
  EXPECT_TRUE(fs.crashed());
  fs.Reset();
  EXPECT_FALSE(fs.crashed());
  auto after = fs.NewWritableFile(dir + "/g", true);
  EXPECT_TRUE(after.ok());
  std::filesystem::remove_all(dir);
}

// ------------------------------------- randomized crash-recovery property

struct WorkloadStep {
  bool retract;
  Dataset rows;
  WorkloadStep(bool retract, Dataset rows)
      : retract(retract), rows(std::move(rows)) {}
};

/// One workload: a deterministic mutation sequence over a small schema.
/// `windowed` adds sliding-window eviction to the mix.
std::vector<WorkloadStep> MakeWorkload(const Schema& schema, bool retracts,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WorkloadStep> steps;
  Dataset live(schema);  // rows currently present (for valid retractions)
  for (int s = 0; s < 12; ++s) {
    const bool retract = retracts && live.num_rows() > 4 && rng.NextBool(0.3);
    Dataset rows(schema);
    if (retract) {
      // Two distinct positions (possibly equal rows — then the multiplicity
      // genuinely exists and the retraction must be accepted).
      std::size_t r0 = rng.NextUint64(live.num_rows());
      std::size_t r1 = rng.NextUint64(live.num_rows() - 1);
      if (r1 >= r0) ++r1;
      rows.AppendRow(live.row(r0));
      rows.AppendRow(live.row(r1));
      // Rebuild `live` minus one occurrence of each retracted row.
      Dataset next(schema);
      std::vector<bool> removed(live.num_rows(), false);
      for (std::size_t q = 0; q < rows.num_rows(); ++q) {
        for (std::size_t r = 0; r < live.num_rows(); ++r) {
          if (removed[r]) continue;
          bool same = true;
          for (int a = 0; a < schema.num_attributes(); ++a) {
            if (live.row(r)[static_cast<std::size_t>(a)] !=
                rows.row(q)[static_cast<std::size_t>(a)]) {
              same = false;
              break;
            }
          }
          if (same) {
            removed[r] = true;
            break;
          }
        }
      }
      for (std::size_t r = 0; r < live.num_rows(); ++r) {
        if (!removed[r]) next.AppendRow(live.row(r));
      }
      live = std::move(next);
    } else {
      const std::size_t n = 3 + rng.NextUint64(8);
      std::vector<Value> row(
          static_cast<std::size_t>(schema.num_attributes()));
      for (std::size_t r = 0; r < n; ++r) {
        for (int a = 0; a < schema.num_attributes(); ++a) {
          row[static_cast<std::size_t>(a)] =
              static_cast<Value>(rng.NextUint64(
                  static_cast<std::uint64_t>(schema.cardinality(a))));
        }
        rows.AppendRow(row);
        live.AppendRow(row);
      }
    }
    steps.emplace_back(retract, std::move(rows));
  }
  return steps;
}

void ExpectAuditParity(const CoverageEngine& recovered,
                       const CoverageEngine& shadow) {
  ASSERT_EQ(recovered.epoch(), shadow.epoch());
  ASSERT_EQ(recovered.num_rows(), shadow.num_rows());
  ASSERT_EQ(recovered.Mups(), shadow.Mups());
  const Schema& schema = shadow.schema();
  const int d = schema.num_attributes();
  for (int i = 0; i < d; ++i) {
    for (Value v = 0; v < schema.cardinality(i); ++v) {
      std::vector<Value> cells(static_cast<std::size_t>(d), kWildcard);
      cells[static_cast<std::size_t>(i)] = v;
      ASSERT_EQ(recovered.Query(Pattern(cells)), shadow.Query(Pattern(cells)));
    }
  }
}

/// The property: crash a durable session at an arbitrary byte of its write
/// stream, recover, and the engine must agree exactly with an in-memory
/// shadow that executed the acknowledged prefix of the workload. Under
/// durability=fsync "acknowledged" is precise: every Append/Retract that
/// returned OK must survive; the one in flight at the crash may or may not.
void RunCrashRecoveryProperty(DominanceMode mode, bool retracts,
                              std::size_t window_epochs) {
  const Schema schema = Schema::Uniform({2, 3, 2, 2});
  EngineOptions eopts;
  eopts.tau = 3;
  eopts.dominance_mode = mode;
  eopts.durability = DurabilityMode::kFsync;
  eopts.window_max_epochs = window_epochs;

  const std::uint64_t workload_seed = 1000 + static_cast<int>(mode) * 10 +
                                      (retracts ? 1 : 0) +
                                      (window_epochs > 0 ? 2 : 0);
  const std::vector<WorkloadStep> steps =
      MakeWorkload(schema, retracts, workload_seed);

  // Dry run: measure the full write volume so crash points sample the
  // whole stream, not just its head.
  std::uint64_t total_bytes = 0;
  {
    const std::string dry_dir =
        (std::filesystem::temp_directory_path() /
         ("crashprop_dry_" + std::to_string(::getpid()) + "_" +
          std::to_string(workload_seed)))
            .string();
    std::filesystem::remove_all(dry_dir);
    FaultFs fs(FileSystem::Default());
    DurableEngineOptions dopts;
    dopts.fs = &fs;
    auto durable = DurableEngine::Create(dry_dir, schema, eopts, dopts);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    for (const WorkloadStep& step : steps) {
      ASSERT_TRUE((step.retract ? (*durable)->Retract(step.rows)
                                : (*durable)->Append(step.rows))
                      .ok());
    }
    total_bytes = fs.bytes_written();
    std::filesystem::remove_all(dry_dir);
  }
  ASSERT_GT(total_bytes, 0u);

  Rng crash_rng(workload_seed * 7919);
  for (int trial = 0; trial < 6; ++trial) {
    const std::uint64_t crash_at = crash_rng.NextUint64(total_bytes + 1);
    SCOPED_TRACE("crash after " + std::to_string(crash_at) + " of " +
                 std::to_string(total_bytes) + " bytes, mode " +
                 std::to_string(static_cast<int>(mode)));
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("crashprop_" + std::to_string(::getpid()) + "_" +
          std::to_string(workload_seed) + "_" + std::to_string(trial)))
            .string();
    std::filesystem::remove_all(dir);

    FaultFs fs(FileSystem::Default());
    DurableEngineOptions dopts;
    dopts.fs = &fs;
    CoverageEngine shadow(schema, eopts);

    // Arm before Create so the crash offset means the same thing it did in
    // the dry run: the k-th byte of the session's entire write stream.
    fs.CrashAfterBytes(crash_at);
    auto durable = DurableEngine::Create(dir, schema, eopts, dopts);
    std::size_t acked = 0;
    if (durable.ok()) {
      for (const WorkloadStep& step : steps) {
        const Status applied = step.retract ? (*durable)->Retract(step.rows)
                                            : (*durable)->Append(step.rows);
        if (!applied.ok()) break;  // the crash hit — stop the workload
        // Acknowledged under fsync: must survive recovery.
        ASSERT_TRUE((step.retract ? shadow.RetractRows(step.rows)
                                  : shadow.AppendRows(step.rows))
                        .ok());
        ++acked;
      }
      (*durable).reset();  // the process dies; the disk (base fs) survives
    }
    fs.Reset();  // reboot: disarm the fault

    auto recovered = DurableEngine::Recover(dir, eopts, dopts);
    if (!recovered.ok()) {
      // Only legitimate if nothing was ever acknowledged (the crash hit
      // during Create, before the session had durable state).
      ASSERT_EQ(acked, 0u) << recovered.status().ToString();
      std::filesystem::remove_all(dir);
      continue;
    }
    // Recovery may land one epoch ahead of the shadow: the mutation in
    // flight at the crash is allowed to survive if its record hit the disk
    // completely before the fault tore the stream.
    if ((*recovered)->engine().epoch() == shadow.epoch() + 1) {
      ASSERT_LT(acked, steps.size());
      const WorkloadStep& step = steps[acked];
      ASSERT_TRUE((step.retract ? shadow.RetractRows(step.rows)
                                : shadow.AppendRows(step.rows))
                      .ok());
    }
    ExpectAuditParity((*recovered)->engine(), shadow);
    std::filesystem::remove_all(dir);
  }
}

TEST(CrashRecoveryProperty, AppendOnlyBitmapIndex) {
  RunCrashRecoveryProperty(DominanceMode::kBitmapIndex, false, 0);
}

TEST(CrashRecoveryProperty, AppendRetractLinearScan) {
  RunCrashRecoveryProperty(DominanceMode::kLinearScan, true, 0);
}

TEST(CrashRecoveryProperty, WindowedNoPruning) {
  RunCrashRecoveryProperty(DominanceMode::kNoPruning, false, 3);
}

TEST(CrashRecoveryProperty, WindowedWithRetractionsBitmapIndex) {
  RunCrashRecoveryProperty(DominanceMode::kBitmapIndex, true, 4);
}

}  // namespace
}  // namespace persist
}  // namespace coverage

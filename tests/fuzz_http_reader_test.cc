// Deterministic structure-aware fuzz driver for the incremental HTTP/1.1
// MessageReader (src/server/http.h). Seeded throughout:
//
//  1. Generative round-trip: random requests/responses, serialised and fed
//     back in random-sized chunks, must parse to identical messages —
//     including pipelined back-to-back messages drained via Pump().
//  2. Mutation fuzz: random byte edits of valid wire bytes must never
//     crash the reader; every outcome is a clean status or a parsed
//     message.
//  3. Random garbage: arbitrary bytes must end in rejection or the head
//     limit, never unbounded buffering.
//
// Inputs that expose a bug get frozen as named regression tests below.

#include "server/http.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace coverage {
namespace http {
namespace {

constexpr MessageReader::Limits kTestLimits = {
    .max_head_bytes = 4 * 1024,
    .max_body_bytes = 64 * 1024,
};

std::string RandomToken(Rng& rng, std::size_t max_len) {
  static const std::string kChars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  std::string out;
  const std::size_t n = 1 + rng.NextUint64(max_len);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kChars[rng.NextUint64(kChars.size())]);
  }
  return out;
}

std::string RandomBody(Rng& rng) {
  std::string body(rng.NextUint64(512), '\0');
  for (char& c : body) c = static_cast<char>(rng.NextUint64(256));
  return body;
}

Request RandomRequest(Rng& rng) {
  static const std::vector<std::string> kMethods = {"GET", "POST", "PUT",
                                                    "DELETE", "HEAD"};
  Request req;
  req.method = kMethods[rng.NextUint64(kMethods.size())];
  req.target = "/" + RandomToken(rng, 12) + "/" + RandomToken(rng, 12);
  if (rng.NextBool(0.3)) req.target += "?" + RandomToken(rng, 8) + "=1";
  req.version = "HTTP/1.1";
  const int extra = static_cast<int>(rng.NextUint64(4));
  for (int i = 0; i < extra; ++i) {
    req.headers.push_back({"X-" + RandomToken(rng, 10), RandomToken(rng, 20)});
  }
  req.body = RandomBody(rng);
  return req;
}

/// Feeds `wire` in random-sized chunks; returns the first non-OK status.
Status FeedChunked(MessageReader& reader, const std::string& wire, Rng& rng) {
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t n =
        std::min(wire.size() - pos, std::size_t{1} + rng.NextUint64(97));
    Status s = reader.Feed(wire.data() + pos, n);
    if (!s.ok()) return s;
    pos += n;
  }
  return Status::OK();
}

void ExpectSameRequest(const Request& got, const Request& want) {
  EXPECT_EQ(got.method, want.method);
  EXPECT_EQ(got.target, want.target);
  EXPECT_EQ(got.version, want.version);
  EXPECT_EQ(got.body, want.body);
  for (const Header& h : want.headers) {
    const std::string* v = got.FindHeader(h.name);
    ASSERT_NE(v, nullptr) << h.name;
    EXPECT_EQ(*v, h.value);
  }
}

TEST(FuzzHttpReader, GenerativeRequestRoundTrip) {
  Rng rng(20260808);
  for (int iter = 0; iter < 1000; ++iter) {
    const Request req = RandomRequest(rng);
    MessageReader reader(kTestLimits);
    ASSERT_TRUE(FeedChunked(reader, SerializeRequest(req), rng).ok());
    ASSERT_TRUE(reader.HasMessage());
    auto got = reader.TakeRequest();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameRequest(*got, req);
    EXPECT_TRUE(reader.Empty());
  }
}

TEST(FuzzHttpReader, GenerativeResponseRoundTrip) {
  Rng rng(417);
  for (int iter = 0; iter < 1000; ++iter) {
    Response resp;
    resp.status = static_cast<int>(100 + rng.NextUint64(500));
    resp.headers.push_back({"X-" + RandomToken(rng, 8), RandomToken(rng, 16)});
    resp.body = RandomBody(rng);
    const bool keep_alive = rng.NextBool();

    MessageReader reader(kTestLimits);
    ASSERT_TRUE(
        FeedChunked(reader, SerializeResponse(resp, keep_alive), rng).ok());
    ASSERT_TRUE(reader.HasMessage());
    auto got = reader.TakeResponse();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->status, resp.status);
    EXPECT_EQ(got->body, resp.body);
  }
}

TEST(FuzzHttpReader, PipelinedRequestsDrainInOrder) {
  Rng rng(5150);
  for (int iter = 0; iter < 200; ++iter) {
    const int count = 2 + static_cast<int>(rng.NextUint64(4));
    std::vector<Request> sent;
    std::string wire;
    for (int i = 0; i < count; ++i) {
      sent.push_back(RandomRequest(rng));
      wire += SerializeRequest(sent.back());
    }
    MessageReader reader(kTestLimits);
    ASSERT_TRUE(FeedChunked(reader, wire, rng).ok());
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(reader.HasMessage()) << "message " << i << " of " << count;
      auto got = reader.TakeRequest();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameRequest(*got, sent[static_cast<std::size_t>(i)]);
      ASSERT_TRUE(reader.Pump().ok());
    }
    EXPECT_TRUE(reader.Empty());
  }
}

TEST(FuzzHttpReader, MutatedWireBytesNeverCrash) {
  Rng rng(929);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string wire = SerializeRequest(RandomRequest(rng));
    const int edits = 1 + static_cast<int>(rng.NextUint64(4));
    for (int e = 0; e < edits; ++e) {
      if (wire.empty()) break;
      const std::size_t pos = rng.NextUint64(wire.size());
      switch (rng.NextUint64(4)) {
        case 0: wire[pos] = static_cast<char>(rng.NextUint64(256)); break;
        case 1:
          wire.insert(pos, 1, static_cast<char>(rng.NextUint64(256)));
          break;
        case 2: wire.erase(pos, 1); break;
        default: wire.resize(pos); break;
      }
    }
    MessageReader reader(kTestLimits);
    Status fed = FeedChunked(reader, wire, rng);
    if (fed.ok() && reader.HasMessage()) {
      (void)reader.TakeRequest();  // either outcome, but no crash
    }
  }
}

TEST(FuzzHttpReader, RandomGarbageIsBoundedByHeadLimit) {
  Rng rng(31337);
  for (int iter = 0; iter < 300; ++iter) {
    MessageReader reader(kTestLimits);
    // Garbage with no header terminator: the reader must reject (bad start
    // line) or trip the head bound — it must never buffer indefinitely.
    Status status = Status::OK();
    std::size_t fed = 0;
    while (status.ok() && fed < 2 * kTestLimits.max_head_bytes) {
      std::string chunk(1 + rng.NextUint64(128), '\0');
      for (char& c : chunk) {
        // Exclude LF so the head never terminates.
        do {
          c = static_cast<char>(rng.NextUint64(256));
        } while (c == '\n');
      }
      status = reader.Feed(chunk.data(), chunk.size());
      fed += chunk.size();
    }
    EXPECT_FALSE(status.ok());
    if (status.code() == StatusCode::kResourceExhausted) {
      EXPECT_EQ(reader.limit_violation(), MessageReader::LimitViolation::kHead);
    }
  }
}

TEST(FuzzHttpReader, OversizedContentLengthTripsBodyLimit) {
  MessageReader reader(kTestLimits);
  const std::string wire =
      "POST /v1/audit HTTP/1.1\r\nContent-Length: " +
      std::to_string(kTestLimits.max_body_bytes + 1) + "\r\n\r\n";
  Status status = reader.Feed(wire.data(), wire.size());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(reader.limit_violation(), MessageReader::LimitViolation::kBody);
}

TEST(FuzzHttpReader, TransferEncodingIsRejected) {
  MessageReader reader(kTestLimits);
  const std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  EXPECT_FALSE(reader.Feed(wire.data(), wire.size()).ok());
}

TEST(FuzzHttpReader, LoneLfLineEndingsAreTolerated) {
  MessageReader reader(kTestLimits);
  const std::string wire = "GET /x HTTP/1.1\nHost: h\nContent-Length: 2\n\nhi";
  ASSERT_TRUE(reader.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(reader.HasMessage());
  auto got = reader.TakeRequest();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->target, "/x");
  EXPECT_EQ(got->body, "hi");
}

TEST(FuzzHttpReader, ByteAtATimeDelivery) {
  // The degenerate chunking: every byte in its own Feed call, including the
  // CRLFCRLF boundary split four ways.
  Rng rng(2);
  const Request req = RandomRequest(rng);
  const std::string wire = SerializeRequest(req);
  MessageReader reader(kTestLimits);
  for (char c : wire) ASSERT_TRUE(reader.Feed(&c, 1).ok());
  ASSERT_TRUE(reader.HasMessage());
  auto got = reader.TakeRequest();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameRequest(*got, req);
}

}  // namespace
}  // namespace http
}  // namespace coverage

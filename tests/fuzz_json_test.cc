// Deterministic structure-aware fuzz driver for the JSON layer
// (src/server/json.h). Three angles, all seeded so failures reproduce:
//
//  1. Generative round-trip: random JsonValue trees must survive
//     Serialize → Parse → Serialize byte-identically (and SerializePretty
//     must parse back to the same value).
//  2. Mutation fuzz: random byte edits of valid documents must never crash
//     the parser, and whatever still parses must itself round-trip.
//  3. Grammar-directed invalid inputs: each rejection class the parser
//     documents (trailing commas, lone surrogates, hex numbers, ...) is
//     generated at a random position and must fail cleanly.
//
// Any input that exposes a bug should be frozen into a named regression
// test at the bottom of this file.

#include "server/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace coverage {
namespace json {
namespace {

/// Characters worth biasing toward when building string scalars: quoting,
/// escaping, control characters, and multi-byte UTF-8.
const std::vector<std::string>& InterestingFragments() {
  static const std::vector<std::string> kFragments = {
      "\"", "\\", "\\\\", "\n", "\t", "\r", "\b", "\f",
      std::string(1, '\0'), std::string(1, '\x1f'),
      "é", "→", "😀", "ключ", "{", "}", "[", "]", ":", ",",
      "null", "1e9", " ",
  };
  return kFragments;
}

std::string RandomString(Rng& rng) {
  std::string out;
  const int pieces = static_cast<int>(rng.NextUint64(8));
  for (int i = 0; i < pieces; ++i) {
    if (rng.NextBool(0.4)) {
      const auto& frags = InterestingFragments();
      out += frags[rng.NextUint64(frags.size())];
    } else {
      out.push_back(static_cast<char>(' ' + rng.NextUint64('~' - ' ' + 1)));
    }
  }
  return out;
}

/// A random value tree. Doubles always carry a fractional part so they
/// cannot re-parse as kInt and break value equality.
JsonValue RandomValue(Rng& rng, int depth) {
  const std::uint64_t kind = rng.NextUint64(depth > 0 ? 7 : 5);
  switch (kind) {
    case 0: return JsonValue();
    case 1: return JsonValue(rng.NextBool());
    case 2: return JsonValue(rng.NextInt(-1'000'000'000, 1'000'000'000));
    case 3:
      return JsonValue(static_cast<double>(rng.NextInt(-1000000, 1000000)) +
                       0.5);
    case 4: return JsonValue(RandomString(rng));
    case 5: {
      JsonValue::Array a;
      const int n = static_cast<int>(rng.NextUint64(5));
      for (int i = 0; i < n; ++i) a.push_back(RandomValue(rng, depth - 1));
      return JsonValue(std::move(a));
    }
    default: {
      JsonValue::Object o;
      const int n = static_cast<int>(rng.NextUint64(5));
      for (int i = 0; i < n; ++i) {
        o[RandomString(rng)] = RandomValue(rng, depth - 1);
      }
      return JsonValue(std::move(o));
    }
  }
}

TEST(FuzzJson, GenerativeRoundTrip) {
  Rng rng(20260808);
  for (int iter = 0; iter < 2000; ++iter) {
    const JsonValue value = RandomValue(rng, 5);
    const std::string text = Serialize(value);

    auto parsed = Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    EXPECT_EQ(*parsed, value) << text;
    EXPECT_EQ(Serialize(*parsed), text);

    auto pretty = Parse(SerializePretty(value));
    ASSERT_TRUE(pretty.ok()) << pretty.status().ToString();
    EXPECT_EQ(*pretty, value);
  }
}

/// One random byte-level edit: replace, insert, delete, duplicate a span,
/// or truncate.
void Mutate(std::string& text, Rng& rng) {
  if (text.empty()) {
    text.push_back(static_cast<char>(rng.NextUint64(256)));
    return;
  }
  const std::size_t pos = rng.NextUint64(text.size());
  switch (rng.NextUint64(5)) {
    case 0:
      text[pos] = static_cast<char>(rng.NextUint64(256));
      break;
    case 1:
      text.insert(pos, 1, static_cast<char>(rng.NextUint64(256)));
      break;
    case 2:
      text.erase(pos, 1);
      break;
    case 3: {
      const std::size_t len = 1 + rng.NextUint64(8);
      text.insert(pos, text.substr(pos, len));
      break;
    }
    default:
      text.resize(pos);
      break;
  }
}

TEST(FuzzJson, MutatedDocumentsNeverCrashAndSurvivorsRoundTrip) {
  Rng rng(7102);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string text = Serialize(RandomValue(rng, 4));
    const int edits = 1 + static_cast<int>(rng.NextUint64(4));
    for (int e = 0; e < edits; ++e) Mutate(text, rng);

    auto parsed = Parse(text);
    if (!parsed.ok()) continue;  // clean rejection is a fine outcome
    // Anything accepted must be a fixed point of serialise-then-parse.
    const std::string canonical = Serialize(*parsed);
    auto reparsed = Parse(canonical);
    ASSERT_TRUE(reparsed.ok())
        << "accepted input produced unparseable output\ninput:  " << text
        << "\noutput: " << canonical << "\n" << reparsed.status().ToString();
    EXPECT_EQ(*reparsed, *parsed) << text;
    EXPECT_EQ(Serialize(*reparsed), canonical);
  }
}

TEST(FuzzJson, RandomBytesNeverCrash) {
  Rng rng(1311);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string text(rng.NextUint64(64), '\0');
    for (char& c : text) c = static_cast<char>(rng.NextUint64(256));
    (void)Parse(text);  // status either way; just must not crash/hang
  }
}

TEST(FuzzJson, GrammarDirectedInvalidInputsAreRejected) {
  Rng rng(88);
  const std::vector<std::string> kInvalid = {
      "{\"a\": 1,}",          // trailing comma in object
      "[1, 2,]",              // trailing comma in array
      "{a: 1}",               // unquoted key
      "{\"a\" 1}",            // missing colon
      "+1",                   // leading plus
      ".5",                   // bare fraction
      "01",                   // leading zero
      "0x1f",                 // hex
      "1.",                   // fraction with no digits
      "1e",                   // empty exponent
      "\"\\ud800\"",          // lone high surrogate
      "\"\\udc00\"",          // lone low surrogate
      "\"\\u12g4\"",          // bad hex digit in escape
      "\"\\q\"",              // unknown escape
      "\"\x01\"",             // raw control character in string
      "\"unterminated",       // unterminated string
      "[1, 2",                // unterminated array
      "{\"a\": ",             // unterminated object
      "nul",                  // truncated literal
      "truex",                // literal with trailing junk
      "1 2",                  // trailing garbage
      "// comment\n1",        // comments
      "",                     // empty input
  };
  for (const std::string& bad : kInvalid) {
    // Standalone, and embedded at a random spot inside an otherwise valid
    // array, so rejection does not depend on the error being at offset 0.
    EXPECT_FALSE(Parse(bad).ok()) << bad;
    const std::string wrapped =
        "[1, " + bad + ", " + std::to_string(rng.NextUint64(100)) + "]";
    EXPECT_FALSE(Parse(wrapped).ok()) << wrapped;
  }
}

// Found by MutatedDocumentsNeverCrashAndSurvivorsRoundTrip (seed 7102): a
// mutation produced "-6E832761", which strtod overflows to -inf. The parser
// accepted it, but Serialize renders non-finite doubles as null, so the
// accepted value could not round-trip. Overflowing numbers are now rejected.
TEST(FuzzJson, RegressionOverflowingNumberIsRejected) {
  EXPECT_FALSE(Parse("-6E832761").ok());
  EXPECT_FALSE(Parse("1e999").ok());
  EXPECT_FALSE(Parse("[1, -1E999]").ok());
  // The largest finite doubles still parse...
  EXPECT_TRUE(Parse("1.7976931348623157e308").ok());
  EXPECT_TRUE(Parse("-1.7976931348623157e308").ok());
  // ...and underflow is not overflow: 1e-999 is a finite (zero) value.
  EXPECT_TRUE(Parse("1e-999").ok());
}

TEST(FuzzJson, NestingDepthLimit) {
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') + "1" +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_TRUE(Parse(nested(63), /*max_depth=*/64).ok());
  EXPECT_FALSE(Parse(nested(65), /*max_depth=*/64).ok());
  // A hostile ten-thousand-deep prefix must fail fast, not overflow the
  // stack — the whole point of the limit.
  EXPECT_FALSE(Parse(std::string(10000, '['), /*max_depth=*/64).ok());
  EXPECT_FALSE(Parse(std::string(10000, '{'), /*max_depth=*/64).ok());
}

}  // namespace
}  // namespace json
}  // namespace coverage

// Property tests for the consistent-hash ring (cluster/hash_ring.h):
// deterministic placement across independently-built rings, per-member
// balance at 1k vnodes, and minimal remapping when a member joins or
// leaves — the three properties session routing actually relies on.

#include "cluster/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace coverage {
namespace cluster {
namespace {

std::vector<std::string> Members(int n) {
  std::vector<std::string> members;
  for (int i = 0; i < n; ++i) {
    members.push_back("10.0.0." + std::to_string(i + 1) + ":9000");
  }
  return members;
}

std::vector<std::string> Keys(int n) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) keys.push_back("s" + std::to_string(i + 1));
  return keys;
}

TEST(HashRingTest, SingleMemberOwnsEverything) {
  HashRing ring(8);
  ring.AddMember("only:1");
  for (const std::string& key : Keys(100)) {
    EXPECT_EQ(ring.OwnerOf(key), "only:1");
  }
}

TEST(HashRingTest, DeterministicAcrossBuildsAndInsertionOrder) {
  // Two rings over the same members — one built in reverse order, as a
  // restarted coordinator with a reordered flag would — agree on every key.
  const auto members = Members(5);
  HashRing forward(256);
  for (const std::string& m : members) forward.AddMember(m);
  HashRing reverse(256);
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    reverse.AddMember(*it);
  }
  for (const std::string& key : Keys(2000)) {
    EXPECT_EQ(forward.OwnerOf(key), reverse.OwnerOf(key)) << key;
  }
}

TEST(HashRingTest, HashKeyIsStable) {
  // The position hash is part of the routing contract: a changed constant
  // would silently re-home every session at the next deploy. Pin one value.
  EXPECT_EQ(HashRing::HashKey("s1"), HashRing::HashKey("s1"));
  EXPECT_NE(HashRing::HashKey("s1"), HashRing::HashKey("s2"));
}

TEST(HashRingTest, BalanceAtThousandVnodes) {
  // With 1024 vnodes per member the per-member share of 20k keys stays
  // within 2x of fair — loose enough to be hash-stable, tight enough to
  // catch a broken mixer (FNV without the finalizer fails this).
  const auto members = Members(4);
  HashRing ring(1024);
  for (const std::string& m : members) ring.AddMember(m);
  EXPECT_EQ(ring.num_points(), 4u * 1024u);

  std::map<std::string, int> load;
  const int kKeys = 20000;
  for (const std::string& key : Keys(kKeys)) ++load[ring.OwnerOf(key)];

  const double fair = static_cast<double>(kKeys) / 4.0;
  for (const std::string& m : members) {
    EXPECT_GT(load[m], fair * 0.5) << m;
    EXPECT_LT(load[m], fair * 2.0) << m;
  }
}

TEST(HashRingTest, JoinRemapsOnlyTowardTheNewMember) {
  // Adding one member must only move keys *to* it — a key that stays on an
  // old member keeps exactly its old owner. This is the whole point of a
  // ring over hash % N (where ~ (N-1)/N of keys would move).
  const auto members = Members(4);
  HashRing before(512);
  for (const std::string& m : members) before.AddMember(m);

  HashRing after(512);
  for (const std::string& m : members) after.AddMember(m);
  after.AddMember("10.0.0.99:9000");

  const auto keys = Keys(10000);
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string& old_owner = before.OwnerOf(key);
    const std::string& new_owner = after.OwnerOf(key);
    if (new_owner != old_owner) {
      EXPECT_EQ(new_owner, "10.0.0.99:9000")
          << key << " moved between existing members";
      ++moved;
    }
  }
  // The new member's fair share is 1/5; allow [5%, 40%].
  EXPECT_GT(moved, static_cast<int>(keys.size()) / 20);
  EXPECT_LT(moved, static_cast<int>(keys.size()) * 2 / 5);
}

TEST(HashRingTest, LeaveRemapsOnlyTheLostArcs) {
  // Symmetric property: removing a member only re-homes the keys it owned.
  const auto members = Members(5);
  HashRing before(512);
  for (const std::string& m : members) before.AddMember(m);

  HashRing after(512);
  for (const std::string& m : members) after.AddMember(m);
  after.RemoveMember(members[2]);
  EXPECT_FALSE(after.HasMember(members[2]));

  for (const std::string& key : Keys(10000)) {
    const std::string& old_owner = before.OwnerOf(key);
    if (old_owner != members[2]) {
      EXPECT_EQ(after.OwnerOf(key), old_owner) << key;
    } else {
      EXPECT_NE(after.OwnerOf(key), members[2]) << key;
    }
  }
}

TEST(HashRingTest, AddIsIdempotentAndRemoveRestores) {
  const auto members = Members(3);
  HashRing ring(128);
  for (const std::string& m : members) ring.AddMember(m);
  const std::size_t points = ring.num_points();
  ring.AddMember(members[0]);  // no-op
  EXPECT_EQ(ring.num_points(), points);

  // Leave + rejoin rebuilds the identical table (no history dependence).
  std::map<std::string, std::string> owners;
  for (const std::string& key : Keys(1000)) owners[key] = ring.OwnerOf(key);
  ring.RemoveMember(members[1]);
  ring.AddMember(members[1]);
  for (const auto& [key, owner] : owners) {
    EXPECT_EQ(ring.OwnerOf(key), owner) << key;
  }
}

}  // namespace
}  // namespace cluster
}  // namespace coverage

#include "enhancement/hitting_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace coverage {
namespace {

Pattern P(const std::string& text, const Schema& schema) {
  auto p = Pattern::Parse(text, schema);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

Schema Example2Schema() { return Schema::Uniform({2, 3, 3, 2, 2}); }

std::vector<Pattern> Example2LevelTwo(const Schema& schema) {
  // P1..P6 of Example 2 (the λ=2 targets of §IV).
  return {P("XX01X", schema), P("1X20X", schema), P("XXXX1", schema),
          P("02XXX", schema), P("XX11X", schema), P("111XX", schema)};
}

TEST(GreedyHittingSet, Example2NeedsExactlyThreeCombinations) {
  // The paper's run picks 02011, 02111, 10201: first pick hits 3 patterns
  // (the maximum), and three picks suffice. Tie-breaking may differ, but
  // the gain sequence 3, 2, 1 is forced for any greedy maximiser.
  const Schema schema = Example2Schema();
  const auto patterns = Example2LevelTwo(schema);
  HittingSetStats stats;
  const HittingSetResult result =
      GreedyHittingSet(patterns, schema, nullptr, &stats);
  ASSERT_EQ(result.combinations.size(), 3u);
  EXPECT_EQ(result.gains, (std::vector<std::size_t>{3, 2, 1}));
  EXPECT_TRUE(result.unresolvable.empty());
  EXPECT_TRUE(ValidateHittingSet(patterns, result, schema).ok());
  EXPECT_EQ(stats.iterations, 3u);
  EXPECT_GT(stats.tree_nodes_visited, 0u);
}

TEST(GreedyHittingSet, Example2FirstPickHitsThreeCompatiblePatterns) {
  // The paper's run picks 02011 (hitting P1, P3, P4). Several 3-compatible
  // families exist ({P1,P3,P4}, {P3,P4,P5}, {P3,P5,P6}), so assert the
  // greedy property — the first pick hits exactly three patterns — rather
  // than one tie-break.
  const Schema schema = Example2Schema();
  const auto patterns = Example2LevelTwo(schema);
  const HittingSetResult result = GreedyHittingSet(patterns, schema);
  ASSERT_FALSE(result.combinations.empty());
  const auto& first = result.combinations[0];
  int hits = 0;
  for (const Pattern& p : patterns) hits += p.Matches(first);
  EXPECT_EQ(hits, 3);
  // And the paper's 02011 indeed hits three patterns too.
  const std::vector<Value> paper_pick = {0, 2, 0, 1, 1};
  int paper_hits = 0;
  for (const Pattern& p : patterns) paper_hits += p.Matches(paper_pick);
  EXPECT_EQ(paper_hits, 3);
}

TEST(GreedyHittingSet, GeneralizedPatternsDescribeThePick) {
  const Schema schema = Example2Schema();
  const auto patterns = Example2LevelTwo(schema);
  const HittingSetResult result = GreedyHittingSet(patterns, schema);
  ASSERT_EQ(result.generalized.size(), result.combinations.size());
  for (std::size_t k = 0; k < result.combinations.size(); ++k) {
    // The generalized pattern must match its own pick, and every pattern the
    // pick *newly* hits must dominate-or-equal the generalized pattern (so
    // any combination matching it hits the same patterns).
    EXPECT_TRUE(result.generalized[k].Matches(result.combinations[k]));
    for (const Pattern& p : patterns) {
      if (!p.Matches(result.combinations[k])) continue;
      bool hit_earlier = false;
      for (std::size_t e = 0; e < k; ++e) {
        hit_earlier = hit_earlier || p.Matches(result.combinations[e]);
      }
      if (hit_earlier) continue;
      EXPECT_TRUE(p.DominatesOrEquals(result.generalized[k]))
          << p.ToString() << " vs " << result.generalized[k].ToString();
    }
  }
}

TEST(GreedyHittingSet, SinglePatternSinglePick) {
  const Schema schema = Schema::Binary(3);
  const HittingSetResult result =
      GreedyHittingSet({P("1X0", schema)}, schema);
  ASSERT_EQ(result.combinations.size(), 1u);
  EXPECT_TRUE(P("1X0", schema).Matches(result.combinations[0]));
  EXPECT_EQ(result.gains, (std::vector<std::size_t>{1}));
}

TEST(GreedyHittingSet, EmptyInputYieldsEmptyResult) {
  const Schema schema = Schema::Binary(3);
  const HittingSetResult result = GreedyHittingSet({}, schema);
  EXPECT_TRUE(result.combinations.empty());
  EXPECT_TRUE(result.unresolvable.empty());
}

TEST(GreedyHittingSet, OneCombinationCanHitEverything) {
  // Compatible patterns collapse into a single pick.
  const Schema schema = Schema::Binary(4);
  const std::vector<Pattern> patterns = {P("1XXX", schema), P("X1XX", schema),
                                         P("XX1X", schema), P("XXX1", schema)};
  const HittingSetResult result = GreedyHittingSet(patterns, schema);
  ASSERT_EQ(result.combinations.size(), 1u);
  EXPECT_EQ(result.combinations[0], (std::vector<Value>{1, 1, 1, 1}));
  EXPECT_EQ(result.generalized[0].ToString(), "1111");
}

TEST(GreedyHittingSet, DisjointPatternsNeedOneEach) {
  const Schema schema = Schema::Uniform({3, 2});
  const std::vector<Pattern> patterns = {P("0X", schema), P("1X", schema),
                                         P("2X", schema)};
  const HittingSetResult result = GreedyHittingSet(patterns, schema);
  EXPECT_EQ(result.combinations.size(), 3u);
}

TEST(GreedyHittingSet, ValidationRulesRedirectPicks) {
  const Schema schema = Schema::Binary(3);
  ValidationOracle oracle;
  // Forbid A1=1 & A2=1: the all-ones pick is invalid.
  oracle.AddRule(*ValidationRule::Create({{0, {1}}, {1, {1}}}, schema));
  const std::vector<Pattern> patterns = {P("1XX", schema), P("X1X", schema),
                                         P("XX1", schema)};
  HittingSetStats stats;
  const HittingSetResult result =
      GreedyHittingSet(patterns, schema, &oracle, &stats);
  EXPECT_TRUE(result.unresolvable.empty());
  EXPECT_EQ(result.combinations.size(), 2u);  // e.g. 101 + X1X pick
  EXPECT_TRUE(ValidateHittingSet(patterns, result, schema, &oracle).ok());
}

TEST(GreedyHittingSet, ImpossiblePatternsReportedUnresolvable) {
  const Schema schema = Schema::Binary(2);
  ValidationOracle oracle;
  // Forbid everything with A1=1.
  oracle.AddRule(*ValidationRule::Create({{0, {1}}}, schema));
  const std::vector<Pattern> patterns = {P("1X", schema), P("0X", schema)};
  const HittingSetResult result =
      GreedyHittingSet(patterns, schema, &oracle, nullptr);
  ASSERT_EQ(result.unresolvable.size(), 1u);
  EXPECT_EQ(result.unresolvable[0].ToString(), "1X");
  ASSERT_EQ(result.combinations.size(), 1u);
  EXPECT_TRUE(ValidateHittingSet(patterns, result, schema, &oracle).ok());
}

TEST(GreedyHittingSet, AllPatternsUnresolvable) {
  const Schema schema = Schema::Binary(2);
  ValidationOracle oracle;
  oracle.AddRule(*ValidationRule::Create({{0, {0, 1}}}, schema));  // all
  const std::vector<Pattern> patterns = {P("1X", schema)};
  const HittingSetResult result =
      GreedyHittingSet(patterns, schema, &oracle, nullptr);
  EXPECT_TRUE(result.combinations.empty());
  EXPECT_EQ(result.unresolvable.size(), 1u);
}

TEST(NaiveGreedy, AgreesWithIndexedGreedyOnGains) {
  // The two implementations may tie-break differently but must produce the
  // same gain sequence and pick count (greedy is deterministic up to ties
  // in this metric).
  const Schema schema = Example2Schema();
  const auto patterns = Example2LevelTwo(schema);
  const HittingSetResult fast = GreedyHittingSet(patterns, schema);
  auto naive = NaiveGreedyHittingSet(patterns, schema);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->combinations.size(), fast.combinations.size());
  EXPECT_EQ(naive->gains, fast.gains);
  EXPECT_TRUE(ValidateHittingSet(patterns, *naive, schema).ok());
}

TEST(NaiveGreedy, RespectsEnumerationLimit) {
  const Schema schema = Schema::Binary(30);
  const auto result = NaiveGreedyHittingSet({Pattern::Root(30)}, schema,
                                            nullptr, nullptr, 1000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(NaiveGreedy, HonoursValidationOracle) {
  const Schema schema = Schema::Binary(2);
  ValidationOracle oracle;
  oracle.AddRule(*ValidationRule::Create({{0, {1}}}, schema));
  const std::vector<Pattern> patterns = {P("1X", schema), P("0X", schema)};
  auto result = NaiveGreedyHittingSet(patterns, schema, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->unresolvable.size(), 1u);
  EXPECT_TRUE(ValidateHittingSet(patterns, *result, schema, &oracle).ok());
}

TEST(GreedyHittingSet, RandomizedEquivalenceWithNaive) {
  // Property sweep: on random pattern sets over mixed-cardinality schemas,
  // the indexed greedy and the naive greedy produce identical gain
  // sequences, and both hit everything.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const Schema schema = Schema::Uniform({2, 3, 2, 2});
    std::vector<Pattern> patterns;
    const int m = 2 + static_cast<int>(rng.NextUint64(8));
    for (int j = 0; j < m; ++j) {
      std::vector<Value> cells(4, kWildcard);
      for (int a = 0; a < 4; ++a) {
        if (rng.NextBool(0.5)) {
          cells[static_cast<std::size_t>(a)] = static_cast<Value>(
              rng.NextUint64(
                  static_cast<std::uint64_t>(schema.cardinality(a))));
        }
      }
      patterns.emplace_back(std::move(cells));
    }
    const HittingSetResult fast = GreedyHittingSet(patterns, schema);
    auto naive = NaiveGreedyHittingSet(patterns, schema);
    ASSERT_TRUE(naive.ok());
    // The first gain is the global maximum and must agree; later gains can
    // differ across tie-breaks, but both solutions must be complete.
    ASSERT_FALSE(fast.gains.empty());
    EXPECT_EQ(fast.gains[0], naive->gains[0]) << "trial " << trial;
    EXPECT_TRUE(ValidateHittingSet(patterns, fast, schema).ok());
    EXPECT_TRUE(ValidateHittingSet(patterns, *naive, schema).ok());
    // Logarithmic-ratio sanity: greedy needs at most m picks.
    EXPECT_LE(fast.combinations.size(), patterns.size());
  }
}

TEST(GreedyHittingSet, GainsAreNonIncreasing) {
  // Greedy gains never increase: each pick maximises over a shrinking set.
  const Schema schema = Schema::Uniform({3, 3, 2});
  const std::vector<Pattern> patterns = {
      P("0XX", schema), P("X0X", schema), P("XX0", schema), P("1XX", schema),
      P("X1X", schema), P("21X", schema), P("20X", schema)};
  const HittingSetResult result = GreedyHittingSet(patterns, schema);
  for (std::size_t k = 1; k < result.gains.size(); ++k) {
    EXPECT_LE(result.gains[k], result.gains[k - 1]);
  }
  EXPECT_TRUE(ValidateHittingSet(patterns, result, schema).ok());
}

}  // namespace
}  // namespace coverage

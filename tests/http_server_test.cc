#include "server/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/http_client.h"

namespace coverage {
namespace http {
namespace {

/// A server echoing method, target, and body — enough to verify framing,
/// keep-alive, and concurrency without the coverage stack in the way.
class EchoServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;  // ephemeral
    options.num_threads = 4;
    options.max_body_bytes = 64 * 1024;
    options.max_head_bytes = 4 * 1024;
    server_ = std::make_unique<HttpServer>(
        options, [this](const Request& request) {
          handled_.fetch_add(1);
          Response r = Response::Text(
              200, request.method + " " + request.target + "\n" +
                       request.body);
          return r;
        });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  StatusOr<HttpClient> Client() {
    return HttpClient::Connect("127.0.0.1", server_->port());
  }

  std::unique_ptr<HttpServer> server_;
  std::atomic<int> handled_{0};
};

TEST_F(EchoServerTest, BasicRoundtrip) {
  auto client = Client();
  ASSERT_TRUE(client.ok());
  auto response = client->Post("/echo", "hello");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "POST /echo\nhello");
  const std::string* type = response->FindHeader("content-type");
  ASSERT_NE(type, nullptr);  // case-insensitive lookup
  EXPECT_EQ(*type, "text/plain");
}

TEST_F(EchoServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  auto client = Client();
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 50; ++i) {
    auto response = client->Post("/r" + std::to_string(i),
                                 std::string(i * 7, 'x'));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->body,
              "POST /r" + std::to_string(i) + "\n" + std::string(i * 7, 'x'));
  }
  // One TCP connection carried all 50 requests.
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
  EXPECT_EQ(server_->stats().requests_handled, 50u);
}

TEST_F(EchoServerTest, EmptyBodyPostAndGet) {
  auto client = Client();
  ASSERT_TRUE(client.ok());
  auto get = client->Get("/g");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->body, "GET /g\n");
  auto post = client->Post("/p", "");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->body, "POST /p\n");
}

TEST_F(EchoServerTest, ConnectionCloseIsHonoured) {
  auto client = Client();
  ASSERT_TRUE(client.ok());
  Request request;
  request.method = "GET";
  request.target = "/bye";
  request.headers.push_back({"Connection", "close"});
  auto response = client->Roundtrip(std::move(request));
  ASSERT_TRUE(response.ok());
  const std::string* connection = response->FindHeader("Connection");
  ASSERT_NE(connection, nullptr);
  EXPECT_TRUE(HeaderNameEquals(*connection, "close"));
  EXPECT_FALSE(client->connected());  // client saw the close and dropped
  // The next call reconnects transparently.
  auto again = client->Get("/again");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->body, "GET /again\n");
}

TEST_F(EchoServerTest, PipelinedRequestsAllAnswered) {
  auto client = Client();
  ASSERT_TRUE(client.ok());
  // Two complete requests in one write; responses come back in order.
  const std::string two =
      "GET /first HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
      "GET /second HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  auto first = client->RoundtripRaw(two);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->body, "GET /first\n");
  auto second = client->RoundtripRaw("");  // just read the second response
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->body, "GET /second\n");
}

TEST_F(EchoServerTest, NoPipelinedServiceAfterConnectionClose) {
  auto client = Client();
  ASSERT_TRUE(client.ok());
  // Two pipelined requests, the first demanding close: only the first may
  // be served (RFC 9112 §9.6), then the connection must drop.
  const std::string two =
      "GET /first HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
      "GET /second HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  auto first = client->RoundtripRaw(two);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->body, "GET /first\n");
  EXPECT_FALSE(client->connected());  // server closed after the first
  EXPECT_EQ(handled_.load(), 1);      // /second never reached the handler
}

TEST_F(EchoServerTest, StaleKeepAliveConnectionRetriesTransparently) {
  ServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  options.idle_timeout_ms = 150;  // server drops idle connections fast
  HttpServer server(options, [](const Request& request) {
    return Response::Text(200, request.target);
  });
  ASSERT_TRUE(server.Start().ok());
  auto client = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Get("/warm").ok());
  // Outlive the server's idle timeout: the kept-alive socket is now dead
  // on the server side, but the next call must reconnect and succeed.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto response = client->Get("/after-idle");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "/after-idle");
  server.Stop();
}

// ------------------------------------------------------- malformed HTTP --

TEST_F(EchoServerTest, MalformedRequestSuite) {
  struct Case {
    const char* name;
    std::string bytes;
    int want_status;
  };
  const Case cases[] = {
      {"bad request line", "NONSENSE\r\n\r\n", 400},
      {"too many words", "GET / HTTP/1.1 extra\r\n\r\n", 400},
      {"bad version", "GET / HTTP/9.9\r\n\r\n", 400},
      {"target without slash", "GET nope HTTP/1.1\r\n\r\n", 400},
      {"whitespace in header name", "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
       400},
      {"colonless header", "GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400},
      {"unparseable content length",
       "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 400},
      {"negative content length",
       "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400},
      {"transfer encoding rejected",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", 400},
      {"oversized declared body",
       "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n", 413},
  };
  for (const Case& c : cases) {
    auto client = Client();
    ASSERT_TRUE(client.ok());
    auto response = client->RoundtripRaw(c.bytes);
    ASSERT_TRUE(response.ok()) << c.name << ": "
                               << response.status().ToString();
    EXPECT_EQ(response->status, c.want_status) << c.name;
  }
  EXPECT_GE(server_->stats().protocol_errors, 9u);
}

TEST_F(EchoServerTest, OversizedHeadersGet431) {
  auto client = Client();
  ASSERT_TRUE(client.ok());
  const std::string huge(8 * 1024, 'h');  // > max_head_bytes, no terminator
  auto response =
      client->RoundtripRaw("GET / HTTP/1.1\r\nX-Huge: " + huge + "\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 431);
}

TEST_F(EchoServerTest, OversizedBodyBytesNeverReachTheHandler) {
  auto client = Client();
  ASSERT_TRUE(client.ok());
  const std::string body(128 * 1024, 'b');  // 2x the 64 KiB limit
  auto response = client->Post("/big", body);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 413);
  EXPECT_EQ(handled_.load(), 0);  // rejected while buffering, pre-handler
}

TEST_F(EchoServerTest, SlowClientSeesRequestTimeout) {
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.idle_timeout_ms = 200;
  HttpServer slow(options,
                  [](const Request&) { return Response::Text(200, "ok"); });
  ASSERT_TRUE(slow.Start().ok());
  auto client = HttpClient::Connect("127.0.0.1", slow.port());
  ASSERT_TRUE(client.ok());
  // Half a request, then silence: the server answers 408 and closes.
  auto response = client->RoundtripRaw("GET /half HTTP/1.1\r\nX-Wait");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 408);
  slow.Stop();
}

// ----------------------------------------------------------- lifecycle --

TEST(HttpServerLifecycle, StopIsIdempotentAndRestartIsRejected) {
  ServerOptions options;
  options.port = 0;
  HttpServer server(options,
                    [](const Request&) { return Response::Text(200, "x"); });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_FALSE(server.Start().ok());  // already started
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.running());
}

TEST(HttpServerLifecycle, GracefulStopFinishesInFlightRequest) {
  ServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  std::atomic<bool> in_handler{false};
  HttpServer server(options, [&](const Request&) {
    in_handler.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return Response::Text(200, "finished");
  });
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  std::thread client_thread([&] {
    auto client = HttpClient::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    auto response = client->Get("/slow");
    // The in-flight request gets its full response despite the Stop().
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->body, "finished");
  });
  while (!in_handler.load()) std::this_thread::yield();
  server.Stop();  // issued mid-request
  client_thread.join();
  EXPECT_EQ(server.stats().requests_handled, 1u);
}

TEST(HttpServerLifecycle, PortInUseFailsCleanly) {
  ServerOptions options;
  options.port = 0;
  HttpServer first(options,
                   [](const Request&) { return Response::Text(200, "1"); });
  ASSERT_TRUE(first.Start().ok());
  ServerOptions clash = options;
  clash.port = first.port();
  HttpServer second(clash,
                    [](const Request&) { return Response::Text(200, "2"); });
  const Status status = second.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bind"), std::string::npos);
  first.Stop();
}

// ---------------------------------------------------- concurrency canary --

/// TSan canary: many client threads hammer one server with keep-alive
/// traffic while the main thread polls stats, then a graceful stop races
/// the tail of the traffic. Run under -DCOVERAGE_ENABLE_TSAN=ON in CI.
TEST(HttpServerConcurrency, ConcurrentClientsCanary) {
  ServerOptions options;
  options.port = 0;
  options.num_threads = 4;
  std::atomic<std::uint64_t> sum{0};
  HttpServer server(options, [&](const Request& request) {
    sum.fetch_add(request.body.size(), std::memory_order_relaxed);
    return Response::Text(200, request.body);
  });
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string body(static_cast<std::size_t>((c + 1) * (i % 7)),
                               'p');
        auto response = client->Post("/hit", body);
        if (!response.ok() || response->status != 200 ||
            response->body != body) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().requests_handled,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  server.Stop();
}

}  // namespace
}  // namespace http
}  // namespace coverage

// End-to-end scenarios chaining the whole public API: generate or load data,
// aggregate, index, identify MUPs, plan enhancement, apply it, and verify the
// dataset's coverage actually improved — the full §V workflow.

#include <gtest/gtest.h>

#include <sstream>

#include "coverage_lib.h"

namespace coverage {
namespace {

TEST(Integration, CompasAuditEndToEnd) {
  // §V-B1 + §V-B3 as one pipeline on the synthetic COMPAS.
  const auto compas = datagen::MakeCompas(4000, 21);
  const AggregatedData agg(compas.data);
  const BitmapCoverage oracle(agg);
  const std::uint64_t tau = 10;

  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});
  ASSERT_FALSE(mups.empty());
  ScanCoverage scan(compas.data);
  ASSERT_TRUE(ValidateMupSet(mups, scan, tau).ok());

  ValidationOracle validator;
  const Schema& schema = compas.data.schema();
  validator.AddRule(*ValidationRule::Parse("marital in {unknown}", schema));

  EnhancementOptions options;
  options.tau = tau;
  options.lambda = 2;
  options.oracle = &validator;
  auto plan = PlanCoverageEnhancement(oracle, mups, options);
  ASSERT_TRUE(plan.ok());

  const Dataset enlarged = ApplyPlan(compas.data, *plan);
  const AggregatedData agg2(enlarged);
  const BitmapCoverage oracle2(agg2);
  const auto mups2 = FindMupsDeepDiver(oracle2, MupSearchOptions{.tau = tau});

  // Every remaining level-<=2 uncovered pattern must be one the validator
  // made unreachable.
  auto remaining = UncoveredPatternsAtLevel(mups2, schema, 2, 1 << 20);
  ASSERT_TRUE(remaining.ok());
  for (const Pattern& p : *remaining) {
    bool declared = false;
    for (const Pattern& u : plan->unresolvable) {
      declared = declared || u == p;
    }
    EXPECT_TRUE(declared) << p.ToString() << " still uncovered";
  }
}

TEST(Integration, CsvRoundTripThroughPipeline) {
  // Export a dataset to CSV, re-import, and verify identical MUPs.
  const Dataset original = datagen::MakeBlueNile(5000, 3);
  std::stringstream ss;
  ASSERT_TRUE(original.WriteCsv(ss).ok());
  auto reloaded = Dataset::ReadCsv(ss, original.schema());
  ASSERT_TRUE(reloaded.ok());

  const AggregatedData agg1(original), agg2(*reloaded);
  const BitmapCoverage o1(agg1), o2(agg2);
  const MupSearchOptions options{.tau = 25};
  EXPECT_EQ(FindMupsDeepDiver(o1, options), FindMupsDeepDiver(o2, options));
}

TEST(Integration, EnhancementMonotonicallyRaisesCoveredLevel) {
  // Applying plans for growing λ never lowers the maximum covered level and
  // reaches each requested target.
  const Dataset data = datagen::MakeAirbnb(400, 6, 31);
  const std::uint64_t tau = 8;
  Dataset current = data;
  int previous_level = -1;
  for (int lambda = 1; lambda <= 4; ++lambda) {
    const AggregatedData agg(current);
    const BitmapCoverage oracle(agg);
    const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});
    EnhancementOptions options;
    options.tau = tau;
    options.lambda = lambda;
    auto plan = PlanCoverageEnhancement(oracle, mups, options);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    current = ApplyPlan(current, *plan);

    const AggregatedData agg2(current);
    const BitmapCoverage oracle2(agg2);
    const auto mups2 =
        FindMupsDeepDiver(oracle2, MupSearchOptions{.tau = tau});
    const int level = MaximumCoveredLevel(mups2, current.num_attributes());
    EXPECT_GE(level, lambda);
    EXPECT_GE(level, previous_level);
    previous_level = level;
  }
}

TEST(Integration, Figure11StyleClassifierExperiment) {
  // The §V-B2 effect in miniature: a decision tree trained with no
  // Hispanic-female rows performs badly on held-out HF rows; adding HF
  // training rows improves subgroup accuracy while overall accuracy stays
  // roughly flat.
  const auto compas = datagen::MakeCompas(6889, 42);
  const Dataset& data = compas.data;

  std::vector<std::size_t> hf_rows, other_rows;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    const bool hf = data.at(r, datagen::kCompasSex) == 1 &&
                    data.at(r, datagen::kCompasRace) == 2;
    (hf ? hf_rows : other_rows).push_back(r);
  }
  ASSERT_GE(hf_rows.size(), 100u);

  Rng rng(17);
  rng.Shuffle(hf_rows);
  const std::vector<std::size_t> hf_test(hf_rows.begin(),
                                         hf_rows.begin() + 20);
  const std::vector<std::size_t> hf_pool(hf_rows.begin() + 20, hf_rows.end());

  auto subgroup_accuracy = [&](std::size_t hf_in_train) {
    std::vector<std::size_t> train = other_rows;
    train.insert(train.end(), hf_pool.begin(),
                 hf_pool.begin() + static_cast<std::ptrdiff_t>(hf_in_train));
    DecisionTree tree;
    DecisionTree::Options topt;
    topt.max_depth = 8;
    topt.min_samples_leaf = 5;
    tree.Fit(data, compas.labels, train, topt);
    std::vector<int> actual, predicted;
    for (std::size_t r : hf_test) {
      actual.push_back(compas.labels[r]);
      predicted.push_back(tree.Predict(data.row(r)));
    }
    return EvaluateBinary(actual, predicted).accuracy;
  };

  const double acc0 = subgroup_accuracy(0);
  const double acc80 = subgroup_accuracy(80);
  EXPECT_GT(acc80, acc0 + 0.1)
      << "coverage remediation should lift subgroup accuracy (0 HF: " << acc0
      << ", 80 HF: " << acc80 << ")";
}

TEST(Integration, StatsRoughlyConsistentAcrossAlgorithms) {
  const Dataset data = datagen::MakeAirbnb(2000, 10, 55);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const MupSearchOptions options{.tau = 40};
  MupSearchStats breaker, combiner, diver;
  FindMupsPatternBreaker(oracle, options, &breaker);
  auto c = FindMupsPatternCombiner(oracle, options, &combiner);
  ASSERT_TRUE(c.ok());
  FindMupsDeepDiver(oracle, options, &diver);
  EXPECT_EQ(breaker.num_mups, combiner.num_mups);
  EXPECT_EQ(breaker.num_mups, diver.num_mups);
  EXPECT_GT(breaker.coverage_queries, 0u);
  EXPECT_GT(diver.coverage_queries, 0u);
}

TEST(Integration, NutritionalLabelPipeline) {
  const Dataset data = datagen::MakeAirbnb(800, 8, 77);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const std::uint64_t tau = 25;
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});
  const CoverageReport report =
      BuildCoverageReport(data.schema(), mups, data.num_rows(), tau);
  const std::string label = RenderNutritionalLabel(report);
  EXPECT_NE(label.find("MUPs"), std::string::npos);
  EXPECT_EQ(report.num_mups, mups.size());
  EXPECT_EQ(report.maximum_covered_level,
            MaximumCoveredLevel(mups, data.num_attributes()));
}

TEST(Integration, LevelLimitedScalesToWideData) {
  // Fig. 16's premise: with max_level = 2, DEEPDIVER handles dozens of
  // attributes quickly (full search would be hopeless at d=30).
  const Dataset data = datagen::MakeAirbnb(5000, 30, 91);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options{.tau = 50};
  options.max_level = 2;
  const auto mups = FindMupsDeepDiver(oracle, options);
  for (const Pattern& p : mups) EXPECT_LE(p.level(), 2);
  ScanCoverage scan(data);
  EXPECT_TRUE(ValidateMupSet(mups, scan, options.tau).ok());
}

}  // namespace
}  // namespace coverage

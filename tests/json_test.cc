#include "server/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/rng.h"

namespace coverage {
namespace json {
namespace {

StatusOr<JsonValue> ParseOk(const std::string& text) {
  auto parsed = Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  return parsed;
}

// ---------------------------------------------------------------- writer --

TEST(JsonWriter, Scalars) {
  EXPECT_EQ(Serialize(JsonValue(nullptr)), "null");
  EXPECT_EQ(Serialize(JsonValue(true)), "true");
  EXPECT_EQ(Serialize(JsonValue(false)), "false");
  EXPECT_EQ(Serialize(JsonValue(std::int64_t{-42})), "-42");
  EXPECT_EQ(Serialize(JsonValue(1.5)), "1.5");
  EXPECT_EQ(Serialize(JsonValue("hi")), "\"hi\"");
}

TEST(JsonWriter, Int64Exact) {
  const std::int64_t big = 9007199254740993;  // 2^53 + 1: breaks doubles
  EXPECT_EQ(Serialize(JsonValue(big)), "9007199254740993");
  const std::uint64_t max_int64 =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(Serialize(JsonValue(max_int64)), "9223372036854775807");
}

TEST(JsonWriter, ObjectsAreKeySortedAndCanonical) {
  JsonValue::Object o;
  o["b"] = 2;
  o["a"] = 1;
  EXPECT_EQ(Serialize(JsonValue(o)), "{\"a\": 1, \"b\": 2}");
  // std::map ordering makes equal values serialise identically no matter
  // the insertion order — the property the byte-equivalence tests rely on.
  JsonValue::Object reversed;
  reversed["a"] = 1;
  reversed["b"] = 2;
  EXPECT_EQ(Serialize(JsonValue(o)), Serialize(JsonValue(reversed)));
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(EscapeString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(EscapeString("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(EscapeString("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(EscapeString(std::string("a\x01z")), "\"a\\u0001z\"");
  EXPECT_EQ(EscapeString("caf\xc3\xa9"), "\"caf\xc3\xa9\"");  // UTF-8 verbatim
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Serialize(JsonValue(std::nan(""))), "null");
  EXPECT_EQ(Serialize(JsonValue(std::numeric_limits<double>::infinity())),
            "null");
}

TEST(JsonWriter, PrettyPrintIndents) {
  JsonValue::Object o;
  o["xs"] = JsonValue::Array{1, 2};
  EXPECT_EQ(SerializePretty(JsonValue(o)),
            "{\n  \"xs\": [\n    1,\n    2\n  ]\n}\n");
}

// ---------------------------------------------------------------- parser --

TEST(JsonParser, ParsesScalars) {
  EXPECT_TRUE(ParseOk("null")->is_null());
  EXPECT_EQ(ParseOk("true")->AsBool(), true);
  EXPECT_EQ(ParseOk("-17")->AsInt(), -17);
  EXPECT_TRUE(ParseOk("17.5")->is_double());
  EXPECT_DOUBLE_EQ(ParseOk("17.5")->AsDouble(), 17.5);
  EXPECT_TRUE(ParseOk("1e3")->is_double());
  EXPECT_EQ(ParseOk("\"x\"")->AsString(), "x");
}

TEST(JsonParser, IntegerVsDoubleClassification) {
  EXPECT_TRUE(ParseOk("9007199254740993")->is_int());
  EXPECT_EQ(ParseOk("9007199254740993")->AsInt(), 9007199254740993);
  // Beyond int64 range integers degrade to double instead of failing.
  EXPECT_TRUE(ParseOk("99999999999999999999")->is_double());
}

TEST(JsonParser, NestedStructures) {
  auto v = ParseOk(R"({"a": [1, {"b": null}], "c": "d"})");
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray()[0].AsInt(), 1);
  EXPECT_TRUE(a->AsArray()[1].Find("b")->is_null());
}

TEST(JsonParser, DuplicateKeysLastWins) {
  EXPECT_EQ(ParseOk(R"({"k": 1, "k": 2})")->Find("k")->AsInt(), 2);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "  ",          // whitespace only
      "{",           // truncated object
      "[1, 2",       // truncated array
      "\"abc",       // unterminated string
      "{\"a\" 1}",   // missing colon
      "{a: 1}",      // unquoted key
      "[1,]",        // trailing comma (array)
      "{\"a\": 1,}", // trailing comma (object)
      "1 2",         // trailing garbage
      "nul",         // truncated literal
      "truex",       // garbage after literal
      "+1",          // leading plus
      "01",          // leading zero
      ".5",          // bare fraction
      "1.",          // digits must follow the point
      "1e",          // digits must follow the exponent
      "0x10",        // hex
      "'x'",         // single quotes
      "// c",        // comments
      "{\"a\": }",   // missing value
      "[",           // lone bracket
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParser, ErrorsCarryByteOffsets) {
  const auto status = Parse("{\"a\": 1, \"b\": tru}").status();
  EXPECT_NE(status.message().find("byte 14"), std::string::npos)
      << status.message();
}

TEST(JsonParser, RejectsRawControlCharactersInStrings) {
  EXPECT_FALSE(Parse("\"a\nb\"").ok());
  EXPECT_FALSE(Parse(std::string("\"a\x01z\"")).ok());
}

TEST(JsonParser, Utf8EscapeDecoding) {
  EXPECT_EQ(ParseOk(R"("A")")->AsString(), "A");
  EXPECT_EQ(ParseOk(R"("é")")->AsString(), "\xc3\xa9");        // é
  EXPECT_EQ(ParseOk(R"("€")")->AsString(), "\xe2\x82\xac");    // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(ParseOk(R"("😀")")->AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParser, RejectsBadUnicodeEscapes) {
  EXPECT_FALSE(Parse(R"("\u12")").ok());         // truncated hex
  EXPECT_FALSE(Parse(R"("\uZZZZ")").ok());       // not hex
  EXPECT_FALSE(Parse(R"("\ud83d")").ok());       // lone high surrogate
  EXPECT_FALSE(Parse(R"("\ude00")").ok());       // lone low surrogate
  EXPECT_FALSE(Parse(R"("\ud83dA")").ok()); // high + non-low
  EXPECT_FALSE(Parse(R"("\q")").ok());           // unknown escape
}

TEST(JsonParser, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 70; ++i) deep += '[';
  for (int i = 0; i < 70; ++i) deep += ']';
  EXPECT_FALSE(Parse(deep).ok());
  EXPECT_TRUE(Parse(deep, /*max_depth=*/128).ok());
  std::string shallow = "[[[[42]]]]";
  EXPECT_TRUE(Parse(shallow).ok());
}

TEST(JsonParser, MemberAccessors) {
  auto v = ParseOk(R"({"n": 3, "neg": -1, "s": "x", "b": true})");
  EXPECT_EQ(*v->GetInt("n"), 3);
  EXPECT_EQ(*v->GetUint("n"), 3u);
  EXPECT_FALSE(v->GetUint("neg").ok());
  EXPECT_EQ(*v->GetString("s"), "x");
  EXPECT_EQ(*v->GetBool("b"), true);
  EXPECT_EQ(v->GetInt("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v->GetInt("s").status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- round trips --

/// Random JSON value with controlled depth, exercising every node type and
/// nasty strings (escapes, UTF-8, control characters).
JsonValue RandomValue(Rng& rng, int depth) {
  const int kind = static_cast<int>(
      rng.NextUint64(depth > 0 ? 7 : 5));  // leaves only at depth 0
  switch (kind) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.NextBool());
    case 2: return JsonValue(rng.NextInt(-1'000'000'000'000, 1'000'000'000'000));
    case 3: {
      // Round-trip-exact doubles: the writer guarantees re-parsing equality.
      return JsonValue(rng.NextDouble() * 1e6 - 5e5);
    }
    case 4: {
      std::string s;
      const std::uint64_t len = rng.NextUint64(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        switch (rng.NextUint64(6)) {
          case 0: s += static_cast<char>('a' + rng.NextUint64(26)); break;
          case 1: s += '"'; break;
          case 2: s += '\\'; break;
          case 3: s += '\n'; break;
          case 4: s += static_cast<char>(rng.NextUint64(0x20)); break;
          default: s += "\xc3\xa9"; break;  // é
        }
      }
      return JsonValue(std::move(s));
    }
    case 5: {
      JsonValue::Array a;
      const std::uint64_t n = rng.NextUint64(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        a.push_back(RandomValue(rng, depth - 1));
      }
      return JsonValue(std::move(a));
    }
    default: {
      JsonValue::Object o;
      const std::uint64_t n = rng.NextUint64(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        o["k" + std::to_string(rng.NextUint64(100))] =
            RandomValue(rng, depth - 1);
      }
      return JsonValue(std::move(o));
    }
  }
}

TEST(JsonRoundTrip, RandomValuesSurviveWriteParseWrite) {
  Rng rng(20260726);
  for (int trial = 0; trial < 500; ++trial) {
    const JsonValue original = RandomValue(rng, 4);
    const std::string text = Serialize(original);
    auto reparsed = Parse(text);
    ASSERT_TRUE(reparsed.ok())
        << text << " -> " << reparsed.status().ToString();
    EXPECT_EQ(*reparsed, original) << text;
    // Serialisation is canonical: write(parse(write(v))) == write(v).
    EXPECT_EQ(Serialize(*reparsed), text);
    // Pretty output parses back to the same value too.
    auto pretty = Parse(SerializePretty(original));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(*pretty, original);
  }
}

TEST(JsonRoundTrip, TruncationsOfValidDocumentsAreRejected) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    JsonValue v = RandomValue(rng, 3);
    // Guarantee a structural document (truncating "7" at every prefix can
    // still be valid, e.g. "" -> invalid but "7" itself never shrinks).
    JsonValue::Object wrapper;
    wrapper["v"] = std::move(v);
    const std::string text = Serialize(JsonValue(std::move(wrapper)));
    for (std::size_t cut = 0; cut + 1 < text.size(); ++cut) {
      EXPECT_FALSE(Parse(text.substr(0, cut)).ok())
          << "accepted prefix of " << text << " at " << cut;
    }
  }
}

}  // namespace
}  // namespace json
}  // namespace coverage

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/model_metrics.h"
#include "ml/split.h"

namespace coverage {
namespace {

// --------------------------------------------------------------- metrics --

TEST(Metrics, PerfectPrediction) {
  const std::vector<int> y = {1, 0, 1, 1, 0};
  const auto m = EvaluateBinary(y, y);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.num_samples, 5u);
}

TEST(Metrics, AllWrong) {
  const std::vector<int> a = {1, 1, 0, 0};
  const std::vector<int> p = {0, 0, 1, 1};
  const auto m = EvaluateBinary(a, p);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(Metrics, KnownConfusionMatrix) {
  // tp=2 fp=1 fn=1 tn=1 -> precision 2/3, recall 2/3, f1 2/3, acc 3/5.
  const std::vector<int> a = {1, 1, 1, 0, 0};
  const std::vector<int> p = {1, 1, 0, 1, 0};
  const auto m = EvaluateBinary(a, p);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.6);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f1, 2.0 / 3.0, 1e-12);
}

TEST(Metrics, DegenerateCasesDefined) {
  EXPECT_EQ(EvaluateBinary({}, {}).num_samples, 0u);
  // No positives anywhere: precision/recall/f1 are 0 by convention.
  const auto m = EvaluateBinary({0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

// ----------------------------------------------------------------- split --

TEST(Split, TrainTestPartition) {
  Rng rng(4);
  const auto split = MakeTrainTestSplit(100, 0.2, rng);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
  std::vector<bool> seen(100, false);
  for (std::size_t i : split.train) seen[i] = true;
  for (std::size_t i : split.test) {
    EXPECT_FALSE(seen[i]);  // disjoint
    seen[i] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);  // exhaustive
}

TEST(Split, DeterministicUnderSeed) {
  Rng a(7), b(7);
  const auto s1 = MakeTrainTestSplit(50, 0.3, a);
  const auto s2 = MakeTrainTestSplit(50, 0.3, b);
  EXPECT_EQ(s1.test, s2.test);
  EXPECT_EQ(s1.train, s2.train);
}

TEST(Split, KFoldsPartitionEverything) {
  Rng rng(11);
  const auto folds = MakeKFolds(100, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> test_count(100, 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.test.size(), 20u);
    EXPECT_EQ(fold.train.size(), 80u);
    for (std::size_t i : fold.test) ++test_count[i];
  }
  for (int c : test_count) EXPECT_EQ(c, 1);  // each row tested exactly once
}

// --------------------------------------------------------- decision tree --

Dataset XorDataset(std::vector<int>* labels, int copies) {
  Dataset data(Schema::Binary(2));
  for (int c = 0; c < copies; ++c) {
    for (Value a = 0; a < 2; ++a) {
      for (Value b = 0; b < 2; ++b) {
        data.AppendRow(std::vector<Value>{a, b});
        labels->push_back(a != b ? 1 : 0);
      }
    }
  }
  return data;
}

TEST(DecisionTree, LearnsXor) {
  // XOR needs depth 2; a Gini tree with equality splits nails it exactly.
  std::vector<int> labels;
  const Dataset data = XorDataset(&labels, 10);
  DecisionTree tree;
  tree.Fit(data, labels, DecisionTree::Options{});
  EXPECT_EQ(tree.Predict(std::vector<Value>{0, 0}), 0);
  EXPECT_EQ(tree.Predict(std::vector<Value>{0, 1}), 1);
  EXPECT_EQ(tree.Predict(std::vector<Value>{1, 0}), 1);
  EXPECT_EQ(tree.Predict(std::vector<Value>{1, 1}), 0);
}

TEST(DecisionTree, PureLabelsYieldLeaf) {
  std::vector<int> labels(8, 1);
  Dataset data(Schema::Binary(3));
  for (int i = 0; i < 8; ++i) {
    data.AppendRow(std::vector<Value>{static_cast<Value>(i & 1),
                                      static_cast<Value>((i >> 1) & 1),
                                      static_cast<Value>((i >> 2) & 1)});
  }
  DecisionTree tree;
  tree.Fit(data, labels, DecisionTree::Options{});
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.Predict(std::vector<Value>{1, 1, 1}), 1);
}

TEST(DecisionTree, MaxDepthLimitsTree) {
  std::vector<int> labels;
  const Dataset data = XorDataset(&labels, 5);
  DecisionTree stump;
  DecisionTree::Options options;
  options.max_depth = 0;
  stump.Fit(data, labels, options);
  EXPECT_EQ(stump.num_nodes(), 1u);  // no split allowed
}

TEST(DecisionTree, MulticategoricalSplit) {
  // Label depends on a ternary attribute: value 2 -> positive.
  Dataset data(Schema::Uniform({3, 2}));
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<Value>(rng.NextUint64(3));
    const auto b = static_cast<Value>(rng.NextUint64(2));
    data.AppendRow(std::vector<Value>{a, b});
    labels.push_back(a == 2 ? 1 : 0);
  }
  DecisionTree tree;
  tree.Fit(data, labels, DecisionTree::Options{});
  EXPECT_EQ(tree.Predict(std::vector<Value>{2, 0}), 1);
  EXPECT_EQ(tree.Predict(std::vector<Value>{2, 1}), 1);
  EXPECT_EQ(tree.Predict(std::vector<Value>{0, 0}), 0);
  EXPECT_EQ(tree.Predict(std::vector<Value>{1, 1}), 0);
}

TEST(DecisionTree, FitOnRowSubset) {
  // Train only on rows where the label is a function of A1; rows outside
  // the subset would otherwise poison the tree.
  Dataset data(Schema::Binary(1));
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    data.AppendRow(std::vector<Value>{static_cast<Value>(i % 2)});
    labels.push_back(i < 6 ? (i % 2) : 1 - (i % 2));  // last 4 inverted
  }
  std::vector<std::size_t> subset = {0, 1, 2, 3, 4, 5};
  DecisionTree tree;
  tree.Fit(data, labels, subset, DecisionTree::Options{});
  EXPECT_EQ(tree.Predict(std::vector<Value>{0}), 0);
  EXPECT_EQ(tree.Predict(std::vector<Value>{1}), 1);
}

TEST(DecisionTree, PredictAllMatchesPredict) {
  std::vector<int> labels;
  const Dataset data = XorDataset(&labels, 3);
  DecisionTree tree;
  tree.Fit(data, labels, DecisionTree::Options{});
  std::vector<std::size_t> rows = {0, 1, 2, 3};
  const auto preds = tree.PredictAll(data, rows);
  ASSERT_EQ(preds.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(preds[i], tree.Predict(data.row(rows[i])));
  }
}

TEST(DecisionTree, GeneralisesOnNoisyMajority) {
  // 90% of the signal follows A1; the tree must recover it despite noise.
  Rng rng(13);
  Dataset data(Schema::Uniform({2, 3}));
  std::vector<int> labels;
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<Value>(rng.NextUint64(2));
    const auto b = static_cast<Value>(rng.NextUint64(3));
    data.AppendRow(std::vector<Value>{a, b});
    const int clean = a;
    labels.push_back(rng.NextBool(0.9) ? clean : 1 - clean);
  }
  DecisionTree tree;
  DecisionTree::Options options;
  options.max_depth = 3;
  options.min_samples_leaf = 20;
  tree.Fit(data, labels, options);
  EXPECT_EQ(tree.Predict(std::vector<Value>{1, 0}), 1);
  EXPECT_EQ(tree.Predict(std::vector<Value>{0, 2}), 0);
}

TEST(DecisionTree, MinSamplesLeafPreventsSlivers) {
  std::vector<int> labels;
  const Dataset data = XorDataset(&labels, 1);  // 4 rows
  DecisionTree tree;
  DecisionTree::Options options;
  options.min_samples_leaf = 3;  // no split can satisfy 3+3 on 4 rows
  tree.Fit(data, labels, options);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

}  // namespace
}  // namespace coverage

#include "mups/mup_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace coverage {
namespace {

Pattern P(const std::string& text, const Schema& schema) {
  auto p = Pattern::Parse(text, schema);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(MupDominanceIndex, EmptyIndexDominatesNothing) {
  const Schema schema = Schema::Binary(3);
  MupDominanceIndex index(schema);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.IsDominated(P("111", schema)));
  EXPECT_FALSE(index.DominatesSome(Pattern::Root(3)));
  EXPECT_FALSE(index.Contains(Pattern::Root(3)));
}

TEST(MupDominanceIndex, MembershipIsExact) {
  const Schema schema = Schema::Binary(3);
  MupDominanceIndex index(schema);
  index.Add(P("1XX", schema));
  EXPECT_TRUE(index.Contains(P("1XX", schema)));
  EXPECT_FALSE(index.Contains(P("0XX", schema)));
  EXPECT_EQ(index.size(), 1u);
}

TEST(MupDominanceIndex, DescendantIsDominated) {
  const Schema schema = Schema::Binary(4);
  MupDominanceIndex index(schema);
  index.Add(P("1XXX", schema));
  EXPECT_TRUE(index.IsDominated(P("10X1", schema)));
  EXPECT_TRUE(index.IsDominated(P("1111", schema)));
  EXPECT_TRUE(index.IsDominated(P("1XX0", schema)));
}

TEST(MupDominanceIndex, NonDescendantNotDominated) {
  const Schema schema = Schema::Binary(4);
  MupDominanceIndex index(schema);
  index.Add(P("1XXX", schema));
  EXPECT_FALSE(index.IsDominated(P("0XXX", schema)));
  EXPECT_FALSE(index.IsDominated(P("X1XX", schema)));  // incomparable
  EXPECT_FALSE(index.IsDominated(Pattern::Root(4)));   // ancestor
  EXPECT_FALSE(index.IsDominated(P("1XXX", schema)));  // equality is strict
}

TEST(MupDominanceIndex, AncestorDominatesSome) {
  const Schema schema = Schema::Binary(4);
  MupDominanceIndex index(schema);
  index.Add(P("10X1", schema));
  EXPECT_TRUE(index.DominatesSome(Pattern::Root(4)));
  EXPECT_TRUE(index.DominatesSome(P("1XXX", schema)));
  EXPECT_TRUE(index.DominatesSome(P("10XX", schema)));
  EXPECT_FALSE(index.DominatesSome(P("11XX", schema)));
  EXPECT_FALSE(index.DominatesSome(P("10X1", schema)));  // strict
  EXPECT_FALSE(index.DominatesSome(P("1011", schema)));  // descendant
}

TEST(MupDominanceIndex, MultipleMupsAnyMatchCounts) {
  const Schema schema = Schema::Binary(4);
  MupDominanceIndex index(schema);
  index.Add(P("1XXX", schema));
  index.Add(P("X0X0", schema));
  EXPECT_TRUE(index.IsDominated(P("1010", schema)));  // dominated by both
  EXPECT_TRUE(index.IsDominated(P("X0X0", schema).WithCell(0, 0)));  // 00X0
  EXPECT_TRUE(index.DominatesSome(P("XXX0", schema)));  // ancestor of X0X0
  EXPECT_FALSE(index.IsDominated(P("01X1", schema)));
}

TEST(MupDominanceIndex, MixedCardinalities) {
  const Schema schema = Schema::Uniform({3, 4, 2});
  MupDominanceIndex index(schema);
  index.Add(P("2XX", schema));
  index.Add(P("X31", schema));
  EXPECT_TRUE(index.IsDominated(P("23X", schema)));
  EXPECT_TRUE(index.IsDominated(P("231", schema)));
  EXPECT_FALSE(index.IsDominated(P("13X", schema)));
  EXPECT_TRUE(index.DominatesSome(P("X3X", schema)));
  EXPECT_TRUE(index.DominatesSome(P("XX1", schema)));
  EXPECT_FALSE(index.DominatesSome(P("X2X", schema)));
}

TEST(MupDominanceIndex, AgreesWithDirectDominanceChecks) {
  // Property: index answers equal brute-force checks over all patterns of a
  // small graph for an arbitrary antichain.
  const Schema schema = Schema::Uniform({2, 3, 2});
  MupDominanceIndex index(schema);
  const std::vector<Pattern> mups = {P("1XX", schema), P("X2X", schema),
                                     P("X01", schema)};
  for (const Pattern& m : mups) index.Add(m);

  for (Value a = -1; a < 2; ++a) {
    for (Value b = -1; b < 3; ++b) {
      for (Value c = -1; c < 2; ++c) {
        const Pattern p({a, b, c});
        bool dominated = false, dominates = false;
        for (const Pattern& m : mups) {
          dominated = dominated || m.Dominates(p);
          dominates = dominates || p.Dominates(m);
        }
        EXPECT_EQ(index.IsDominated(p), dominated) << p.ToString();
        EXPECT_EQ(index.DominatesSome(p), dominates) << p.ToString();
      }
    }
  }
}

TEST(MupDominanceIndex, GrowsPastWordBoundary) {
  // More than 64 MUPs exercises multi-word bit vectors.
  const Schema schema = Schema::Uniform({100, 2});
  MupDominanceIndex index(schema);
  for (Value v = 0; v < 100; ++v) {
    index.Add(Pattern({v, kWildcard}));
  }
  EXPECT_EQ(index.size(), 100u);
  for (Value v = 0; v < 100; ++v) {
    EXPECT_TRUE(index.IsDominated(Pattern({v, Value{1}})));
  }
  EXPECT_TRUE(index.DominatesSome(Pattern::Root(2)));
  EXPECT_FALSE(index.IsDominated(Pattern({kWildcard, Value{1}})));
}

TEST(MupDominanceIndex, AddBatchMatchesSequentialAdds) {
  const Schema schema = Schema::Uniform({5, 3, 4});
  // An antichain mixing levels and wildcard positions.
  const std::vector<Pattern> batch = {
      Pattern({Value{0}, kWildcard, Value{1}}),
      Pattern({Value{1}, Value{2}, kWildcard}),
      Pattern({kWildcard, Value{0}, Value{3}}),
      Pattern({Value{4}, kWildcard, kWildcard}),
  };
  MupDominanceIndex batched(schema);
  batched.AddBatch(batch);
  MupDominanceIndex sequential(schema);
  for (const Pattern& m : batch) sequential.Add(m);

  ASSERT_EQ(batched.size(), sequential.size());
  EXPECT_EQ(batched.mups(), sequential.mups());
  // Every probe answer must agree over the full level-<=2 pattern space.
  for (Value a = -1; a < 5; ++a) {
    for (Value b = -1; b < 3; ++b) {
      for (Value c = -1; c < 4; ++c) {
        const Pattern p({a, b, c});
        EXPECT_EQ(batched.Contains(p), sequential.Contains(p));
        EXPECT_EQ(batched.IsDominated(p), sequential.IsDominated(p))
            << p.ToString();
        EXPECT_EQ(batched.DominatesSome(p), sequential.DominatesSome(p))
            << p.ToString();
      }
    }
  }
}

TEST(MupDominanceIndex, AddBatchAfterAddsCrossesWordBoundary) {
  // Seed 60 single Adds so the batch append starts mid-word, then grow past
  // the 64-bit boundary in one AddBatch.
  const Schema schema = Schema::Uniform({100, 2});
  MupDominanceIndex index(schema);
  std::vector<Pattern> batch;
  for (Value v = 0; v < 100; ++v) {
    if (v < 60) {
      index.Add(Pattern({v, kWildcard}));
    } else {
      batch.push_back(Pattern({v, kWildcard}));
    }
  }
  index.AddBatch(batch);
  EXPECT_EQ(index.size(), 100u);
  for (Value v = 0; v < 100; ++v) {
    EXPECT_TRUE(index.Contains(Pattern({v, kWildcard})));
    EXPECT_TRUE(index.IsDominated(Pattern({v, Value{1}}))) << v;
  }
  EXPECT_TRUE(index.DominatesSome(Pattern::Root(2)));
  EXPECT_FALSE(index.IsDominated(Pattern({kWildcard, Value{1}})));
}

TEST(MupDominanceIndex, AddBatchEmptyIsNoOp) {
  const Schema schema = Schema::Binary(3);
  MupDominanceIndex index(schema);
  index.AddBatch({});
  EXPECT_EQ(index.size(), 0u);
  index.Add(Pattern({Value{1}, kWildcard, kWildcard}));
  index.AddBatch({});
  EXPECT_EQ(index.size(), 1u);
}

TEST(MupDominanceIndex, RemoveUnregistersAndCompacts) {
  const Schema schema = Schema::Uniform({2, 3, 2});
  MupDominanceIndex index(schema);
  index.Add(P("1XX", schema));
  index.Add(P("X2X", schema));
  index.Add(P("X01", schema));

  // Removing an unknown pattern is a rejected no-op.
  EXPECT_FALSE(index.Remove(P("0XX", schema)));
  EXPECT_EQ(index.size(), 3u);

  // Removing the middle entry swaps the last into its position; probes must
  // behave as if only the two survivors were ever added.
  EXPECT_TRUE(index.Remove(P("X2X", schema)));
  EXPECT_EQ(index.size(), 2u);
  EXPECT_FALSE(index.Contains(P("X2X", schema)));
  EXPECT_FALSE(index.Remove(P("X2X", schema)));
  EXPECT_FALSE(index.IsDominated(P("X21", schema)));  // only X2X dominated it
  EXPECT_TRUE(index.IsDominated(P("101", schema)));
  EXPECT_TRUE(index.DominatesSome(P("XX1", schema)));  // above X01
  EXPECT_FALSE(index.DominatesSome(P("X2X", schema)));

  // Removing down to empty and re-adding keeps the bit layout consistent.
  EXPECT_TRUE(index.Remove(P("1XX", schema)));
  EXPECT_TRUE(index.Remove(P("X01", schema)));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.IsDominated(P("101", schema)));
  index.Add(P("0XX", schema));
  EXPECT_TRUE(index.IsDominated(P("01X", schema)));
  EXPECT_FALSE(index.IsDominated(P("11X", schema)));
}

TEST(MupDominanceIndex, RandomAddRemoveAgreesWithDirectChecks) {
  // Property: after an arbitrary interleaving of Adds and Removes (crossing
  // the 64-bit word boundary), every probe equals the brute-force check
  // against the surviving set.
  const Schema schema = Schema::Uniform({40, 2, 2});
  MupDominanceIndex index(schema);
  std::vector<Pattern> live;
  Rng rng(77);
  for (int step = 0; step < 300; ++step) {
    const bool remove = !live.empty() && rng.NextUint64(3) == 0;
    if (remove) {
      const std::size_t pick = rng.NextUint64(live.size());
      ASSERT_TRUE(index.Remove(live[pick]));
      live[pick] = live.back();
      live.pop_back();
    } else {
      // Level-1 patterns on a wide attribute keep the set an antichain-ish
      // mix; skip duplicates to respect the Add contract.
      const Pattern p({static_cast<Value>(rng.NextUint64(40)),
                       static_cast<Value>(rng.NextInt(-1, 1)),
                       static_cast<Value>(rng.NextInt(-1, 1))});
      if (index.Contains(p)) continue;
      index.Add(p);
      live.push_back(p);
    }
  }
  ASSERT_EQ(index.size(), live.size());
  ASSERT_GT(live.size(), 64u);  // crossed a word boundary at some point

  Rng probe_rng(78);
  for (int trial = 0; trial < 500; ++trial) {
    const Pattern p({static_cast<Value>(probe_rng.NextInt(-1, 39)),
                     static_cast<Value>(probe_rng.NextInt(-1, 1)),
                     static_cast<Value>(probe_rng.NextInt(-1, 1))});
    bool dominated = false, dominates = false, member = false;
    for (const Pattern& m : live) {
      dominated = dominated || m.Dominates(p);
      dominates = dominates || p.Dominates(m);
      member = member || m == p;
    }
    EXPECT_EQ(index.Contains(p), member) << p.ToString();
    EXPECT_EQ(index.IsDominated(p), dominated) << p.ToString();
    EXPECT_EQ(index.DominatesSome(p), dominates) << p.ToString();
  }
}

}  // namespace
}  // namespace coverage

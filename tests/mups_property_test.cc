// Property-based cross-validation of the MUP search algorithms: on randomly
// generated datasets over assorted schemas, all five algorithms must produce
// the identical MUP set, and that set must satisfy the MUP invariants
// (uncovered, all parents covered, antichain) checked against the
// definitional scan oracle.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "coverage/bitmap_coverage.h"
#include "coverage/scan_coverage.h"
#include "datagen/airbnb.h"
#include "mups/mups.h"

namespace coverage {
namespace {

struct SweepCase {
  std::vector<int> cardinalities;
  std::size_t num_rows;
  std::uint64_t tau;
  std::uint64_t seed;
  double skew;  // higher -> more mass on value 0 per attribute
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = "c";
  for (int c : info.param.cardinalities) name += std::to_string(c);
  name += "_n" + std::to_string(info.param.num_rows);
  name += "_tau" + std::to_string(info.param.tau);
  name += "_s" + std::to_string(info.param.seed);
  return name;
}

Dataset GenerateSkewed(const SweepCase& c) {
  const Schema schema = Schema::Uniform(c.cardinalities);
  Rng rng(c.seed);
  Dataset data(schema);
  std::vector<Value> row(c.cardinalities.size());
  for (std::size_t r = 0; r < c.num_rows; ++r) {
    for (std::size_t a = 0; a < c.cardinalities.size(); ++a) {
      const auto card = static_cast<std::uint64_t>(c.cardinalities[a]);
      std::uint64_t v = rng.NextUint64(card);
      if (rng.NextBool(c.skew)) v = std::min(v, rng.NextUint64(card));
      row[a] = static_cast<Value>(v);
    }
    data.AppendRow(row);
  }
  return data;
}

class MupEquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MupEquivalenceSweep, AllAlgorithmsAgreeAndInvariantsHold) {
  const SweepCase& c = GetParam();
  const Dataset data = GenerateSkewed(c);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  ScanCoverage scan(data);

  MupSearchOptions options{.tau = c.tau};
  auto naive = FindMupsNaive(scan, data.schema(), options);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  const auto breaker = FindMupsPatternBreaker(oracle, options);
  EXPECT_EQ(breaker, *naive) << "PATTERN-BREAKER diverges";

  auto combiner = FindMupsPatternCombiner(oracle, options);
  ASSERT_TRUE(combiner.ok());
  EXPECT_EQ(*combiner, *naive) << "PATTERN-COMBINER diverges";

  const auto diver = FindMupsDeepDiver(oracle, options);
  EXPECT_EQ(diver, *naive) << "DEEPDIVER diverges";

  auto apriori = FindMupsApriori(oracle, options);
  ASSERT_TRUE(apriori.ok());
  EXPECT_EQ(*apriori, *naive) << "APRIORI diverges";

  EXPECT_TRUE(ValidateMupSet(*naive, scan, c.tau).ok());
}

TEST_P(MupEquivalenceSweep, LevelLimitedEqualsFilteredFull) {
  const SweepCase& c = GetParam();
  const Dataset data = GenerateSkewed(c);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);

  MupSearchOptions full{.tau = c.tau};
  const auto all = FindMupsDeepDiver(oracle, full);
  const int d = data.num_attributes();
  for (int max_level = 0; max_level <= d; ++max_level) {
    MupSearchOptions limited{.tau = c.tau};
    limited.max_level = max_level;
    const auto got = FindMupsDeepDiver(oracle, limited);
    std::vector<Pattern> expected;
    for (const Pattern& p : all) {
      if (p.level() <= max_level) expected.push_back(p);
    }
    EXPECT_EQ(got, expected) << "max_level=" << max_level;

    const auto got_breaker = FindMupsPatternBreaker(oracle, limited);
    EXPECT_EQ(got_breaker, expected) << "breaker max_level=" << max_level;
  }
}

TEST_P(MupEquivalenceSweep, BitmapOracleMatchesScanOnMups) {
  const SweepCase& c = GetParam();
  const Dataset data = GenerateSkewed(c);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  ScanCoverage scan(data);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = c.tau});
  QueryContext bctx, sctx;
  for (const Pattern& p : mups) {
    EXPECT_EQ(oracle.Coverage(p, bctx), scan.Coverage(p, sctx));
    for (const Pattern& parent : p.Parents()) {
      EXPECT_EQ(oracle.Coverage(parent, bctx), scan.Coverage(parent, sctx));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MupEquivalenceSweep,
    ::testing::Values(
        // Binary schemas of growing width.
        SweepCase{{2, 2}, 10, 2, 1, 0.3},
        SweepCase{{2, 2, 2}, 30, 3, 2, 0.5},
        SweepCase{{2, 2, 2, 2}, 60, 4, 3, 0.5},
        SweepCase{{2, 2, 2, 2, 2}, 120, 5, 4, 0.6},
        SweepCase{{2, 2, 2, 2, 2, 2}, 200, 6, 5, 0.4},
        // Mixed cardinalities.
        SweepCase{{3, 2}, 25, 3, 6, 0.4},
        SweepCase{{3, 4, 2}, 80, 4, 7, 0.5},
        SweepCase{{4, 3, 3, 2}, 150, 5, 8, 0.5},
        SweepCase{{5, 2, 4}, 100, 6, 9, 0.6},
        SweepCase{{2, 6, 2, 3}, 140, 4, 10, 0.4},
        // Cardinality-1 attributes are legal and degenerate.
        SweepCase{{1, 2, 3}, 40, 3, 11, 0.4},
        SweepCase{{1, 1, 2}, 20, 2, 12, 0.3},
        // Small n relative to tau: almost everything uncovered.
        SweepCase{{2, 3, 2}, 5, 4, 13, 0.5},
        SweepCase{{3, 3}, 3, 10, 14, 0.2},
        // Large n relative to the domain: almost everything covered.
        SweepCase{{2, 2, 2}, 500, 2, 15, 0.1},
        SweepCase{{3, 2, 2}, 400, 3, 16, 0.2},
        // tau = 1 (pure emptiness detection).
        SweepCase{{2, 3, 3}, 30, 1, 17, 0.7},
        SweepCase{{4, 4}, 12, 1, 18, 0.6},
        // Heavier skew concentrates coverage and spawns mid-level MUPs.
        SweepCase{{2, 2, 2, 2, 2}, 80, 8, 19, 0.9},
        SweepCase{{3, 3, 3}, 90, 9, 20, 0.8}),
    CaseName);

TEST_P(MupEquivalenceSweep, DominanceModesAgree) {
  // The three DEEPDIVER dominance strategies (Appendix-B bitmap index,
  // linear scan, no pruning at all) are interchangeable in output.
  const SweepCase& c = GetParam();
  const Dataset data = GenerateSkewed(c);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options{.tau = c.tau};
  options.dominance_mode = MupSearchOptions::DominanceMode::kBitmapIndex;
  const auto bitmap = FindMupsDeepDiver(oracle, options);
  options.dominance_mode = MupSearchOptions::DominanceMode::kLinearScan;
  const auto linear = FindMupsDeepDiver(oracle, options);
  options.dominance_mode = MupSearchOptions::DominanceMode::kNoPruning;
  const auto none = FindMupsDeepDiver(oracle, options);
  EXPECT_EQ(bitmap, linear);
  EXPECT_EQ(bitmap, none);
}

TEST_P(MupEquivalenceSweep, ScanOracleMatchesBitmapOracleInSearch) {
  // PATTERN-BREAKER and DEEPDIVER accept any CoverageOracle; running them
  // over the definitional scan oracle must give the same MUPs.
  const SweepCase& c = GetParam();
  const Dataset data = GenerateSkewed(c);
  const AggregatedData agg(data);
  const BitmapCoverage bitmap(agg);
  ScanCoverage scan(data);
  MupSearchOptions options{.tau = c.tau};
  EXPECT_EQ(FindMupsPatternBreaker(scan, data.schema(), options),
            FindMupsPatternBreaker(bitmap, options));
  EXPECT_EQ(FindMupsDeepDiver(scan, data.schema(), options),
            FindMupsDeepDiver(bitmap, options));
}

// A coarse-grained end-to-end property on the AirBnB generator: DEEPDIVER
// and PATTERN-BREAKER agree on a realistic boolean workload.
TEST(MupEquivalenceAirbnb, BreakerDiverCombinerAgree) {
  const Dataset data = datagen::MakeAirbnb(2000, 8, 123);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const MupSearchOptions options{.tau = 20};
  const auto breaker = FindMupsPatternBreaker(oracle, options);
  const auto diver = FindMupsDeepDiver(oracle, options);
  auto combiner = FindMupsPatternCombiner(oracle, options);
  ASSERT_TRUE(combiner.ok());
  EXPECT_EQ(breaker, diver);
  EXPECT_EQ(breaker, *combiner);
  EXPECT_FALSE(breaker.empty());
  ScanCoverage scan(data);
  EXPECT_TRUE(ValidateMupSet(breaker, scan, options.tau).ok());
}

}  // namespace
}  // namespace coverage

#include "mups/mups.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "coverage/scan_coverage.h"
#include "datagen/adversarial.h"

namespace coverage {
namespace {

Dataset MakeExample1() {
  Dataset data(Schema::Binary(3));
  data.AppendRow(std::vector<Value>{0, 1, 0});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  data.AppendRow(std::vector<Value>{0, 0, 0});
  data.AppendRow(std::vector<Value>{0, 1, 1});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  return data;
}

std::set<std::string> Names(const std::vector<Pattern>& ps) {
  std::set<std::string> names;
  for (const Pattern& p : ps) names.insert(p.ToString());
  return names;
}

class AllAlgorithms : public ::testing::TestWithParam<MupAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(
    Mups, AllAlgorithms,
    ::testing::Values(MupAlgorithm::kNaive, MupAlgorithm::kPatternBreaker,
                      MupAlgorithm::kPatternCombiner, MupAlgorithm::kDeepDiver,
                      MupAlgorithm::kApriori),
    [](const ::testing::TestParamInfo<MupAlgorithm>& info) {
      std::string name = ToString(info.param);
      std::erase(name, '-');
      return name;
    });

TEST_P(AllAlgorithms, Example1HasSingleMup) {
  // Example 1 with τ=1: the only MUP is 1XX (the 8 other uncovered patterns
  // are dominated by it).
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 1});
  ASSERT_TRUE(mups.ok()) << mups.status().ToString();
  EXPECT_EQ(Names(*mups), (std::set<std::string>{"1XX"}));
}

TEST_P(AllAlgorithms, Example1HigherThreshold) {
  // τ=2: 010, 000 and 011 each appear once, 1XX not at all. Expected MUPs
  // are the maximal uncovered patterns; validate invariants instead of a
  // hand-computed list, then cross-check against naive below.
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 2});
  ASSERT_TRUE(mups.ok());
  ScanCoverage scan(data);
  EXPECT_TRUE(ValidateMupSet(*mups, scan, 2).ok());
  auto reference =
      FindMupsNaive(scan, data.schema(), MupSearchOptions{.tau = 2});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*mups, *reference);
}

TEST_P(AllAlgorithms, FullyCoveredDatasetHasNoMups) {
  // Every combination of a tiny domain present: nothing is uncovered at τ=1.
  Dataset data(Schema::Binary(2));
  for (Value a = 0; a < 2; ++a) {
    for (Value b = 0; b < 2; ++b) data.AppendRow(std::vector<Value>{a, b});
  }
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 1});
  ASSERT_TRUE(mups.ok());
  EXPECT_TRUE(mups->empty());
}

TEST_P(AllAlgorithms, EmptyDatasetRootIsTheOnlyMup) {
  const Dataset data(Schema::Binary(3));
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 1});
  ASSERT_TRUE(mups.ok());
  EXPECT_EQ(Names(*mups), (std::set<std::string>{"XXX"}));
}

TEST_P(AllAlgorithms, ThresholdAboveDatasetSize) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 6});
  ASSERT_TRUE(mups.ok());
  EXPECT_EQ(Names(*mups), (std::set<std::string>{"XXX"}));
}

TEST_P(AllAlgorithms, Theorem1DiagonalConstruction) {
  // Theorem 1: the diagonal dataset with n=4 and τ = n/2+1 = 3 has exactly
  // n + C(n, n/2) = 4 + 6 = 10 MUPs: the four single-1 patterns and the six
  // patterns with two deterministic zeros.
  const Dataset data = datagen::MakeDiagonal(4);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 3});
  ASSERT_TRUE(mups.ok());
  EXPECT_EQ(mups->size(), 10u);
  int single_ones = 0, double_zeros = 0;
  for (const Pattern& p : *mups) {
    if (p.level() == 1) {
      EXPECT_EQ(p.cell(p.RightmostDeterministic()), 1);
      ++single_ones;
    } else {
      EXPECT_EQ(p.level(), 2);
      for (int i = 0; i < 4; ++i) {
        if (p.is_deterministic(i)) {
          EXPECT_EQ(p.cell(i), 0);
        }
      }
      ++double_zeros;
    }
  }
  EXPECT_EQ(single_ones, 4);
  EXPECT_EQ(double_zeros, 6);
  ScanCoverage scan(data);
  EXPECT_TRUE(ValidateMupSet(*mups, scan, 3).ok());
}

TEST_P(AllAlgorithms, Theorem1LargerInstance) {
  // n=6, τ=4: 6 + C(6,3) = 26 MUPs.
  const Dataset data = datagen::MakeDiagonal(6);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 4});
  ASSERT_TRUE(mups.ok());
  EXPECT_EQ(mups->size(), 26u);
}

TEST_P(AllAlgorithms, Theorem2VertexCoverReduction) {
  // Theorem 2's reduction: with τ=3, the MUPs are exactly the |E| single-1
  // patterns (one per edge).
  const std::vector<std::pair<int, int>> edges = {
      {0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}};
  const Dataset data = datagen::MakeVertexCoverReduction(4, edges);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 3});
  ASSERT_TRUE(mups.ok());
  EXPECT_EQ(Names(*mups), (std::set<std::string>{"1XXXX", "X1XXX", "XX1XX",
                                                 "XXX1X", "XXXX1"}));
}

TEST_P(AllAlgorithms, MixedCardinalitiesAgainstNaive) {
  Rng rng(77);
  const Schema schema = Schema::Uniform({3, 2, 4, 2});
  Dataset data(schema);
  std::vector<Value> row(4);
  for (int i = 0; i < 300; ++i) {
    for (int a = 0; a < 4; ++a) {
      // Skewed draws leave corners uncovered.
      const auto c = static_cast<std::uint64_t>(schema.cardinality(a));
      row[static_cast<std::size_t>(a)] = static_cast<Value>(
          std::min(rng.NextUint64(c), rng.NextUint64(c)));
    }
    data.AppendRow(row);
  }
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  auto mups = FindMups(GetParam(), oracle, MupSearchOptions{.tau = 5});
  ASSERT_TRUE(mups.ok());
  ScanCoverage scan(data);
  auto reference =
      FindMupsNaive(scan, schema, MupSearchOptions{.tau = 5});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*mups, *reference);
}

// ------------------------------------------------- algorithm specifics --

TEST(PatternBreaker, SoundnessRegressionDominatedCandidate) {
  // Regression for the Algorithm-1 pitfall documented in mups.h: with
  // D = {1101, 1110} and τ=1, XX00 is a MUP and 1100 must NOT be reported
  // even though all its parents are generated.
  Dataset data(Schema::Binary(4));
  data.AppendRow(std::vector<Value>{1, 1, 0, 1});
  data.AppendRow(std::vector<Value>{1, 1, 1, 0});
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsPatternBreaker(oracle, MupSearchOptions{.tau = 1});
  for (const Pattern& p : mups) {
    EXPECT_NE(p.ToString(), "1100");
  }
  ScanCoverage scan(data);
  EXPECT_TRUE(ValidateMupSet(mups, scan, 1).ok());
  auto reference = FindMupsNaive(scan, data.schema(),
                                 MupSearchOptions{.tau = 1});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(mups, *reference);
}

TEST(PatternBreaker, StatsAreFilled) {
  const Dataset data = MakeExample1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchStats stats;
  const auto mups =
      FindMupsPatternBreaker(oracle, MupSearchOptions{.tau = 1}, &stats);
  EXPECT_EQ(stats.num_mups, mups.size());
  EXPECT_GT(stats.coverage_queries, 0u);
  EXPECT_GT(stats.nodes_generated, 0u);
  EXPECT_GE(stats.seconds, 0.0);
}

TEST(PatternCombiner, RefusesHugeCombinationSpace) {
  const Dataset data = datagen::MakeDiagonal(8);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options{.tau = 2};
  options.enumeration_limit = 16;  // 2^8 = 256 combinations > 16
  const auto result = FindMupsPatternCombiner(oracle, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeepDiver, PruningStatsAccumulate) {
  const Dataset data = datagen::MakeDiagonal(8);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchStats stats;
  const auto mups =
      FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 5}, &stats);
  EXPECT_EQ(stats.num_mups, mups.size());
  EXPECT_GT(stats.nodes_pruned, 0u);
  ScanCoverage scan(data);
  EXPECT_TRUE(ValidateMupSet(mups, scan, 5).ok());
}

TEST(DeepDiver, CoverageQueriesBelowPatternBreaker) {
  // DEEPDIVER's dominance pruning should issue no more coverage queries
  // than PATTERN-BREAKER on a MUP-rich dataset (the paper's core claim).
  const Dataset data = datagen::MakeDiagonal(10);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchStats breaker_stats, diver_stats;
  FindMupsPatternBreaker(oracle, MupSearchOptions{.tau = 6}, &breaker_stats);
  FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 6}, &diver_stats);
  EXPECT_EQ(breaker_stats.num_mups, diver_stats.num_mups);
  EXPECT_LE(diver_stats.coverage_queries, breaker_stats.coverage_queries);
}

TEST(LevelLimited, MaxLevelRestrictsOutput) {
  const Dataset data = datagen::MakeDiagonal(6);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  // Unlimited: MUPs at levels 1 and 3 (n=6, τ=4 -> zeros at level 3).
  auto all = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 4});
  MupSearchOptions limited{.tau = 4};
  limited.max_level = 1;
  auto level1 = FindMupsDeepDiver(oracle, limited);
  std::vector<Pattern> expected;
  for (const Pattern& p : all) {
    if (p.level() <= 1) expected.push_back(p);
  }
  EXPECT_EQ(level1, expected);
}

TEST(LevelLimited, AllAlgorithmsAgreeUnderMaxLevel) {
  const Dataset data = datagen::MakeDiagonal(6);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options{.tau = 4};
  options.max_level = 2;
  auto breaker = FindMupsPatternBreaker(oracle, options);
  auto diver = FindMupsDeepDiver(oracle, options);
  auto combiner = FindMupsPatternCombiner(oracle, options);
  auto apriori = FindMupsApriori(oracle, options);
  ASSERT_TRUE(combiner.ok());
  ASSERT_TRUE(apriori.ok());
  EXPECT_EQ(breaker, diver);
  EXPECT_EQ(breaker, *combiner);
  EXPECT_EQ(breaker, *apriori);
}

TEST(Naive, RespectsEnumerationLimit) {
  const Dataset data = datagen::MakeDiagonal(30);
  ScanCoverage oracle(data);
  MupSearchOptions options{.tau = 2};
  options.enumeration_limit = 1000;  // 3^30 patterns is far beyond this
  const auto result = FindMupsNaive(oracle, data.schema(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// ------------------------------------------------------------ utilities --

TEST(MupUtilities, LevelHistogram) {
  const Schema schema = Schema::Binary(4);
  const std::vector<Pattern> mups = {*Pattern::Parse("1XXX", schema),
                                     *Pattern::Parse("X10X", schema),
                                     *Pattern::Parse("X01X", schema)};
  const auto hist = MupLevelHistogram(mups, 4);
  EXPECT_EQ(hist, (std::vector<std::size_t>{0, 1, 2, 0, 0}));
}

TEST(MupUtilities, MaximumCoveredLevel) {
  const Schema schema = Schema::Binary(4);
  EXPECT_EQ(MaximumCoveredLevel({}, 4), 4);
  EXPECT_EQ(MaximumCoveredLevel({*Pattern::Parse("X10X", schema)}, 4), 1);
  EXPECT_EQ(MaximumCoveredLevel({Pattern::Root(4)}, 4), -1);
}

TEST(MupUtilities, ValidateMupSetRejectsCoveredPattern) {
  const Dataset data = MakeExample1();
  ScanCoverage scan(data);
  const std::vector<Pattern> bogus = {*Pattern::Parse("0XX", data.schema())};
  EXPECT_FALSE(ValidateMupSet(bogus, scan, 1).ok());
}

TEST(MupUtilities, ValidateMupSetRejectsDominatedPair) {
  const Dataset data = MakeExample1();
  ScanCoverage scan(data);
  const std::vector<Pattern> bogus = {*Pattern::Parse("1XX", data.schema()),
                                      *Pattern::Parse("11X", data.schema())};
  EXPECT_FALSE(ValidateMupSet(bogus, scan, 1).ok());
}

TEST(MupUtilities, AlgorithmNames) {
  EXPECT_EQ(ToString(MupAlgorithm::kPatternBreaker), "PATTERN-BREAKER");
  EXPECT_EQ(ToString(MupAlgorithm::kDeepDiver), "DEEPDIVER");
}

}  // namespace
}  // namespace coverage

// Adversarial clients against the epoll io model (src/net/EventLoop):
// slowloris partial headers, silent idle keep-alives, half-closed sockets,
// thousands of idle connections held open at once, and a slow reader
// forcing write backpressure. Every test pins io_model = kEpoll explicitly
// so the suite exercises the event loop regardless of COVERAGE_IO_MODEL.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/http_client.h"
#include "server/http_server.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define COVERAGE_NET_TEST_TSAN 1
#endif
#endif

namespace coverage {
namespace {

using http::HttpClient;
using http::HttpServer;
using http::IoModel;
using http::Request;
using http::Response;
using http::ServerOptions;

int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

/// Reads until EOF (or a socket error) and returns everything received.
std::string ReadUntilClose(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return out;
  }
}

std::unique_ptr<HttpServer> StartEpollServer(ServerOptions options,
                                             HttpServer::Handler handler) {
  options.port = 0;
  options.io_model = IoModel::kEpoll;
  auto server = std::make_unique<HttpServer>(options, std::move(handler));
  EXPECT_TRUE(server->Start().ok());
  return server;
}

HttpServer::Handler OkHandler() {
  return [](const Request&) { return Response::Text(200, "ok"); };
}

// ------------------------------------------------------------ slowloris --

TEST(NetEpoll, SlowlorisPartialHeaderGets408) {
  ServerOptions options;
  options.num_threads = 2;
  options.idle_timeout_ms = 150;
  auto server = StartEpollServer(options, OkHandler());

  const int fd = RawConnect(server->port());
  const std::string partial = "GET /healthz HTTP/1.1\r\nHost: trickle";
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  // ... and never finish the head. The idle deadline must answer 408 and
  // close, freeing the connection slot a real slowloris would pin.
  const std::string answer = ReadUntilClose(fd);
  ::close(fd);
  EXPECT_NE(answer.find("HTTP/1.1 408"), std::string::npos) << answer;
  EXPECT_NE(answer.find("Connection: close"), std::string::npos);

  // The server is still fully alive for well-behaved clients.
  auto client = HttpClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Get("/");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  server->Stop();
}

TEST(NetEpoll, SilentIdleConnectionIsClosedWithoutBytes) {
  ServerOptions options;
  options.num_threads = 2;
  options.idle_timeout_ms = 120;
  auto server = StartEpollServer(options, OkHandler());

  // A keep-alive connection that never sends anything is closed silently —
  // a 408 would be noise for a peer that never spoke HTTP.
  const int fd = RawConnect(server->port());
  const std::string answer = ReadUntilClose(fd);
  ::close(fd);
  EXPECT_TRUE(answer.empty()) << answer;
  server->Stop();
}

// ----------------------------------------------------------- half close --

TEST(NetEpoll, HalfClosedClientStillReceivesFullResponse) {
  ServerOptions options;
  options.num_threads = 2;
  auto server = StartEpollServer(options, [](const Request& r) {
    return Response::Text(200, "echo:" + r.body);
  });

  const int fd = RawConnect(server->port());
  const std::string request =
      "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  // FIN our write side before the response exists: the server must treat
  // the buffered request as live and deliver the answer anyway.
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::string answer = ReadUntilClose(fd);
  ::close(fd);
  EXPECT_NE(answer.find("HTTP/1.1 200"), std::string::npos) << answer;
  EXPECT_NE(answer.find("echo:hello"), std::string::npos);
  server->Stop();
}

// ------------------------------------------------- many idle keep-alive --

TEST(NetEpoll, ThousandsOfIdleKeepAliveConnectionsStayCheap) {
  ServerOptions options;
  options.num_threads = 2;
  options.backlog = 512;
  options.idle_timeout_ms = 120000;  // nothing may time out mid-test
  options.max_pending = 0;           // these connections are idle, not load
  auto server = StartEpollServer(options, OkHandler());

  // Two fds per loopback connection live in this process (client + server
  // end), so the ceiling comes from the fd rlimit with headroom for the
  // suite's own descriptors.
  rlimit fd_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &fd_limit), 0);
  std::size_t target = std::min<rlim_t>(
      (fd_limit.rlim_cur > 300 ? (fd_limit.rlim_cur - 300) / 2 : 64), 4000);
#ifdef COVERAGE_NET_TEST_TSAN
  target = std::min<std::size_t>(target, 256);  // TSan multiplies the cost
#endif
  ASSERT_GE(target, 64u);

  std::vector<int> fds;
  fds.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    fds.push_back(RawConnect(server->port()));
  }
  // The loop accepts asynchronously; wait for the gauge to catch up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server->stats().open_connections < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server->stats().open_connections, target);

  // With every idle connection parked in the poller, live traffic still
  // flows at full quality.
  auto client = HttpClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 5; ++i) {
    auto response = client->Get("/");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }

  for (const int fd : fds) ::close(fd);
  server->Stop();
}

// --------------------------------------------------------- backpressure --

TEST(NetEpoll, SlowReaderForcesWriteBackpressureWithoutLoss) {
  const std::string body(4 * 1024 * 1024, 'x');
  ServerOptions options;
  options.num_threads = 2;
  auto server = StartEpollServer(
      options, [&body](const Request&) { return Response::Text(200, body); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int small = 8192;  // keep the kernel from hiding the backpressure
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string request = "GET /big HTTP/1.1\r\nHost: slow\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  // Refuse to read until the server visibly parks bytes in its write
  // buffer — EAGAIN on the socket moved it to wait-for-writable.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool saw_backpressure = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (server->stats().write_buffer_bytes > 0) {
      saw_backpressure = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_backpressure);

  // Now drain slowly; every byte must arrive, in order, despite the stalls.
  std::string received;
  char buf[16384];
  int pauses = 3;
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      received.append(buf, static_cast<std::size_t>(n));
      if (pauses > 0) {
        --pauses;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      const std::size_t head_end = received.find("\r\n\r\n");
      if (head_end != std::string::npos &&
          received.size() >= head_end + 4 + body.size()) {
        break;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  const std::size_t head_end = received.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_NE(received.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(received.substr(head_end + 4), body);
  // Fully drained: nothing left parked for this connection.
  server->Stop();
}

}  // namespace
}  // namespace coverage

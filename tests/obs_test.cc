// Unit tests for the observability layer: metric instruments and the
// registry, the Prometheus text exposition, structured logging, and the
// per-request trace. These are pure library tests — the server-level
// integration (GET /metrics, X-Request-Id, ?timing=1) lives in
// server_obs_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "server/json.h"

namespace coverage {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Instruments

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(Histogram, CountsSumsAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.QuantileSeconds(0.5), 0.0);

  // 100 observations at ~1ms, one at ~1s: p50 must sit near 1ms and p99+
  // must not be dragged to the outlier's bucket for low quantiles.
  for (int i = 0; i < 100; ++i) h.Observe(0.001);
  h.Observe(1.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_NEAR(h.sum_seconds(), 1.1, 0.01);

  const double p50 = h.QuantileSeconds(0.5);
  EXPECT_GT(p50, 0.0005);
  EXPECT_LT(p50, 0.005);
  // The outlier lives in the top occupied bucket; p100 must reach it.
  EXPECT_GE(h.QuantileSeconds(1.0), 1.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.QuantileSeconds(0.5), h.QuantileSeconds(0.99));
}

TEST(Histogram, SnapshotBucketsAreCumulativeConsistent) {
  Histogram h;
  h.Observe(0.0);       // clamps into the first bucket
  h.Observe(1e-6);      // 1 µs
  h.Observe(0.5);       // ~2^19 µs
  const Histogram::Snapshot snap = h.TakeSnapshot();
  std::uint64_t total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) total += snap.buckets[i];
  EXPECT_EQ(total, snap.count);
  EXPECT_EQ(snap.count, 3u);
}

TEST(Histogram, ConcurrentObserversLoseNothing) {
  // TSan canary: 8 writers hammer one histogram; every observation must be
  // accounted for in count, sum, and the bucket array.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(1e-6 * static_cast<double>((t * 31 + i) % 1000 + 1));
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  std::uint64_t total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) total += snap.buckets[i];
  EXPECT_EQ(total, snap.count);
  EXPECT_GT(snap.sum_seconds, 0.0);
}

TEST(Counter, ConcurrentIncrementsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", "help", {{"route", "x"}});
  Counter* b = registry.GetCounter("requests_total", "other", {{"route", "x"}});
  Counter* c = registry.GetCounter("requests_total", "help", {{"route", "y"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Increment(3);
  c->Increment(1);

  const auto families = registry.Collect();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].name, "requests_total");
  EXPECT_EQ(families[0].help, "help");  // first registration wins
  ASSERT_EQ(families[0].series.size(), 2u);
  EXPECT_EQ(families[0].series[0].value, 3.0);
  EXPECT_EQ(families[0].series[1].value, 1.0);
}

TEST(MetricsRegistry, TypeMismatchYieldsDetachedInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("m", "help");
  Gauge* detached = registry.GetGauge("m", "help");
  ASSERT_NE(detached, nullptr);  // updates still work...
  detached->Set(7);
  const auto families = registry.Collect();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].type, MetricType::kCounter);
  ASSERT_EQ(families[0].series.size(), 1u);  // ...but it is not collected
  EXPECT_EQ(families[0].series[0].value, 0.0);
}

TEST(MetricsRegistry, CollectSortsFamiliesByName) {
  MetricsRegistry registry;
  registry.GetCounter("zzz", "z");
  registry.GetGauge("aaa", "a");
  registry.GetHistogram("mmm", "m");
  const auto families = registry.Collect();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "aaa");
  EXPECT_EQ(families[1].name, "mmm");
  EXPECT_EQ(families[2].name, "zzz");
}

TEST(MetricsRegistry, CallbackSeriesEvaluateAtCollect) {
  MetricsRegistry registry;
  std::atomic<int> live{5};
  registry.RegisterCallback("sessions_open", "open sessions",
                            MetricType::kGauge, {},
                            [&live] { return static_cast<double>(live.load()); });
  auto families = registry.Collect();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].series[0].value, 5.0);
  live = 9;
  families = registry.Collect();
  EXPECT_EQ(families[0].series[0].value, 9.0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, EscapesLabelValuesAndHelp) {
  EXPECT_EQ(EscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(EscapeHelp("line1\nline2\\x"), "line1\\nline2\\\\x");
}

TEST(Prometheus, RendersHelpTypeAndSeries) {
  MetricsRegistry registry;
  registry.GetCounter("coverage_requests_total", "Requests served.",
                      {{"route", "GET /healthz"}})
      ->Increment(7);
  registry.GetGauge("coverage_sessions_open", "Open sessions.")->Set(3);

  const std::string text = RenderPrometheus(registry);
  EXPECT_NE(text.find("# HELP coverage_requests_total Requests served.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE coverage_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("coverage_requests_total{route=\"GET /healthz\"} 7\n"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE coverage_sessions_open gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("coverage_sessions_open 3\n"), std::string::npos);
  // Families in name order: requests_total before sessions_open.
  EXPECT_LT(text.find("coverage_requests_total"),
            text.find("coverage_sessions_open"));
  // Every line is either a comment or a sample; the text ends in a newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Prometheus, HistogramRendersCumulativeBucketsSumAndCount) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("req_seconds", "Latency.");
  h->Observe(0.5e-6);  // bucket le=1µs
  h->Observe(0.5e-6);
  h->Observe(3e-6);  // bucket le=4µs

  const std::string text = RenderPrometheus(registry);
  EXPECT_NE(text.find("# TYPE req_seconds histogram\n"), std::string::npos);
  // Cumulative: the 1µs bucket holds 2, the 4µs bucket holds all 3.
  EXPECT_NE(text.find("req_seconds_bucket{le=\"1e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_seconds_bucket{le=\"4e-06\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("req_seconds_sum "), std::string::npos);
  // Empty tail buckets after the last occupied one are skipped — the +Inf
  // line directly follows the last emitted finite bucket.
  EXPECT_EQ(text.find("req_seconds_bucket{le=\"8e-06\"}"), std::string::npos);
}

TEST(Prometheus, HistogramWithLabelsMergesLeIntoLabelSet) {
  MetricsRegistry registry;
  registry.GetHistogram("stage_seconds", "Stage latency.",
                        {{"stage", "wal_fsync"}})
      ->Observe(1e-6);
  const std::string text = RenderPrometheus(registry);
  EXPECT_NE(
      text.find("stage_seconds_bucket{stage=\"wal_fsync\",le=\"+Inf\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("stage_seconds_sum{stage=\"wal_fsync\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_count{stage=\"wal_fsync\"} 1\n"),
            std::string::npos);
}

TEST(Prometheus, IntegersRenderWithoutExponent) {
  MetricsRegistry registry;
  registry.GetCounter("big_total", "Big.")->Increment(1234567890ull);
  const std::string text = RenderPrometheus(registry);
  EXPECT_NE(text.find("big_total 1234567890\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured logging

/// Restores global log state on scope exit so tests do not leak settings
/// into each other (the log layer is process-global by design).
struct LogStateGuard {
  ~LogStateGuard() {
    SetLogLevel(LogLevel::kInfo);
    SetLogJson(false);
    SetLogSink(nullptr);
    SetLogRateLimit(50.0, 100.0);
  }
};

TEST(Log, ParseLogLevelRoundTrips) {
  LogLevel level;
  ASSERT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("DEBUG", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
}

TEST(Log, LevelFilterSuppressesBelowThreshold) {
  LogStateGuard guard;
  std::vector<std::string> lines;
  std::mutex mu;
  SetLogSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  SetLogRateLimit(0.0, 0.0);  // disable limiting for determinism
  SetLogLevel(LogLevel::kWarn);
  LogInfo("below_threshold");
  LogWarn("at_threshold");
  LogError("above_threshold");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("at_threshold"), std::string::npos);
  EXPECT_NE(lines[0].find("WARN"), std::string::npos);
  EXPECT_NE(lines[1].find("above_threshold"), std::string::npos);
}

TEST(Log, TextFormatQuotesStringsAndRendersScalars) {
  LogStateGuard guard;
  std::vector<std::string> lines;
  SetLogSink([&](const std::string& line) { lines.push_back(line); });
  SetLogRateLimit(0.0, 0.0);
  SetLogLevel(LogLevel::kInfo);
  LogInfo("shed")
      .Str("reason", "queue full")
      .Int("depth", -2)
      .Uint("max", 256)
      .Double("waited", 0.25)
      .Bool("stale", true);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_NE(line.find("INFO shed"), std::string::npos);
  EXPECT_NE(line.find("reason=\"queue full\""), std::string::npos);
  EXPECT_NE(line.find("depth=-2"), std::string::npos);
  EXPECT_NE(line.find("max=256"), std::string::npos);
  EXPECT_NE(line.find("stale=true"), std::string::npos);
}

TEST(Log, JsonLinesParseAndCarryFields) {
  LogStateGuard guard;
  std::vector<std::string> lines;
  SetLogSink([&](const std::string& line) { lines.push_back(line); });
  SetLogRateLimit(0.0, 0.0);
  SetLogLevel(LogLevel::kInfo);
  SetLogJson(true);
  LogWarn("slow_request")
      .Str("route", "POST /v1/audit")
      .Str("tricky", "a\"b\\c\nd")
      .Double("seconds", 1.5)
      .Int("status", 200);
  ASSERT_EQ(lines.size(), 1u);
  auto parsed = json::Parse(lines[0]);
  ASSERT_TRUE(parsed.ok()) << lines[0];
  ASSERT_TRUE(parsed->is_object());
  const auto& o = parsed->AsObject();
  EXPECT_EQ(o.at("level").AsString(), "WARN");
  EXPECT_EQ(o.at("event").AsString(), "slow_request");
  EXPECT_EQ(o.at("route").AsString(), "POST /v1/audit");
  EXPECT_EQ(o.at("tricky").AsString(), "a\"b\\c\nd");
  EXPECT_EQ(o.at("status").AsDouble(), 200.0);
  EXPECT_NE(o.find("ts"), o.end());
}

TEST(Log, TokenBucketIsDeterministicWithExplicitClock) {
  internal::TokenBucket bucket(1.0, 2.0);  // 1/s sustained, burst 2
  std::uint64_t suppressed = 0;
  EXPECT_TRUE(bucket.Allow(0.0, &suppressed));
  EXPECT_EQ(suppressed, 0u);
  EXPECT_TRUE(bucket.Allow(0.0, &suppressed));  // burst
  EXPECT_FALSE(bucket.Allow(0.0, &suppressed));  // drained
  EXPECT_FALSE(bucket.Allow(0.5, &suppressed));  // half a token back: still <1
  EXPECT_TRUE(bucket.Allow(1.5, &suppressed));   // refilled
  EXPECT_EQ(suppressed, 2u);  // the two drops fold into this pass
  suppressed = 0;
  EXPECT_TRUE(bucket.Allow(100.0, &suppressed));  // refill caps at burst
  EXPECT_TRUE(bucket.Allow(100.0, &suppressed));
  EXPECT_FALSE(bucket.Allow(100.0, &suppressed));
}

TEST(Log, RateLimitFoldsSuppressedCount) {
  LogStateGuard guard;
  std::vector<std::string> lines;
  SetLogSink([&](const std::string& line) { lines.push_back(line); });
  SetLogLevel(LogLevel::kInfo);
  SetLogRateLimit(1000.0, 2.0);  // tiny burst, fast refill
  for (int i = 0; i < 50; ++i) LogInfo("chatty").Int("i", i);
  // The burst passes immediately; drops (if the loop outpaces the refill)
  // must fold into a later event as suppressed=N rather than vanish.
  EXPECT_GE(lines.size(), 2u);
  std::uint64_t emitted = lines.size();
  std::uint64_t folded = 0;
  for (const auto& line : lines) {
    const auto pos = line.find("suppressed=");
    if (pos != std::string::npos) {
      folded += std::stoull(line.substr(pos + std::string("suppressed=").size()));
    }
  }
  EXPECT_LE(emitted + folded, 50u);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(Trace, AccumulatesStagesInFirstSeenOrder) {
  Trace trace("r-test-1");
  EXPECT_EQ(trace.id(), "r-test-1");
  trace.AddStage("parse", 0.010);
  trace.AddStage("search", 0.200);
  trace.AddStage("parse", 0.005);  // folds into the existing entry
  ASSERT_EQ(trace.stages().size(), 2u);
  EXPECT_EQ(trace.stages()[0].first, "parse");
  EXPECT_NEAR(trace.stages()[0].second, 0.015, 1e-12);
  EXPECT_EQ(trace.stages()[1].first, "search");
  EXPECT_NEAR(trace.StageSum(), 0.215, 1e-12);
}

TEST(Trace, ScopedStageIsNullSafe) {
  { ScopedStage stage(nullptr, "ignored"); }  // must not crash
  Trace trace("r-test-2");
  { ScopedStage stage(&trace, "work"); }
  ASSERT_EQ(trace.stages().size(), 1u);
  EXPECT_EQ(trace.stages()[0].first, "work");
  EXPECT_GE(trace.stages()[0].second, 0.0);
}

TEST(Trace, GeneratedIdsAreUnique) {
  const std::string a = GenerateTraceId();
  const std::string b = GenerateTraceId();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("r-", 0), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace coverage

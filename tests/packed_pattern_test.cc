// Property tests for the packed pattern key: over hundreds of random
// schemas (including word-boundary and max-cardinality shapes), every
// PackedPattern operation must agree with the vector<int> Pattern it
// mirrors — round-trip, cell access, parent/child moves, dominance, level,
// rightmost scans, ordering, hashing, and string rendering.

#include "pattern/packed_pattern.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "pattern/packed_set.h"
#include "pattern/pattern.h"

namespace coverage {
namespace {

/// A random pattern over `schema`: each cell wildcard with probability
/// `wild`, else a uniform value.
Pattern RandomPattern(const Schema& schema, Rng& rng, double wild) {
  std::vector<Value> cells(static_cast<std::size_t>(schema.num_attributes()));
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (rng.NextBool(wild)) {
      cells[static_cast<std::size_t>(i)] = kWildcard;
    } else {
      cells[static_cast<std::size_t>(i)] = static_cast<Value>(
          rng.NextUint64(static_cast<std::uint64_t>(schema.cardinality(i))));
    }
  }
  return Pattern(std::move(cells));
}

/// One schema's worth of agreement checks between the two representations.
void CheckSchema(const Schema& schema, std::uint64_t seed) {
  auto built = PatternCodec::Build(schema);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const PatternCodec& codec = *built;
  const int d = schema.num_attributes();
  ASSERT_EQ(codec.num_attributes(), d);

  Rng rng(seed);
  std::vector<Pattern> samples;
  samples.push_back(Pattern::Root(d));
  // A fully deterministic max-value pattern exercises every field's top
  // code (the one adjacent to the all-ones wildcard encoding).
  {
    std::vector<Value> cells(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) {
      cells[static_cast<std::size_t>(i)] =
          static_cast<Value>(schema.cardinality(i) - 1);
    }
    samples.push_back(Pattern(std::move(cells)));
  }
  for (int k = 0; k < 12; ++k) {
    samples.push_back(RandomPattern(schema, rng, 0.4));
  }

  for (const Pattern& p : samples) {
    const PackedPattern packed = codec.Encode(p);

    // Round-trip and cell-level agreement.
    EXPECT_EQ(codec.Decode(packed), p);
    EXPECT_EQ(packed.level(), p.level());
    for (int i = 0; i < d; ++i) {
      EXPECT_EQ(codec.cell(packed, i), p.cell(i));
      EXPECT_EQ(codec.is_deterministic(packed, i), p.is_deterministic(i));
    }
    EXPECT_EQ(codec.RightmostDeterministic(packed),
              p.RightmostDeterministic());
    EXPECT_EQ(codec.RightmostWildcard(packed), p.RightmostWildcard());

    // Iteration order: ascending attributes, exactly the det/wild split.
    std::vector<int> det, wild;
    codec.ForEachDeterministic(packed, [&](int a) { det.push_back(a); });
    codec.ForEachWildcard(packed, [&](int a) { wild.push_back(a); });
    std::vector<int> expect_det, expect_wild;
    for (int i = 0; i < d; ++i) {
      (p.is_deterministic(i) ? expect_det : expect_wild).push_back(i);
    }
    EXPECT_EQ(det, expect_det);
    EXPECT_EQ(wild, expect_wild);

    // Rendering is byte-identical.
    EXPECT_EQ(codec.ToString(packed), p.ToString());
    EXPECT_EQ(codec.ToLabelledString(packed, schema),
              p.ToLabelledString(schema));

    // Parent/child moves through WithCell agree cell-for-cell.
    for (int i = 0; i < d; ++i) {
      const Value flip = p.is_deterministic(i) ? kWildcard : Value{0};
      EXPECT_EQ(codec.Decode(codec.WithCell(packed, i, flip)),
                p.WithCell(i, flip));
    }

    // Pairwise dominance, equality, ordering, and hashing against every
    // other sample.
    for (const Pattern& q : samples) {
      const PackedPattern packed_q = codec.Encode(q);
      EXPECT_EQ(packed.Dominates(packed_q), p.Dominates(q));
      EXPECT_EQ(packed.DominatesOrEquals(packed_q), p.DominatesOrEquals(q));
      EXPECT_EQ(packed == packed_q, p == q);
      EXPECT_EQ(codec.Less(packed, packed_q), p < q);
      if (p == q) EXPECT_EQ(packed.Hash(), packed_q.Hash());
    }
  }

  // EncodeTuple matches Pattern::FromTuple on a random full combination.
  std::vector<Value> tuple(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) {
    tuple[static_cast<std::size_t>(i)] = static_cast<Value>(
        rng.NextUint64(static_cast<std::uint64_t>(schema.cardinality(i))));
  }
  EXPECT_EQ(codec.Decode(codec.EncodeTuple(tuple)),
            Pattern::FromTuple(tuple));
}

TEST(PackedPattern, FiveHundredRandomSchemas) {
  Rng rng(2026);
  for (int s = 0; s < 500; ++s) {
    const int d = 1 + static_cast<int>(rng.NextUint64(12));
    std::vector<int> cardinalities(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) {
      // Cardinality 1 is legal and degenerate; skewing low keeps the
      // schemas representative of bucketized categorical data.
      cardinalities[static_cast<std::size_t>(i)] =
          1 + static_cast<int>(rng.NextUint64(9));
    }
    const Schema schema = Schema::Uniform(cardinalities);
    CheckSchema(schema, 3000 + static_cast<std::uint64_t>(s));
  }
}

TEST(PackedPattern, WordBoundaryBinarySchema) {
  // Binary attributes take 2-bit fields (value, plus the all-ones wildcard
  // code): 32 fit in word 0, so the 33rd binary attribute is the first to
  // land in word 1. Check shapes straddling that boundary.
  for (int d : {32, 33, 34, 64, 65, 96, 97, 128}) {
    const Schema schema = Schema::Uniform(std::vector<int>(
        static_cast<std::size_t>(d), 2));
    CheckSchema(schema, 5000 + static_cast<std::uint64_t>(d));
  }
}

TEST(PackedPattern, WordBoundaryHighCardinalitySchema) {
  // Cardinality-30 attributes take 5-bit fields; 12 fit in a word (60 bits,
  // 4 spare), so the 13th starts word 1 — and because fields never straddle
  // words, its field begins at bit 0 of word 1, not bit 60 of word 0.
  for (int d : {12, 13, 14, 25, 26, 48}) {
    const Schema schema = Schema::Uniform(std::vector<int>(
        static_cast<std::size_t>(d), 30));
    CheckSchema(schema, 6000 + static_cast<std::uint64_t>(d));
  }
}

TEST(PackedPattern, MaxCardinalityAttribute) {
  // A large-cardinality attribute next to tiny ones exercises wide fields
  // and mixed layouts. 32767 is the largest cardinality Value (int16_t) can
  // express; its 15-bit field's wildcard code is the all-ones 32767.
  CheckSchema(Schema::Uniform({1024, 2, 3}), 7001);
  CheckSchema(Schema::Uniform({2, 32767, 2}), 7002);
  CheckSchema(Schema::Uniform({32767, 32767, 32767}), 7003);
}

TEST(PackedPattern, CapacityLimit) {
  // 128 binary attributes = 256 bits: exactly at capacity. 129 exceeds it.
  EXPECT_TRUE(
      PatternCodec::Build(Schema::Uniform(std::vector<int>(128, 2))).ok());
  auto over = PatternCodec::Build(Schema::Uniform(std::vector<int>(129, 2)));
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
}

TEST(PackedPattern, ZeroAttributeSchema) {
  const Schema schema = Schema::Uniform(std::vector<int>{});
  auto codec = PatternCodec::Build(schema);
  ASSERT_TRUE(codec.ok());
  const PackedPattern root = codec->Root();
  EXPECT_EQ(root.level(), 0);
  EXPECT_EQ(codec->Decode(root), Pattern::Root(0));
  EXPECT_EQ(codec->ToString(root), Pattern::Root(0).ToString());
}

TEST(PackedPatternSet, InsertContainsAgainstStdSet) {
  const Schema schema = Schema::Uniform({3, 4, 2, 5});
  auto codec = PatternCodec::Build(schema);
  ASSERT_TRUE(codec.ok());
  Rng rng(99);
  Arena arena;
  PackedPatternSet set(&arena);
  std::unordered_set<Pattern, PatternHash> reference;
  for (int i = 0; i < 2000; ++i) {
    const Pattern p = RandomPattern(schema, rng, 0.3);
    const bool inserted_ref = reference.insert(p).second;
    const bool inserted = set.Insert(codec->Encode(p));
    EXPECT_EQ(inserted, inserted_ref);
    EXPECT_EQ(set.size(), reference.size());
  }
  for (const Pattern& p : reference) {
    EXPECT_TRUE(set.Contains(codec->Encode(p)));
  }
  // The fully deterministic all-zeros pattern packs to all-zero value
  // words; the set has no in-band empty sentinel, so it must behave like
  // any other key.
  const Pattern zeros(std::vector<Value>(4, Value{0}));
  const PackedPattern packed_zeros = codec->Encode(zeros);
  EXPECT_EQ(set.Contains(packed_zeros), reference.contains(zeros));
  set.Insert(packed_zeros);
  EXPECT_TRUE(set.Contains(packed_zeros));
}

TEST(PackedPatternMap, FindOrInsertAccumulates) {
  const Schema schema = Schema::Uniform({4, 4, 4});
  auto codec = PatternCodec::Build(schema);
  ASSERT_TRUE(codec.ok());
  Arena arena;
  PackedPatternMap<std::uint64_t> map(&arena);
  Rng rng(7);
  std::vector<Pattern> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(RandomPattern(schema, rng, 0.5));
  for (int round = 0; round < 3; ++round) {
    for (const Pattern& p : keys) {
      ++map.FindOrInsert(codec->Encode(p), std::uint64_t{0});
    }
  }
  std::unordered_set<Pattern, PatternHash> distinct(keys.begin(), keys.end());
  EXPECT_EQ(map.size(), distinct.size());
  std::size_t visited = 0;
  std::uint64_t total = 0;
  map.ForEach([&](const PackedPattern& k, const std::uint64_t& v) {
    ++visited;
    total += v;
    EXPECT_TRUE(distinct.contains(codec->Decode(k)));
  });
  EXPECT_EQ(visited, distinct.size());
  EXPECT_EQ(total, std::uint64_t{3} * keys.size());
}

}  // namespace
}  // namespace coverage

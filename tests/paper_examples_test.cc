// Every worked example in the paper, verified end to end. These tests pin
// the reproduction to the text: if a refactor changes any behaviour the
// paper describes concretely, one of these fails.

#include <gtest/gtest.h>

#include <set>

#include "coverage_lib.h"

namespace coverage {
namespace {

Pattern P(const std::string& text, const Schema& schema) {
  auto p = Pattern::Parse(text, schema);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

// ---------------------------------------------------------- §II examples --

TEST(PaperExamples, Definition1Matching) {
  // P = X1X0 on four binary attributes: t1 = 1100 and t2 = 0110 match,
  // t3 = 1010 does not (its second cell is 0 while P fixes 1).
  const Schema schema = Schema::Binary(4);
  const Pattern p = P("X1X0", schema);
  EXPECT_TRUE(p.Matches(std::vector<Value>{1, 1, 0, 0}));
  EXPECT_TRUE(p.Matches(std::vector<Value>{0, 1, 1, 0}));
  EXPECT_FALSE(p.Matches(std::vector<Value>{1, 0, 1, 0}));
}

TEST(PaperExamples, SectionTwoLevelsAndDominance) {
  // P1 = 1XXX (level 1), P2 = 10X1 (level 3); only 1001 and 1011 match P2;
  // P2 is dominated by P1.
  const Schema schema = Schema::Binary(4);
  const Pattern p1 = P("1XXX", schema);
  const Pattern p2 = P("10X1", schema);
  EXPECT_EQ(p1.level(), 1);
  EXPECT_EQ(p2.level(), 3);
  EXPECT_TRUE(p1.Dominates(p2));
  std::vector<std::vector<Value>> matches;
  ASSERT_TRUE(ForEachMatchingCombination(
                  p2, schema, 100,
                  [&](const std::vector<Value>& c) { matches.push_back(c); })
                  .ok());
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (std::vector<Value>{1, 0, 0, 1}));
  EXPECT_EQ(matches[1], (std::vector<Value>{1, 0, 1, 1}));
}

TEST(PaperExamples, Definition7ValueCount) {
  // P = X1X0 over binary A1..A4: A_P = {A1, A3}, value count 2*2 = 4.
  const Schema schema = Schema::Binary(4);
  EXPECT_EQ(P("X1X0", schema).ValueCount(schema), 4u);
}

// ----------------------------------------------------------- Example 1 --

Dataset Example1() {
  Dataset data(Schema::Binary(3));
  data.AppendRow(std::vector<Value>{0, 1, 0});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  data.AppendRow(std::vector<Value>{0, 0, 0});
  data.AppendRow(std::vector<Value>{0, 1, 1});
  data.AppendRow(std::vector<Value>{0, 0, 1});
  return data;
}

TEST(PaperExamples, Example1NineUncoveredOneMaximal) {
  // "The dataset in Example 1 has one MUP 1XX. In addition to the MUP, the
  // other 8 uncovered patterns are 1X0, 1X1, 10X, 11X, 100, 101, 110, 111."
  const Dataset data = Example1();
  ScanCoverage oracle(data);
  PatternGraph graph(data.schema());
  auto all = graph.EnumerateAll(1000);
  ASSERT_TRUE(all.ok());
  std::set<std::string> uncovered;
  QueryContext ctx;
  for (const Pattern& p : *all) {
    if (oracle.Coverage(p, ctx) < 1) uncovered.insert(p.ToString());
  }
  EXPECT_EQ(uncovered,
            (std::set<std::string>{"1XX", "1X0", "1X1", "10X", "11X", "100",
                                   "101", "110", "111"}));
  const AggregatedData agg(data);
  const BitmapCoverage bitmap(agg);
  const auto mups = FindMupsDeepDiver(bitmap, MupSearchOptions{.tau = 1});
  ASSERT_EQ(mups.size(), 1u);
  EXPECT_EQ(mups[0].ToString(), "1XX");
}

TEST(PaperExamples, AppendixABitVectorsAndCoverage) {
  // Appendix A aggregates Example 1 to four distinct combinations with
  // counts {1, 2, 1, 1} and computes cov(0X1) = 3.
  const Dataset data = Example1();
  const AggregatedData agg(data);
  EXPECT_EQ(agg.num_combinations(), 4u);
  std::multiset<std::uint64_t> counts(agg.counts().begin(),
                                      agg.counts().end());
  EXPECT_EQ(counts, (std::multiset<std::uint64_t>{1, 1, 1, 2}));
  const BitmapCoverage oracle(agg);
  QueryContext qctx;
  EXPECT_EQ(oracle.Coverage(P("0X1", data.schema()), qctx), 3u);
}

// ------------------------------------------------ §III worked examples --

TEST(PaperExamples, SectionIIIBGraphCombinatorics) {
  // Fig. 2: 27 nodes, 54 edges; 6 nodes at level 1, 12 at level 2.
  PatternGraph graph(Schema::Binary(3));
  EXPECT_EQ(graph.NumNodes(), 27u);
  EXPECT_EQ(graph.NumEdges(), 54u);
  EXPECT_EQ(graph.NumNodesAtLevel(1), 6u);
  EXPECT_EQ(graph.NumNodesAtLevel(2), 12u);
}

TEST(PaperExamples, PatternBreakerPitfall) {
  // §III-C's closing example: τ=1, D contains 000 and 010 but nothing
  // matching XX1. XX1 is a MUP; 0X1 is uncovered yet NOT a MUP (dominated).
  Dataset data(Schema::Binary(3));
  data.AppendRow(std::vector<Value>{0, 0, 0});
  data.AppendRow(std::vector<Value>{0, 1, 0});
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsPatternBreaker(oracle, MupSearchOptions{.tau = 1});
  std::set<std::string> names;
  for (const Pattern& p : mups) names.insert(p.ToString());
  EXPECT_TRUE(names.contains("XX1"));
  EXPECT_FALSE(names.contains("0X1"));
}

TEST(PaperExamples, DeepDiverClimbScenario) {
  // §III-E: on Example 1, the dive XXX -> X0X -> 10X reaches the uncovered
  // non-MUP 10X, whose uncovered parent 1XX is the MUP. Verify the
  // coverage relationships the narrative depends on, then the output.
  const Dataset data = Example1();
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const Schema& schema = data.schema();
  QueryContext ctx;
  EXPECT_GE(oracle.Coverage(Pattern::Root(3), ctx), 1u);
  EXPECT_GE(oracle.Coverage(P("X0X", schema), ctx), 1u);
  EXPECT_EQ(oracle.Coverage(P("10X", schema), ctx), 0u);
  EXPECT_EQ(oracle.Coverage(P("1XX", schema), ctx), 0u);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 1});
  ASSERT_EQ(mups.size(), 1u);
  EXPECT_EQ(mups[0].ToString(), "1XX");
}

// ------------------------------------------------------- §IV Example 2 --

Schema Example2Schema() { return Schema::Uniform({2, 3, 3, 2, 2}); }

std::vector<Pattern> Example2LevelTwoTargets(const Schema& schema) {
  return {P("XX01X", schema), P("1X20X", schema), P("XXXX1", schema),
          P("02XXX", schema), P("XX11X", schema), P("111XX", schema)};
}

TEST(PaperExamples, Figure10TreeWalk12110HitsOnlyP5) {
  // §IV-B walks 12110 through the inverted indices and finds it hits only
  // P5 = XX11X.
  const Schema schema = Example2Schema();
  const std::vector<Value> combo = {1, 2, 1, 1, 0};
  const auto targets = Example2LevelTwoTargets(schema);
  std::vector<int> hits;
  for (std::size_t j = 0; j < targets.size(); ++j) {
    if (targets[j].Matches(combo)) hits.push_back(static_cast<int>(j));
  }
  EXPECT_EQ(hits, (std::vector<int>{4}));  // index 4 == P5
}

TEST(PaperExamples, Greedy02011HitsP1P3P4) {
  // "a value combination that hits the maximum number of patterns is 02011,
  // hitting the patterns P1, P3, and P4."
  const Schema schema = Example2Schema();
  const std::vector<Value> combo = {0, 2, 0, 1, 1};
  const auto targets = Example2LevelTwoTargets(schema);
  std::vector<int> hits;
  for (std::size_t j = 0; j < targets.size(); ++j) {
    if (targets[j].Matches(combo)) hits.push_back(static_cast<int>(j));
  }
  EXPECT_EQ(hits, (std::vector<int>{0, 2, 3}));
}

TEST(PaperExamples, GreedySuggestionAndItsSlip) {
  // The paper's run suggests 02011, 02111, 10201. Checking the text against
  // itself: those picks hit P1, P2, P3, P4, P5 (and P7 = X020X via 10201,
  // as Appendix C notes) — but *not* P6 = 111XX, which needs A2 = 1 while
  // every suggested pick has A2 ∈ {0, 2}. Our greedy instead returns three
  // combinations that do hit all six (verified by ValidateHittingSet in
  // hitting_set_test). Pin both facts.
  const Schema schema = Example2Schema();
  const auto targets = Example2LevelTwoTargets(schema);
  const std::vector<std::vector<Value>> paper_picks = {
      {0, 2, 0, 1, 1}, {0, 2, 1, 1, 1}, {1, 0, 2, 0, 1}};
  std::set<std::size_t> hit;
  for (const auto& combo : paper_picks) {
    for (std::size_t j = 0; j < targets.size(); ++j) {
      if (targets[j].Matches(combo)) hit.insert(j);
    }
  }
  EXPECT_EQ(hit, (std::set<std::size_t>{0, 1, 2, 3, 4}));  // P6 missed

  const HittingSetResult ours = GreedyHittingSet(targets, schema);
  EXPECT_EQ(ours.combinations.size(), 3u);
  EXPECT_TRUE(ValidateHittingSet(targets, ours, schema).ok());

  // Exhaustively: no single combination hits four or more targets.
  std::size_t best = 0;
  ASSERT_TRUE(ForEachMatchingCombination(
                  Pattern::Root(5), schema, 1000,
                  [&](const std::vector<Value>& combo) {
                    std::size_t cnt = 0;
                    for (const Pattern& t : targets) cnt += t.Matches(combo);
                    best = std::max(best, cnt);
                  })
                  .ok());
  EXPECT_EQ(best, 3u);
}

TEST(PaperExamples, AppendixCCounterexample1X11X) {
  // Appendix C: 02011/02111/10201 cover every MUP of Example 2 (P7 = X020X
  // included), yet the level-3 pattern 1X11X — a child of P5 — matches none
  // of them, so covering MUPs alone does not reach maximum covered level 3.
  const Schema schema = Example2Schema();
  const std::vector<std::vector<Value>> picks = {
      {0, 2, 0, 1, 1}, {0, 2, 1, 1, 1}, {1, 0, 2, 0, 1}};
  // The picks cover P1..P5 and P7 (P6 is the paper's slip, pinned in
  // GreedySuggestionAndItsSlip above).
  const std::vector<Pattern> covered_mups = {
      P("XX01X", schema), P("1X20X", schema), P("XXXX1", schema),
      P("02XXX", schema), P("XX11X", schema), P("X020X", schema)};
  for (const Pattern& mup : covered_mups) {
    bool hit = false;
    for (const auto& combo : picks) hit = hit || mup.Matches(combo);
    EXPECT_TRUE(hit) << mup.ToString();
  }
  const Pattern child = P("1X11X", schema);
  EXPECT_TRUE(P("XX11X", schema).Dominates(child));
  for (const auto& combo : picks) {
    EXPECT_FALSE(child.Matches(combo));
  }
}

// --------------------------------------------------------- §II theorems --

TEST(PaperExamples, Theorem1CountFormula) {
  // |M| = n + C(n, n/2) for the diagonal construction at τ = n/2 + 1.
  for (int n : {2, 4, 6}) {
    const Dataset data = datagen::MakeDiagonal(n);
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);
    const auto tau = static_cast<std::uint64_t>(n / 2 + 1);
    const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = tau});
    std::uint64_t binom = 1;
    for (int k = 1; k <= n / 2; ++k) {
      binom = binom * static_cast<std::uint64_t>(n - k + 1) /
              static_cast<std::uint64_t>(k);
    }
    EXPECT_EQ(mups.size(), static_cast<std::size_t>(n) + binom) << "n=" << n;
  }
}

TEST(PaperExamples, Theorem2Figure1Reduction) {
  // Figure 1's dataset: the patterns P1..P5 (one deterministic 1 each) are
  // exactly the MUPs at τ = 3, one per edge of the graph.
  const std::vector<std::pair<int, int>> edges = {
      {0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}};
  const Dataset data = datagen::MakeVertexCoverReduction(4, edges);
  EXPECT_EQ(data.num_rows(), 7u);   // |V| + 3
  EXPECT_EQ(data.num_attributes(), 5);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const auto mups = FindMupsDeepDiver(oracle, MupSearchOptions{.tau = 3});
  ASSERT_EQ(mups.size(), 5u);
  QueryContext ctx;
  for (const Pattern& p : mups) {
    EXPECT_EQ(p.level(), 1);
    EXPECT_EQ(p.cell(p.RightmostDeterministic()), 1);
    // Coverage of an edge pattern = its two endpoints.
    EXPECT_EQ(oracle.Coverage(p, ctx), 2u);
  }
}

}  // namespace
}  // namespace coverage

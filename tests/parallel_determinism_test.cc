// The contract of MupSearchOptions::num_threads: for any worker count, the
// parallel PATTERN-BREAKER and DEEPDIVER return *exactly* the serial MUP set
// (same patterns, same order). Exercised on the COMPAS workload and on
// adversarial data whose MUPs sit at many different levels, plus the
// thread-safety contract of a shared BitmapCoverage.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "coverage_lib.h"

namespace coverage {
namespace {

std::string Render(const std::vector<Pattern>& mups) {
  std::string out;
  for (const Pattern& p : mups) {
    out += p.ToString();
    out += '\n';
  }
  return out;
}

class ParallelDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminismTest, PatternBreakerMatchesSerialOnCompas) {
  const Dataset data = datagen::MakeCompas().data;
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options;
  options.tau = 10;
  const auto serial = FindMupsPatternBreaker(oracle, options);
  ASSERT_FALSE(serial.empty());

  options.num_threads = GetParam();
  MupSearchStats stats;
  const auto parallel = FindMupsPatternBreaker(oracle, options, &stats);
  EXPECT_EQ(Render(parallel), Render(serial));
  EXPECT_EQ(stats.num_mups, serial.size());
  // The parallel frontier evaluation issues exactly the serial queries.
  MupSearchStats serial_stats;
  options.num_threads = 1;
  FindMupsPatternBreaker(oracle, options, &serial_stats);
  EXPECT_EQ(stats.coverage_queries, serial_stats.coverage_queries);
  EXPECT_EQ(stats.nodes_generated, serial_stats.nodes_generated);
}

TEST_P(ParallelDeterminismTest, DeepDiverMatchesSerialOnCompas) {
  const Dataset data = datagen::MakeCompas().data;
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options;
  options.tau = 10;
  const auto serial = FindMupsDeepDiver(oracle, options);
  ASSERT_FALSE(serial.empty());

  options.num_threads = GetParam();
  const auto parallel = FindMupsDeepDiver(oracle, options);
  EXPECT_EQ(Render(parallel), Render(serial));
  EXPECT_TRUE(ValidateMupSet(parallel, oracle, options.tau).ok());
}

TEST_P(ParallelDeterminismTest, BothAlgorithmsMatchOnDiagonalData) {
  // MakeDiagonal spreads MUPs across levels; run every dominance mode so the
  // shared-index locking is exercised through all three strategies.
  const Dataset data = datagen::MakeDiagonal(8);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  for (const auto mode : {MupSearchOptions::DominanceMode::kBitmapIndex,
                          MupSearchOptions::DominanceMode::kLinearScan,
                          MupSearchOptions::DominanceMode::kNoPruning}) {
    MupSearchOptions options;
    options.tau = 1;
    options.dominance_mode = mode;
    const auto serial_diver = FindMupsDeepDiver(oracle, options);
    const auto serial_breaker = FindMupsPatternBreaker(oracle, options);
    EXPECT_EQ(Render(serial_diver), Render(serial_breaker));

    options.num_threads = GetParam();
    EXPECT_EQ(Render(FindMupsDeepDiver(oracle, options)),
              Render(serial_diver));
    EXPECT_EQ(Render(FindMupsPatternBreaker(oracle, options)),
              Render(serial_breaker));
  }
}

TEST_P(ParallelDeterminismTest, PatternCombinerMatchesSerialOnCompas) {
  // The sharded level-d pass: identical uncovered-combination map contents
  // for any worker count, so the MUP set and every stat are bit-identical.
  const Dataset data = datagen::MakeCompas(2000, 3).data;
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options;
  options.tau = 10;
  MupSearchStats serial_stats;
  const auto serial = FindMupsPatternCombiner(oracle, options, &serial_stats);
  ASSERT_TRUE(serial.ok());
  ASSERT_FALSE(serial->empty());

  options.num_threads = GetParam();
  MupSearchStats stats;
  const auto parallel = FindMupsPatternCombiner(oracle, options, &stats);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(Render(*parallel), Render(*serial));
  EXPECT_EQ(stats.coverage_queries, serial_stats.coverage_queries);
  EXPECT_EQ(stats.nodes_generated, serial_stats.nodes_generated);
  EXPECT_EQ(stats.num_mups, serial_stats.num_mups);
}

TEST_P(ParallelDeterminismTest, PatternCombinerMatchesSerialOnRandomSchemas) {
  // Property sweep: mixed cardinalities (block sharding cuts across several
  // attribute prefixes) and a tau high enough to leave many uncovered
  // combinations. Parallel output must equal DEEPDIVER's too.
  for (std::uint64_t seed : {3u, 7u, 11u}) {
    Rng rng(seed);
    const Schema schema = Schema::Uniform({3, 2, 4, 2, 3});
    Dataset data(schema);
    std::vector<Value> row(5);
    for (int i = 0; i < 400; ++i) {
      for (int a = 0; a < 5; ++a) {
        row[static_cast<std::size_t>(a)] = static_cast<Value>(std::min(
            rng.NextUint64(static_cast<std::uint64_t>(schema.cardinality(a))),
            rng.NextUint64(
                static_cast<std::uint64_t>(schema.cardinality(a)))));
      }
      data.AppendRow(row);
    }
    const AggregatedData agg(data);
    const BitmapCoverage oracle(agg);
    MupSearchOptions options;
    options.tau = 5;
    const auto serial = FindMupsPatternCombiner(oracle, options);
    ASSERT_TRUE(serial.ok());

    options.num_threads = GetParam();
    const auto parallel = FindMupsPatternCombiner(oracle, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(Render(*parallel), Render(*serial)) << "seed=" << seed;
    options.num_threads = 1;
    EXPECT_EQ(Render(*parallel), Render(FindMupsDeepDiver(oracle, options)))
        << "seed=" << seed;
  }
}

TEST_P(ParallelDeterminismTest, LevelLimitedSearchMatchesSerial) {
  const Dataset data = datagen::MakeAirbnb(20000, 10);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options;
  options.tau = 40;
  options.max_level = 4;
  const auto serial = FindMupsDeepDiver(oracle, options);

  options.num_threads = GetParam();
  EXPECT_EQ(Render(FindMupsDeepDiver(oracle, options)), Render(serial));
  EXPECT_EQ(Render(FindMupsPatternBreaker(oracle, options)), Render(serial));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParallelDeterminismTest,
                         ::testing::Values(1, 2, 8));

TEST(SharedOracle, ConcurrentQueriesOneInstance) {
  // The thread-safety contract of the redesigned oracle: many threads, one
  // BitmapCoverage, one QueryContext per thread. Under TSan this is the
  // canary for any shared mutable query state.
  const Dataset data = datagen::MakeAirbnb(20000, 8);
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  const ScanCoverage reference(data);

  PatternGraph graph(data.schema());
  const auto all = graph.EnumerateAll(1u << 20);
  ASSERT_TRUE(all.ok());

  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      QueryContext ctx;
      QueryContext scan_ctx;
      for (std::size_t i = static_cast<std::size_t>(t); i < all->size();
           i += 8) {
        const Pattern& p = (*all)[i];
        if (oracle.Coverage(p, ctx) != reference.Coverage(p, scan_ctx)) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
        if (oracle.CoverageAtLeast(p, 25, ctx) !=
            (reference.Coverage(p, scan_ctx) >= 25)) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
}

}  // namespace
}  // namespace coverage

#include "pattern/pattern_graph.h"

#include <gtest/gtest.h>

#include <set>

namespace coverage {
namespace {

TEST(PatternGraph, ThreeBinaryAttributesNodeCounts) {
  // §III-B worked example: (2+1)^3 = 27 nodes; 6 at level 1, 12 at level 2.
  const Schema schema = Schema::Binary(3);
  PatternGraph graph(schema);
  EXPECT_EQ(graph.NumNodes(), 27u);
  EXPECT_EQ(graph.NumNodesAtLevel(0), 1u);
  EXPECT_EQ(graph.NumNodesAtLevel(1), 6u);
  EXPECT_EQ(graph.NumNodesAtLevel(2), 12u);
  EXPECT_EQ(graph.NumNodesAtLevel(3), 8u);
}

TEST(PatternGraph, ThreeBinaryAttributesEdgeCount) {
  // §III-B closed form: c * d * (c+1)^(d-1) = 2 * 3 * 9 = 54 edges.
  PatternGraph graph(Schema::Binary(3));
  EXPECT_EQ(graph.NumEdges(), 54u);
}

TEST(PatternGraph, UniformCardinalityClosedForms) {
  // d attributes of cardinality c: level l holds C(d,l) * c^l nodes and the
  // graph holds c*d*(c+1)^(d-1) edges.
  for (int c : {2, 3}) {
    for (int d : {2, 4}) {
      PatternGraph graph(Schema::Uniform(std::vector<int>(
          static_cast<std::size_t>(d), c)));
      std::uint64_t binom = 1;
      std::uint64_t c_pow = 1;
      std::uint64_t total_nodes = 0;
      for (int l = 0; l <= d; ++l) {
        EXPECT_EQ(graph.NumNodesAtLevel(l), binom * c_pow)
            << "c=" << c << " d=" << d << " l=" << l;
        total_nodes += binom * c_pow;
        binom = binom * static_cast<std::uint64_t>(d - l) /
                static_cast<std::uint64_t>(l + 1);
        c_pow *= static_cast<std::uint64_t>(c);
      }
      EXPECT_EQ(graph.NumNodes(), total_nodes);
      std::uint64_t edges = static_cast<std::uint64_t>(c) *
                            static_cast<std::uint64_t>(d);
      for (int i = 0; i < d - 1; ++i) {
        edges *= static_cast<std::uint64_t>(c + 1);
      }
      EXPECT_EQ(graph.NumEdges(), edges);
    }
  }
}

TEST(PatternGraph, MixedCardinalityLevelSum) {
  // Levels must partition all nodes.
  const Schema schema = Schema::Uniform({2, 3, 4});
  PatternGraph graph(schema);
  std::uint64_t total = 0;
  for (int l = 0; l <= 3; ++l) total += graph.NumNodesAtLevel(l);
  EXPECT_EQ(total, graph.NumNodes());
  EXPECT_EQ(graph.NumNodes(), 3u * 4u * 5u);
}

TEST(PatternGraph, EnumerateAllMatchesCount) {
  const Schema schema = Schema::Uniform({2, 3});
  PatternGraph graph(schema);
  auto all = graph.EnumerateAll(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), graph.NumNodes());
  const std::set<Pattern> unique(all->begin(), all->end());
  EXPECT_EQ(unique.size(), all->size());
}

TEST(PatternGraph, EnumerateAllOrderedByLevel) {
  PatternGraph graph(Schema::Binary(3));
  auto all = graph.EnumerateAll(1000);
  ASSERT_TRUE(all.ok());
  int last_level = 0;
  for (const Pattern& p : *all) {
    EXPECT_GE(p.level(), last_level);
    last_level = p.level();
  }
}

TEST(PatternGraph, EnumerateLevelExact) {
  PatternGraph graph(Schema::Binary(3));
  auto level2 = graph.EnumerateLevel(2, 1000);
  ASSERT_TRUE(level2.ok());
  EXPECT_EQ(level2->size(), 12u);
  for (const Pattern& p : *level2) EXPECT_EQ(p.level(), 2);
}

TEST(PatternGraph, EnumerateRespectsLimit) {
  PatternGraph graph(Schema::Binary(20));
  EXPECT_EQ(graph.EnumerateAll(100).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(graph.EnumerateLevel(10, 100).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PatternGraph, EnumerateLevelRejectsBadLevel) {
  PatternGraph graph(Schema::Binary(3));
  EXPECT_FALSE(graph.EnumerateLevel(-1, 10).ok());
  EXPECT_FALSE(graph.EnumerateLevel(4, 10).ok());
}

TEST(PatternGraph, BlueNileShapeHasWideBottom) {
  // §V-C1: the bottom level of the BlueNile pattern graph (cards
  // 10,4,7,8,3,3,5) has more than 100K nodes, vs 128 for 7 binary
  // attributes.
  PatternGraph bn(Schema::Uniform({10, 4, 7, 8, 3, 3, 5}));
  EXPECT_EQ(bn.NumNodesAtLevel(7), 100800u);
  PatternGraph binary(Schema::Binary(7));
  EXPECT_EQ(binary.NumNodesAtLevel(7), 128u);
}

}  // namespace
}  // namespace coverage

#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "pattern/pattern_ops.h"

namespace coverage {
namespace {

Pattern P(const std::string& text, const Schema& schema) {
  auto p = Pattern::Parse(text, schema);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

// --------------------------------------------------------------- Pattern --

TEST(Pattern, RootHasLevelZero) {
  const Pattern root = Pattern::Root(4);
  EXPECT_EQ(root.level(), 0);
  EXPECT_EQ(root.num_attributes(), 4);
  EXPECT_EQ(root.ToString(), "XXXX");
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(root.is_deterministic(i));
}

TEST(Pattern, ParseRoundTrip) {
  const Schema schema = Schema::Binary(4);
  const Pattern p = P("X1X0", schema);
  EXPECT_EQ(p.ToString(), "X1X0");
  EXPECT_EQ(p.level(), 2);
  EXPECT_EQ(p.cell(1), 1);
  EXPECT_EQ(p.cell(0), kWildcard);
}

TEST(Pattern, ParseRejectsBadInput) {
  const Schema schema = Schema::Binary(3);
  EXPECT_FALSE(Pattern::Parse("XX", schema).ok());     // wrong width
  EXPECT_FALSE(Pattern::Parse("XX2", schema).ok());    // out of cardinality
  EXPECT_FALSE(Pattern::Parse("X!0", schema).ok());    // invalid character
  EXPECT_TRUE(Pattern::Parse("x10", schema).ok());     // lowercase x ok
}

TEST(Pattern, ParseBase36Values) {
  const Schema schema = Schema::Uniform({12});
  const Pattern p = P("b", schema);
  EXPECT_EQ(p.cell(0), 11);
  EXPECT_EQ(p.ToString(), "b");
}

TEST(Pattern, MatchesEquationOne) {
  // The worked example under Definition 1: P = X1X0 on four binary
  // attributes; t1 = 1100 and t2 = 0110 match, t3 = 1010 does not.
  const Schema schema = Schema::Binary(4);
  const Pattern p = P("X1X0", schema);
  EXPECT_TRUE(p.Matches(std::vector<Value>{1, 1, 0, 0}));
  EXPECT_TRUE(p.Matches(std::vector<Value>{0, 1, 1, 0}));
  EXPECT_FALSE(p.Matches(std::vector<Value>{1, 0, 1, 0}));
}

TEST(Pattern, RootMatchesEverything) {
  const Pattern root = Pattern::Root(3);
  EXPECT_TRUE(root.Matches(std::vector<Value>{0, 1, 0}));
  EXPECT_TRUE(root.Matches(std::vector<Value>{1, 1, 1}));
}

TEST(Pattern, DominatesWorkedExample) {
  // §II: P2 = 10X1 is dominated by P1 = 1XXX.
  const Schema schema = Schema::Binary(4);
  const Pattern p1 = P("1XXX", schema);
  const Pattern p2 = P("10X1", schema);
  EXPECT_TRUE(p1.Dominates(p2));
  EXPECT_FALSE(p2.Dominates(p1));
}

TEST(Pattern, DominationIsStrict) {
  const Schema schema = Schema::Binary(3);
  const Pattern p = P("1X0", schema);
  EXPECT_FALSE(p.Dominates(p));
  EXPECT_TRUE(p.DominatesOrEquals(p));
}

TEST(Pattern, DominatesRequiresAgreement) {
  const Schema schema = Schema::Binary(3);
  EXPECT_FALSE(P("1XX", schema).Dominates(P("0XX", schema)));
  EXPECT_FALSE(P("1XX", schema).Dominates(P("X11", schema)));
  EXPECT_TRUE(P("XXX", schema).Dominates(P("0XX", schema)));
}

TEST(Pattern, DominanceImpliesMatchSubset) {
  // Property check on a small universe: if P dominates Q then every tuple
  // matching Q matches P.
  const Schema schema = Schema::Uniform({2, 3, 2});
  std::vector<Pattern> all;
  for (Value a = -1; a < 2; ++a) {
    for (Value b = -1; b < 3; ++b) {
      for (Value c = -1; c < 2; ++c) {
        all.push_back(Pattern({a, b, c}));
      }
    }
  }
  std::vector<std::vector<Value>> tuples;
  for (Value a = 0; a < 2; ++a) {
    for (Value b = 0; b < 3; ++b) {
      for (Value c = 0; c < 2; ++c) tuples.push_back({a, b, c});
    }
  }
  for (const Pattern& p : all) {
    for (const Pattern& q : all) {
      if (!p.Dominates(q)) continue;
      for (const auto& t : tuples) {
        if (q.Matches(t)) EXPECT_TRUE(p.Matches(t));
      }
      EXPECT_LT(p.level(), q.level());
    }
  }
}

TEST(Pattern, LevelExamplesFromPaper) {
  const Schema schema = Schema::Binary(4);
  EXPECT_EQ(P("1XXX", schema).level(), 1);
  EXPECT_EQ(P("10X1", schema).level(), 3);
}

TEST(Pattern, ParentsRelaxOneCell) {
  const Schema schema = Schema::Binary(4);
  const Pattern p = P("10X1", schema);
  const auto parents = p.Parents();
  ASSERT_EQ(parents.size(), 3u);
  std::set<std::string> names;
  for (const Pattern& parent : parents) names.insert(parent.ToString());
  EXPECT_EQ(names, (std::set<std::string>{"X0X1", "1XX1", "10XX"}));
  for (const Pattern& parent : parents) {
    EXPECT_TRUE(parent.Dominates(p));
    EXPECT_EQ(parent.level(), p.level() - 1);
  }
}

TEST(Pattern, RootHasNoParents) {
  EXPECT_TRUE(Pattern::Root(3).Parents().empty());
}

TEST(Pattern, RightmostHelpers) {
  const Schema schema = Schema::Binary(5);
  EXPECT_EQ(P("X1X0X", schema).RightmostDeterministic(), 3);
  EXPECT_EQ(P("X1X0X", schema).RightmostWildcard(), 4);
  EXPECT_EQ(P("XXXXX", schema).RightmostDeterministic(), -1);
  EXPECT_EQ(P("01010", schema).RightmostWildcard(), -1);
}

TEST(Pattern, ValueCountDefinitionSeven) {
  // Definition 7's example: P = X1X0 over four binary attributes has value
  // count 2 * 2 = 4.
  const Schema schema = Schema::Binary(4);
  EXPECT_EQ(P("X1X0", schema).ValueCount(schema), 4u);
  EXPECT_EQ(Pattern::Root(4).ValueCount(schema), 16u);
  EXPECT_EQ(P("0101", schema).ValueCount(schema), 1u);
}

TEST(Pattern, ValueCountMixedCardinalities) {
  const Schema schema = Schema::Uniform({2, 3, 5});
  EXPECT_EQ(P("0XX", schema).ValueCount(schema), 15u);
  EXPECT_EQ(P("X2X", schema).ValueCount(schema), 10u);
}

TEST(Pattern, LabelledString) {
  Schema schema({Attribute{"race", {"AA", "C", "Hispanic", "other"}},
                 Attribute{"marital", {"single", "married", "sep", "widowed",
                                       "so", "div", "unk"}}});
  const Pattern p = P("23", schema);
  EXPECT_EQ(p.ToLabelledString(schema), "race=Hispanic, marital=widowed");
  EXPECT_EQ(Pattern::Root(2).ToLabelledString(schema), "<any>");
}

TEST(Pattern, HashConsistentWithEquality) {
  const Schema schema = Schema::Binary(4);
  const Pattern a = P("X1X0", schema);
  const Pattern b = P("X1X0", schema);
  const Pattern c = P("X1X1", schema);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  std::unordered_set<Pattern, PatternHash> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(Pattern, FromTuple) {
  const std::vector<Value> t = {1, 0, 2};
  const Pattern p = Pattern::FromTuple(t);
  EXPECT_EQ(p.level(), 3);
  EXPECT_TRUE(p.Matches(t));
}

// ---------------------------------------------------------- pattern_ops --

TEST(PatternOps, Rule1WorkedExample) {
  // §III-C: node 0XX generates 0X0, 0X1, 00X, 01X; node X1X generates X10
  // and X11.
  const Schema schema = Schema::Binary(3);
  auto to_names = [](const std::vector<Pattern>& ps) {
    std::set<std::string> names;
    for (const Pattern& p : ps) names.insert(p.ToString());
    return names;
  };
  EXPECT_EQ(to_names(Rule1Children(P("0XX", schema), schema)),
            (std::set<std::string>{"00X", "01X", "0X0", "0X1"}));
  EXPECT_EQ(to_names(Rule1Children(P("X1X", schema), schema)),
            (std::set<std::string>{"X10", "X11"}));
}

TEST(PatternOps, Rule1RootGeneratesAllLevelOne) {
  const Schema schema = Schema::Uniform({2, 3});
  const auto children = Rule1Children(Pattern::Root(2), schema);
  EXPECT_EQ(children.size(), 5u);  // 2 + 3 values
}

TEST(PatternOps, Rule1LeafGeneratesNothing) {
  const Schema schema = Schema::Binary(3);
  EXPECT_TRUE(Rule1Children(P("010", schema), schema).empty());
}

TEST(PatternOps, Rule1GeneratorInverts) {
  const Schema schema = Schema::Uniform({2, 3, 2});
  // Every non-root pattern is generated by exactly its Rule-1 generator
  // (Theorem 3): enumerate the whole graph and check.
  for (Value a = -1; a < 2; ++a) {
    for (Value b = -1; b < 3; ++b) {
      for (Value c = -1; c < 2; ++c) {
        const Pattern p({a, b, c});
        if (p.level() == 0) continue;
        const Pattern gen = Rule1Generator(p);
        const auto children = Rule1Children(gen, schema);
        EXPECT_EQ(std::count(children.begin(), children.end(), p), 1);
      }
    }
  }
}

TEST(PatternOps, Rule1ExactlyOnceAcrossLevel) {
  // Theorem 3, global form: generating children of all patterns at one
  // level yields each level-(l+1) pattern exactly once.
  const Schema schema = Schema::Uniform({2, 3, 2, 2});
  std::vector<Pattern> level = {Pattern::Root(4)};
  for (int l = 0; l < 4; ++l) {
    std::vector<Pattern> next;
    for (const Pattern& p : level) {
      for (const Pattern& c : Rule1Children(p, schema)) next.push_back(c);
    }
    std::set<Pattern> unique(next.begin(), next.end());
    EXPECT_EQ(unique.size(), next.size()) << "duplicates at level " << (l + 1);
    level = std::move(next);
  }
}

TEST(PatternOps, Rule2WorkedExamples) {
  // §III-D: X01 generates XX1; 000 generates 00X, 0X0, X00.
  const Schema schema = Schema::Binary(3);
  auto to_names = [](const std::vector<Pattern>& ps) {
    std::set<std::string> names;
    for (const Pattern& p : ps) names.insert(p.ToString());
    return names;
  };
  EXPECT_EQ(to_names(Rule2Parents(P("X01", schema))),
            (std::set<std::string>{"XX1"}));
  EXPECT_EQ(to_names(Rule2Parents(P("000", schema))),
            (std::set<std::string>{"00X", "0X0", "X00"}));
}

TEST(PatternOps, Rule2OnlyRelaxesZeros) {
  const Schema schema = Schema::Binary(3);
  EXPECT_TRUE(Rule2Parents(P("X11", schema)).empty());
  EXPECT_EQ(Rule2Parents(P("X10", schema)).size(), 1u);
}

TEST(PatternOps, Rule2GeneratorInverts) {
  const Schema schema = Schema::Uniform({2, 3, 2});
  for (Value a = -1; a < 2; ++a) {
    for (Value b = -1; b < 3; ++b) {
      for (Value c = -1; c < 2; ++c) {
        const Pattern p({a, b, c});
        if (p.level() == 3) continue;  // leaves have no Rule-2 generator
        const Pattern gen = Rule2Generator(p);
        const auto parents = Rule2Parents(gen);
        EXPECT_EQ(std::count(parents.begin(), parents.end(), p), 1)
            << p.ToString();
      }
    }
  }
}

TEST(PatternOps, PartitionChildrenCoverDisjointly) {
  const Schema schema = Schema::Uniform({2, 3});
  const Pattern p = P("1X", schema);
  const auto children = PartitionChildren(p, schema, 1);
  ASSERT_EQ(children.size(), 3u);
  // Every tuple matching p matches exactly one child.
  for (Value b = 0; b < 3; ++b) {
    const std::vector<Value> t = {1, b};
    int matches = 0;
    for (const Pattern& c : children) matches += c.Matches(t);
    EXPECT_EQ(matches, 1);
  }
}

TEST(PatternOps, DescendantsAtLevelAppendixCExample) {
  // Appendix C: the level-3 subset patterns of P1 = XX01X (5 attrs, A2 and
  // A3 ternary) are 0X01X, 1X01X, X001X, X101X, X201X, XX010, XX011.
  const Schema schema = Schema::Uniform({2, 3, 3, 2, 2});
  const Pattern p1 = P("XX01X", schema);
  auto desc = DescendantsAtLevel(p1, schema, 3, 1000);
  ASSERT_TRUE(desc.ok());
  std::set<std::string> names;
  for (const Pattern& p : *desc) names.insert(p.ToString());
  EXPECT_EQ(names, (std::set<std::string>{"0X01X", "1X01X", "X001X", "X101X",
                                          "X201X", "XX010", "XX011"}));
}

TEST(PatternOps, DescendantsAtSameLevelIsSelf) {
  const Schema schema = Schema::Binary(3);
  const Pattern p = P("1X0", schema);
  auto desc = DescendantsAtLevel(p, schema, 2, 10);
  ASSERT_TRUE(desc.ok());
  ASSERT_EQ(desc->size(), 1u);
  EXPECT_EQ((*desc)[0], p);
}

TEST(PatternOps, DescendantsRejectBadLevel) {
  const Schema schema = Schema::Binary(3);
  EXPECT_FALSE(DescendantsAtLevel(P("1X0", schema), schema, 1, 10).ok());
  EXPECT_FALSE(DescendantsAtLevel(P("1X0", schema), schema, 4, 10).ok());
}

TEST(PatternOps, DescendantsRespectLimit) {
  const Schema schema = Schema::Binary(10);
  const auto result = DescendantsAtLevel(Pattern::Root(10), schema, 5, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(PatternOps, DescendantsCountMatchesCombinatorics) {
  // Root of d=4 binary at level 2: C(4,2) * 2^2 = 24 descendants.
  const Schema schema = Schema::Binary(4);
  auto desc = DescendantsAtLevel(Pattern::Root(4), schema, 2, 1000);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->size(), 24u);
  std::set<Pattern> unique(desc->begin(), desc->end());
  EXPECT_EQ(unique.size(), 24u);
}

TEST(PatternOps, ForEachMatchingCombination) {
  const Schema schema = Schema::Uniform({2, 3, 2});
  const Pattern p = P("1XX", schema);
  std::vector<std::vector<Value>> combos;
  ASSERT_TRUE(ForEachMatchingCombination(
                  p, schema, 100,
                  [&](const std::vector<Value>& c) { combos.push_back(c); })
                  .ok());
  EXPECT_EQ(combos.size(), 6u);
  for (const auto& c : combos) EXPECT_TRUE(p.Matches(c));
  // Lexicographic order, wildcards as odometer.
  EXPECT_EQ(combos.front(), (std::vector<Value>{1, 0, 0}));
  EXPECT_EQ(combos.back(), (std::vector<Value>{1, 2, 1}));
}

TEST(PatternOps, ForEachMatchingCombinationRespectsLimit) {
  const Schema schema = Schema::Binary(20);
  const Status st = ForEachMatchingCombination(
      Pattern::Root(20), schema, 1000, [](const std::vector<Value>&) {});
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(PatternOps, ForEachMatchingFullyDeterministic) {
  const Schema schema = Schema::Binary(3);
  int calls = 0;
  ASSERT_TRUE(ForEachMatchingCombination(P("101", schema), schema, 10,
                                         [&](const std::vector<Value>& c) {
                                           ++calls;
                                           EXPECT_EQ(c, (std::vector<Value>{
                                                            1, 0, 1}));
                                         })
                  .ok());
  EXPECT_EQ(calls, 1);
}

TEST(PatternOps, UnifyMergesDeterministicCells) {
  const Schema schema = Schema::Uniform({2, 3, 3, 2, 2});
  // The combination 02011 hits P1 = XX01X, P3 = XXXX1, P4 = 02XXX
  // (Example 2); their unification is 0201 1 -> "02011"? No: cells fixed by
  // any of them: A1=0 (P4), A2=2 (P4), A3=0 (P1), A4=1 (P1), A5=1 (P3).
  const Pattern u = Unify({*Pattern::Parse("XX01X", schema),
                           *Pattern::Parse("XXXX1", schema),
                           *Pattern::Parse("02XXX", schema)});
  EXPECT_EQ(u.ToString(), "02011");
}

TEST(PatternOps, UnifyKeepsSharedWildcards) {
  const Schema schema = Schema::Binary(4);
  const Pattern u = Unify({*Pattern::Parse("1XXX", schema),
                           *Pattern::Parse("X0XX", schema)});
  EXPECT_EQ(u.ToString(), "10XX");
}

TEST(PatternOps, UnifySingleton) {
  const Schema schema = Schema::Binary(3);
  const Pattern p = *Pattern::Parse("1X0", schema);
  EXPECT_EQ(Unify({p}), p);
}

}  // namespace
}  // namespace coverage

#include "persist/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "persist/codec.h"
#include "persist/fault_fs.h"
#include "persist/wal.h"

namespace coverage {
namespace persist {
namespace {

using DominanceMode = MupSearchOptions::DominanceMode;

Schema NamedSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back({"gender", {"male", "female", "nonbinary"}});
  attrs.push_back({"race", {"white", "black", "asian", "other"}});
  attrs.push_back({"age", {"young", "mid", "old"}});
  return Schema(std::move(attrs));
}

EngineImage MakeImage() {
  EngineImage image;
  image.schema = NamedSchema();
  image.options.tau = 7;
  image.options.max_level = 2;
  image.options.dominance_mode = DominanceMode::kLinearScan;
  image.options.window_max_rows = 100;
  image.options.window_max_epochs = 3;
  image.options.durability = DurabilityMode::kAsync;
  image.epoch = 42;
  image.agg_cells = {Value{0}, Value{1}, Value{2}, Value{2}, Value{3},
                     Value{0}};
  image.agg_counts = {5, 9};
  image.mups = {Pattern({Value{1}, kWildcard, kWildcard}),
                Pattern({kWildcard, Value{2}, Value{0}})};
  Dataset batch(image.schema);
  batch.AppendRow(std::vector<Value>{Value{0}, Value{1}, Value{2}});
  batch.AppendRow(std::vector<Value>{Value{2}, Value{3}, Value{0}});
  image.window_batches.push_back(std::move(batch));
  return image;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("snap_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST(PersistCodec, Crc32cMatchesKnownVectors) {
  // RFC 3720 (iSCSI) test vector: 32 zero bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8a9136aau);
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_NE(Crc32c("abc"), Crc32c("abd"));
}

TEST(PersistCodec, SchemaRoundtripsNamesAndDictionaries) {
  const Schema schema = NamedSchema();
  ByteWriter out;
  EncodeSchema(schema, &out);
  ByteReader in(out.data());
  auto back = DecodeSchema(&in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(in.Done());
  EXPECT_EQ(*back, schema);
  EXPECT_EQ(back->attribute(0).name, "gender");
  EXPECT_EQ(back->attribute(1).value_names[2], "asian");
}

TEST(PersistCodec, RowsRoundtripAndValidateRange) {
  const Schema schema = Schema::Uniform({2, 3});
  Dataset data(schema);
  data.AppendRow(std::vector<Value>{Value{1}, Value{2}});
  data.AppendRow(std::vector<Value>{Value{0}, Value{0}});
  ByteWriter out;
  EncodeRows(data, &out);
  ByteReader in(out.data());
  auto back = DecodeRows(schema, &in);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->row(0)[1], Value{2});

  // The same bytes against a narrower schema must fail validation.
  ByteReader narrow(out.data());
  EXPECT_FALSE(DecodeRows(Schema::Binary(2), &narrow).ok());
}

TEST(PersistCodec, ValuesRoundtripWildcard) {
  ByteWriter out;
  out.PutValues({Value{3}, kWildcard, Value{0}});
  ByteReader in(out.data());
  std::vector<Value> values;
  ASSERT_TRUE(in.GetValues(&values).ok());
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[1], kWildcard);
}

TEST(PersistCodec, TruncatedInputFailsNotCrashes) {
  const Schema schema = NamedSchema();
  ByteWriter out;
  EncodeSchema(schema, &out);
  const std::string full = out.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader in(std::string_view(full).substr(0, cut));
    auto decoded = DecodeSchema(&in);
    // Either a clean decode error, or a decode that consumed fewer bytes —
    // never a crash, never an allocation explosion.
    if (decoded.ok()) EXPECT_LT(cut, full.size());
  }
}

TEST(PersistCodec, EngineOptionsPersistProblemKnobsOnly) {
  EngineOptions options;
  options.tau = 13;
  options.max_level = -1;
  options.num_threads = 11;  // runtime knob: must NOT persist
  options.dominance_mode = DominanceMode::kNoPruning;
  options.window_max_rows = 77;
  options.durability = DurabilityMode::kFsync;
  ByteWriter out;
  EncodeEngineOptions(options, &out);
  ByteReader in(out.data());
  EngineOptions back;
  ASSERT_TRUE(DecodeEngineOptions(&in, &back).ok());
  EXPECT_EQ(back.tau, 13u);
  EXPECT_EQ(back.max_level, -1);
  EXPECT_EQ(back.dominance_mode, DominanceMode::kNoPruning);
  EXPECT_EQ(back.window_max_rows, 77u);
  EXPECT_EQ(back.durability, DurabilityMode::kFsync);
  EXPECT_NE(back.num_threads, 11);  // decoded to the default, not persisted
}

TEST(PersistSnapshotNames, FileNamesSortAndParse) {
  EXPECT_EQ(SnapshotFileName(7), "snap-00000000000000000007.ckpt");
  EXPECT_EQ(WalFileName(0), "wal-00000000000000000000.log");
  EXPECT_LT(SnapshotFileName(9), SnapshotFileName(10));  // lexicographic
  EXPECT_EQ(ParseSnapshotFileName(SnapshotFileName(123)), 123u);
  EXPECT_EQ(ParseWalFileName(WalFileName(456)), 456u);
  EXPECT_FALSE(ParseSnapshotFileName("snap-x.ckpt").has_value());
  EXPECT_FALSE(ParseSnapshotFileName(WalFileName(1)).has_value());
  EXPECT_FALSE(ParseWalFileName("wal.log").has_value());
}

TEST_F(SnapshotTest, ImageRoundtripsThroughFile) {
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDirs(dir_).ok());
  const EngineImage image = MakeImage();
  ASSERT_TRUE(WriteSnapshotFile(fs, dir_, image).ok());

  const std::string path = dir_ + "/" + SnapshotFileName(image.epoch);
  ASSERT_TRUE(fs->Exists(path));
  auto back = ReadSnapshotFile(fs, path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->schema, image.schema);
  EXPECT_EQ(back->epoch, 42u);
  EXPECT_EQ(back->options.tau, 7u);
  EXPECT_EQ(back->options.dominance_mode, DominanceMode::kLinearScan);
  EXPECT_EQ(back->agg_cells, image.agg_cells);
  EXPECT_EQ(back->agg_counts, image.agg_counts);
  EXPECT_EQ(back->mups, image.mups);
  ASSERT_EQ(back->window_batches.size(), 1u);
  EXPECT_EQ(back->window_batches[0].num_rows(), 2u);
}

TEST_F(SnapshotTest, CorruptByteAnywhereIsDetected) {
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDirs(dir_).ok());
  ASSERT_TRUE(WriteSnapshotFile(fs, dir_, MakeImage()).ok());
  const std::string path = dir_ + "/" + SnapshotFileName(42);
  auto raw = fs->ReadFileToString(path);
  ASSERT_TRUE(raw.ok());

  // Flip one byte at a handful of positions spread over the file (every
  // position would be O(n^2); the checksum covers the whole body anyway).
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{9}, raw->size() / 2, raw->size() - 1}) {
    std::string damaged = *raw;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x01);
    const std::string damaged_path = dir_ + "/damaged.ckpt";
    std::filesystem::remove(damaged_path);
    auto file = fs->NewWritableFile(damaged_path, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(damaged).ok());
    ASSERT_TRUE((*file)->Close().ok());
    EXPECT_FALSE(ReadSnapshotFile(fs, damaged_path).ok())
        << "undetected corruption at byte " << pos;
  }
}

TEST_F(SnapshotTest, InterruptedWriteLeavesNoGeneration) {
  FaultFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDirs(dir_).ok());
  fs.FailNextRename(Status::Internal("injected rename failure"));
  EXPECT_FALSE(WriteSnapshotFile(&fs, dir_, MakeImage()).ok());
  // No snapshot committed, no tmp litter that a listing would trip on.
  auto listing = ListSessionDir(&fs, dir_);
  ASSERT_TRUE(listing.ok());
  EXPECT_TRUE(listing->snapshot_epochs.empty());
}

TEST_F(SnapshotTest, ListSessionDirSortsAndIgnoresStrangers) {
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDirs(dir_).ok());
  for (const std::uint64_t epoch : {30u, 7u, 100u}) {
    EngineImage image = MakeImage();
    image.epoch = epoch;
    ASSERT_TRUE(WriteSnapshotFile(fs, dir_, image).ok());
  }
  auto writer = WalWriter::Open(fs, dir_ + "/" + WalFileName(7), true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto stranger = fs->NewWritableFile(dir_ + "/README.txt", true);
  ASSERT_TRUE(stranger.ok());
  ASSERT_TRUE((*stranger)->Close().ok());

  auto listing = ListSessionDir(fs, dir_);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->snapshot_epochs,
            (std::vector<std::uint64_t>{7, 30, 100}));
  EXPECT_EQ(listing->wal_bases, (std::vector<std::uint64_t>{7}));

  // A missing directory is an empty session, not an error.
  auto missing = ListSessionDir(fs, dir_ + "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
}

}  // namespace
}  // namespace persist
}  // namespace coverage

// The kAuto planner's worker pick (PlannerDecision::num_threads): serial
// callers get byte-identical rationales (the golden CLI transcripts pin
// them), small pattern graphs stay serial regardless of the cap, large
// graphs fan out up to the root's fan-out, and the service-level audit
// clamps the pick to the shared ThreadBudget and releases the reservation
// when the search returns.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "coverage/bitmap_coverage.h"
#include "datagen/compas.h"
#include "dataset/aggregate.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "mups/mups.h"
#include "service/coverage_service.h"
#include "service/pool_arena.h"

namespace coverage {
namespace {

std::string Render(const std::vector<Pattern>& mups) {
  std::string out;
  for (const Pattern& p : mups) {
    out += p.ToString();
    out += '\n';
  }
  return out;
}

/// A {7,7,7,7} relation: 8^4 = 4096 pattern-graph nodes, exactly at the
/// planner's parallel threshold, with root fan-out 28.
Dataset MakeWideUniform(std::size_t rows) {
  Dataset data(Schema::Uniform({7, 7, 7, 7}));
  Rng rng(7);
  std::vector<Value> row(4);
  for (std::size_t i = 0; i < rows; ++i) {
    for (int a = 0; a < 4; ++a) {
      row[a] = static_cast<Value>(rng.NextUint64(7));
    }
    data.AppendRow(row);
  }
  return data;
}

TEST(PlannerThreads, SerialCapKeepsRationaleByteIdentical) {
  const AggregatedData agg(datagen::MakeCompas().data);
  MupSearchOptions options;
  options.tau = 10;
  options.num_threads = 1;
  const PlannerDecision serial = PlanMupSearch(agg, options);
  EXPECT_EQ(serial.num_threads, 1);
  // COMPAS's graph sits under the parallel threshold, so a parallel cap
  // answers serial too — with the reasoning appended after the serial
  // planner's exact sentence (which golden transcripts pin).
  ASSERT_LT(agg.schema().NumPatterns(), kPlannerParallelMinPatternGraph);
  options.num_threads = 8;
  const PlannerDecision capped = PlanMupSearch(agg, options);
  EXPECT_EQ(capped.num_threads, 1);
  EXPECT_EQ(capped.algorithm, serial.algorithm);
  ASSERT_TRUE(capped.rationale.starts_with(serial.rationale));
  EXPECT_NE(capped.rationale.find("serial search"), std::string::npos);
}

TEST(PlannerThreads, LargeGraphFansOutUpToRootFanOut) {
  const AggregatedData agg(MakeWideUniform(500));
  ASSERT_GE(agg.schema().NumPatterns(), kPlannerParallelMinPatternGraph);
  MupSearchOptions options;
  options.tau = 2;
  options.num_threads = 8;
  const PlannerDecision eight = PlanMupSearch(agg, options);
  EXPECT_EQ(eight.num_threads, 8);
  EXPECT_NE(eight.rationale.find("8 workers"), std::string::npos);
  // The cap never exceeds the root's fan-out (sum of cardinalities = 28):
  // workers beyond the top-level partition would idle.
  options.num_threads = 64;
  const PlannerDecision wide = PlanMupSearch(agg, options);
  EXPECT_EQ(wide.num_threads, 28);
  EXPECT_NE(wide.rationale.find("28 workers (root fan-out 28"),
            std::string::npos);
}

TEST(PlannerThreads, AutoDispatchMatchesSerialMupSet) {
  const AggregatedData agg(MakeWideUniform(500));
  const BitmapCoverage oracle(agg);
  MupSearchOptions options;
  options.tau = 2;
  options.num_threads = 1;
  const auto serial = FindMups(MupAlgorithm::kAuto, oracle, options);
  ASSERT_TRUE(serial.ok());
  ASSERT_FALSE(serial->empty());
  options.num_threads = 8;
  const auto parallel = FindMups(MupAlgorithm::kAuto, oracle, options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(Render(*parallel), Render(*serial));
}

TEST(PlannerThreads, ServiceAuditClampsToThreadBudgetAndReleases) {
  // The planner wants 8 workers; the shared budget only has 2 spawnable
  // threads, so the audit runs with 3 (caller + 2) and says so.
  ServiceOptions options;
  options.num_threads = 8;
  options.thread_budget = std::make_shared<ThreadBudget>(2);
  auto service =
      CoverageService::FromDataset(MakeWideUniform(500), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  AuditRequest request;
  request.tau = 2;
  const auto result = service->Audit(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->planner_rationale.find("8 workers"), std::string::npos);
  EXPECT_NE(result->planner_rationale.find("thread budget granted 3 of 8"),
            std::string::npos)
      << result->planner_rationale;
  // The reservation is released once the search returns.
  EXPECT_EQ(options.thread_budget->reserved(), 0);

  // With headroom there is no clamp clause at all.
  ServiceOptions roomy;
  roomy.num_threads = 4;
  roomy.thread_budget = std::make_shared<ThreadBudget>(0);  // unlimited
  auto free_service =
      CoverageService::FromDataset(MakeWideUniform(500), roomy);
  ASSERT_TRUE(free_service.ok());
  const auto unclamped = free_service->Audit(request);
  ASSERT_TRUE(unclamped.ok());
  EXPECT_EQ(unclamped->planner_rationale.find("thread budget"),
            std::string::npos);
  EXPECT_NE(unclamped->planner_rationale.find("4 workers"),
            std::string::npos);
  EXPECT_EQ(Render(unclamped->mups), Render(result->mups));
}

}  // namespace
}  // namespace coverage

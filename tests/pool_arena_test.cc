#include "service/pool_arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/coverage_service.h"

namespace coverage {
namespace {

// ----------------------------------------------------------- ThreadBudget --

TEST(ThreadBudget, UnlimitedGrantsEverything) {
  ThreadBudget budget(0);
  EXPECT_EQ(budget.TryReserve(1000), 1000);
  EXPECT_EQ(budget.reserved(), 1000);
  budget.Release(1000);
  EXPECT_EQ(budget.reserved(), 0);
}

TEST(ThreadBudget, CapsAndGrantsPartially) {
  ThreadBudget budget(5);
  EXPECT_EQ(budget.TryReserve(3), 3);
  EXPECT_EQ(budget.TryReserve(3), 2);  // partial: only 2 left
  EXPECT_EQ(budget.TryReserve(3), 0);  // exhausted
  budget.Release(2);
  EXPECT_EQ(budget.TryReserve(3), 2);
  EXPECT_EQ(budget.TryReserve(0), 0);  // degenerate want
}

// -------------------------------------------------------------- PoolArena --

TEST(PoolArena, SequentialCallersReuseOnePool) {
  PoolArena arena(4, nullptr);
  for (int i = 0; i < 5; ++i) {
    PoolArena::Lease lease = arena.Acquire();
    ASSERT_NE(lease.pool(), nullptr);
    EXPECT_EQ(lease.pool()->num_workers(), 4);
  }
  EXPECT_EQ(arena.pools_created(), 1);
}

TEST(PoolArena, ConcurrentLeasesGetDistinctPools) {
  PoolArena arena(2, nullptr);
  PoolArena::Lease a = arena.Acquire();
  PoolArena::Lease b = arena.Acquire();
  ASSERT_NE(a.pool(), nullptr);
  ASSERT_NE(b.pool(), nullptr);
  EXPECT_NE(a.pool(), b.pool());
  EXPECT_EQ(arena.pools_created(), 2);
}

TEST(PoolArena, BudgetExhaustionFallsBackToInline) {
  // 2 spawned threads of budget; pools of 3 workers spawn 2 each.
  auto budget = std::make_shared<ThreadBudget>(2);
  PoolArena arena(3, budget);
  PoolArena::Lease first = arena.Acquire();
  ASSERT_NE(first.pool(), nullptr);
  EXPECT_EQ(first.pool()->num_workers(), 3);
  // Budget is spent and the only pool is leased: inline lease, no blocking.
  PoolArena::Lease second = arena.Acquire();
  EXPECT_EQ(second.pool(), nullptr);
  // A partial grant right-sizes the pool to what is left.
  budget->Release(0);  // no-op; just documenting the accounting stays at 2
  PoolArena::Lease third = arena.Acquire();
  EXPECT_EQ(third.pool(), nullptr);
}

TEST(PoolArena, PartialGrantRightSizesThePool) {
  auto budget = std::make_shared<ThreadBudget>(3);
  PoolArena arena(3, budget);
  PoolArena::Lease first = arena.Acquire();   // takes 2 of 3
  ASSERT_NE(first.pool(), nullptr);
  EXPECT_EQ(first.pool()->num_workers(), 3);
  PoolArena::Lease second = arena.Acquire();  // only 1 left -> 2 workers
  ASSERT_NE(second.pool(), nullptr);
  EXPECT_EQ(second.pool()->num_workers(), 2);
}

TEST(PoolArena, SerialPoolsAreFreeUnderAnyBudget) {
  auto budget = std::make_shared<ThreadBudget>(0);
  PoolArena arena(1, budget);
  PoolArena::Lease a = arena.Acquire();
  PoolArena::Lease b = arena.Acquire();
  ASSERT_NE(a.pool(), nullptr);
  ASSERT_NE(b.pool(), nullptr);
  EXPECT_EQ(a.pool()->num_workers(), 1);
  EXPECT_EQ(budget->reserved(), 0);  // spawn nothing, cost nothing
}

TEST(PoolArena, SharedBudgetSpansArenas) {
  auto budget = std::make_shared<ThreadBudget>(4);
  PoolArena first(5, budget);   // wants 4 spawned
  PoolArena second(5, budget);
  PoolArena::Lease a = first.Acquire();
  ASSERT_NE(a.pool(), nullptr);
  EXPECT_EQ(a.pool()->num_workers(), 5);
  PoolArena::Lease b = second.Acquire();  // other arena: budget is gone
  EXPECT_EQ(b.pool(), nullptr);
  a = PoolArena::Lease();  // release into first's cache (budget stays held)
  EXPECT_EQ(budget->reserved(), 4);
}

TEST(PoolArena, DestructionReturnsBudget) {
  auto budget = std::make_shared<ThreadBudget>(8);
  {
    PoolArena arena(5, budget);
    PoolArena::Lease lease = arena.Acquire();
    EXPECT_EQ(budget->reserved(), 4);
  }
  EXPECT_EQ(budget->reserved(), 0);
}

// ------------------------------------- concurrent QueryBatch (the point) --

/// The ROADMAP item this PR closes: concurrent QueryBatch callers must not
/// serialise on one shared pool. N threads batch-query one service at once;
/// everyone gets correct results and the arena fans out to multiple pools.
TEST(ConcurrentQueryBatch, CallersFanOutAndAgreeWithSerial) {
  ServiceOptions options;
  options.num_threads = 2;
  auto service = CoverageService::FromSpec(DatagenSpec{"compas", 0, 13, 1},
                                           options);
  ASSERT_TRUE(service.ok());

  QueryBatchRequest request;
  const Schema& schema = service->schema();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    for (Value v = 0; v < static_cast<Value>(schema.cardinality(a)); ++v) {
      request.queries.push_back(
          QueryRequest{Pattern::Root(schema.num_attributes()).WithCell(a, v),
                       0});
    }
  }
  auto expected = service->QueryBatch(request);
  ASSERT_TRUE(expected.ok());

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        auto result = service->QueryBatch(request);
        if (!result.ok() ||
            result->results.size() != expected->results.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < result->results.size(); ++i) {
          if (result->results[i].coverage != expected->results[i].coverage ||
              result->results[i].covered != expected->results[i].covered) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentQueryBatch, SessionsWithSharedBudgetStayCorrect) {
  auto budget = std::make_shared<ThreadBudget>(2);
  CoverageService::SessionOptions options;
  options.tau = 2;
  options.num_threads = 4;  // wants more than the shared budget allows
  options.thread_budget = budget;
  const Schema schema = Schema::Uniform({2, 2, 2});
  auto first = CoverageService::OpenSession(schema, options);
  auto second = CoverageService::OpenSession(schema, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  Dataset rows(schema);
  for (std::size_t r = 0; r < 500; ++r) {
    rows.AppendRow(std::vector<Value>{static_cast<Value>(r % 2),
                                      static_cast<Value>((r / 2) % 2),
                                      static_cast<Value>((r / 4) % 2)});
  }
  ASSERT_TRUE(first->Append(rows).ok());
  ASSERT_TRUE(second->Append(rows).ok());

  QueryBatchRequest request;
  for (const char* text : {"XXX", "0XX", "X1X", "011", "111"}) {
    auto pattern = Pattern::Parse(text, schema);
    ASSERT_TRUE(pattern.ok());
    request.queries.push_back(QueryRequest{*pattern, 0});
  }
  // Both sessions answer concurrently; one of them may run inline when the
  // budget is spent — results must be identical either way.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const auto& session = (t % 2 == 0) ? *first : *second;
      for (int round = 0; round < 10; ++round) {
        auto result = session.QueryBatch(request);
        if (!result.ok() || result->results[0].coverage != 500u) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(budget->reserved(), 2);
}

}  // namespace
}  // namespace coverage

// Server-level observability integration: GET /metrics exposition,
// X-Request-Id propagation, the ?timing=1 per-stage breakdown, the engine
// gauges in /v1/stats, slow-request logging, and the persistence
// histograms fed by durable sessions. Everything drives Handle() directly
// (transport-free); the HTTP transport itself is covered by
// http_server_test.cc and coverage_server_test.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "server/coverage_server.h"
#include "server/json.h"
#include "service/coverage_service.h"

namespace coverage {
namespace {

using http::Request;
using http::Response;
using json::JsonValue;

CoverageService MakeCompasService() {
  ServiceOptions options;
  options.num_threads = 1;
  auto service =
      CoverageService::FromSpec(DatagenSpec{"compas", 0, 13, 42}, options);
  EXPECT_TRUE(service.ok());
  return std::move(*service);
}

Request MakeRequest(const std::string& method, const std::string& target,
                    const std::string& body = "") {
  Request request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

constexpr char kTinySchema[] = R"({
  "schema": {"attributes": [
    {"name": "gender", "values": ["male", "female"]},
    {"name": "age", "values": ["young", "old"]}
  ]},
  "tau": 2
})";

class ServerObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoverageServerOptions options;
    options.session_defaults.tau = 5;
    server_ = std::make_unique<CoverageServer>(MakeCompasService(), options);
  }

  /// Creates a session via the route logic and returns its id.
  std::string OpenTinySession() {
    const Response created =
        server_->Handle(MakeRequest("POST", "/v1/sessions", kTinySchema));
    EXPECT_EQ(created.status, 201) << created.body;
    auto body = json::Parse(created.body);
    EXPECT_TRUE(body.ok());
    return *body->GetString("session_id");
  }

  std::unique_ptr<CoverageServer> server_;
};

// ----------------------------------------------------------- /metrics --

TEST_F(ServerObsTest, MetricsEndpointSpeaksPrometheus) {
  // Generate some traffic first so the route histograms hold counts.
  EXPECT_EQ(server_->Handle(MakeRequest("GET", "/healthz")).status, 200);
  EXPECT_EQ(server_->Handle(MakeRequest("GET", "/healthz")).status, 200);
  EXPECT_EQ(
      server_->Handle(MakeRequest("POST", "/v1/audit", R"({"tau": 30})"))
          .status,
      200);

  const Response response = server_->Handle(MakeRequest("GET", "/metrics"));
  ASSERT_EQ(response.status, 200);
  const std::string* content_type = response.FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(*content_type, obs::kPrometheusContentType);

  const std::string& text = response.body;
  EXPECT_NE(text.find("# TYPE coverage_http_request_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("coverage_http_request_seconds_count{route=\"GET "
                      "/healthz\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("coverage_http_request_seconds_count{route=\"POST "
                      "/v1/audit\"} 1\n"),
            std::string::npos);
  // The audit threaded a trace through plan + search: stage histograms.
  EXPECT_NE(text.find("# TYPE coverage_stage_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("coverage_stage_seconds_count{stage=\"search\"} 1\n"),
            std::string::npos);
  // Callback gauges evaluate live state.
  EXPECT_NE(text.find("coverage_sessions_open 0\n"), std::string::npos);
}

TEST_F(ServerObsTest, EngineGaugesTrackSessionState) {
  const std::string id = OpenTinySession();
  const Response append = server_->Handle(MakeRequest(
      "POST", "/v1/sessions/" + id + "/append",
      R"({"rows": [["male", "young"], ["female", "old"], [0, 1]]})"));
  ASSERT_EQ(append.status, 200) << append.body;

  const Response response = server_->Handle(MakeRequest("GET", "/metrics"));
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("coverage_sessions_open 1\n"),
            std::string::npos);
  EXPECT_NE(response.body.find("coverage_engine_rows 3\n"),
            std::string::npos);
  EXPECT_NE(response.body.find("coverage_engine_epochs 1\n"),
            std::string::npos);
  // (female, young) was never appended: at least one zero-count combination.
  const auto tombstones = response.body.find("coverage_engine_tombstones ");
  ASSERT_NE(tombstones, std::string::npos);
}

// ------------------------------------------------------- X-Request-Id --

TEST_F(ServerObsTest, GeneratesAndEchoesRequestIds) {
  const Response generated = server_->Handle(MakeRequest("GET", "/healthz"));
  const std::string* id = generated.FindHeader("X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->rfind("r-", 0), 0u) << *id;

  Request tagged = MakeRequest("GET", "/healthz");
  tagged.headers.push_back({"X-Request-Id", "caller-supplied-42"});
  const Response echoed = server_->Handle(tagged);
  const std::string* echo = echoed.FindHeader("X-Request-Id");
  ASSERT_NE(echo, nullptr);
  EXPECT_EQ(*echo, "caller-supplied-42");
}

// ----------------------------------------------------------- ?timing=1 --

TEST_F(ServerObsTest, TimingParamAddsStageBreakdown) {
  const Response response = server_->Handle(
      MakeRequest("POST", "/v1/audit?timing=1", R"({"tau": 30})"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto body = json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  const JsonValue* timing = body->Find("timing");
  ASSERT_NE(timing, nullptr) << response.body;
  ASSERT_TRUE(timing->is_object());

  const std::string* request_id = response.FindHeader("X-Request-Id");
  ASSERT_NE(request_id, nullptr);
  EXPECT_EQ(*timing->GetString("request_id"), *request_id);

  const JsonValue* stages = timing->Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->is_object());
  EXPECT_NE(stages->Find("parse"), nullptr);
  EXPECT_NE(stages->Find("plan"), nullptr);
  EXPECT_NE(stages->Find("search"), nullptr);

  // Stage times are positive and bounded by the total.
  const double total = timing->Find("total_seconds")->AsDouble();
  double stage_sum = 0.0;
  for (const auto& [name, seconds] : stages->AsObject()) {
    EXPECT_GE(seconds.AsDouble(), 0.0) << name;
    stage_sum += seconds.AsDouble();
  }
  EXPECT_GT(stage_sum, 0.0);
  EXPECT_LE(stage_sum, total + 1e-6);

  // The audit payload itself is untouched by the timing add-on.
  EXPECT_NE(body->Find("mups"), nullptr);

  // Without the param there is no timing member.
  const Response plain = server_->Handle(
      MakeRequest("POST", "/v1/audit", R"({"tau": 30})"));
  auto plain_body = json::Parse(plain.body);
  ASSERT_TRUE(plain_body.ok());
  EXPECT_EQ(plain_body->Find("timing"), nullptr);
}

TEST_F(ServerObsTest, SessionAppendTimingCoversEngineUpdate) {
  const std::string id = OpenTinySession();
  const Response append = server_->Handle(MakeRequest(
      "POST", "/v1/sessions/" + id + "/append?timing=1",
      R"({"rows": [["male", "young"]]})"));
  ASSERT_EQ(append.status, 200) << append.body;
  auto body = json::Parse(append.body);
  ASSERT_TRUE(body.ok());
  const JsonValue* timing = body->Find("timing");
  ASSERT_NE(timing, nullptr);
  const JsonValue* stages = timing->Find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_NE(stages->Find("engine_update"), nullptr) << append.body;
}

// ------------------------------------------------------------ /v1/stats --

TEST_F(ServerObsTest, StatsExposesEngineSection) {
  const std::string id = OpenTinySession();
  server_->Handle(MakeRequest(
      "POST", "/v1/sessions/" + id + "/append",
      R"({"rows": [["male", "young"], ["male", "old"]]})"));

  const Response response = server_->Handle(MakeRequest("GET", "/v1/stats"));
  ASSERT_EQ(response.status, 200);
  auto body = json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  const JsonValue* engine = body->Find("engine");
  ASSERT_NE(engine, nullptr) << response.body;
  EXPECT_EQ(*engine->GetUint("sessions"), 1u);
  EXPECT_EQ(*engine->GetUint("rows"), 2u);
  EXPECT_NE(engine->Find("mups"), nullptr);
  EXPECT_NE(engine->Find("tombstones"), nullptr);
  EXPECT_NE(engine->Find("window_rows"), nullptr);
  EXPECT_NE(engine->Find("threads_budget"), nullptr);
  // The route table is still there (the pre-obs /v1/stats contract).
  EXPECT_NE(body->Find("routes"), nullptr);
}

// ------------------------------------------------------- slow requests --

/// Restores global log state on scope exit.
struct LogStateGuard {
  ~LogStateGuard() {
    obs::SetLogLevel(obs::LogLevel::kInfo);
    obs::SetLogJson(false);
    obs::SetLogSink(nullptr);
    obs::SetLogRateLimit(50.0, 100.0);
  }
};

TEST(ServerObsSlowRequest, LogsWarnWithStagesAboveThreshold) {
  LogStateGuard guard;
  std::vector<std::string> lines;
  std::mutex mu;
  obs::SetLogSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  obs::SetLogRateLimit(0.0, 0.0);
  obs::SetLogLevel(obs::LogLevel::kWarn);

  CoverageServerOptions options;
  options.slow_request_seconds = 1e-9;  // everything is slow
  CoverageServer server(MakeCompasService(), options);
  const Response response =
      server.Handle(MakeRequest("POST", "/v1/audit", R"({"tau": 30})"));
  ASSERT_EQ(response.status, 200);

  std::lock_guard<std::mutex> lock(mu);
  bool found = false;
  for (const auto& line : lines) {
    if (line.find("slow_request") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("POST /v1/audit"), std::string::npos) << line;
    EXPECT_NE(line.find("request_id="), std::string::npos) << line;
    EXPECT_NE(line.find("search="), std::string::npos) << line;
  }
  EXPECT_TRUE(found) << "no slow_request event was logged";
}

TEST(ServerObsSlowRequest, ZeroThresholdDisablesTheWarn) {
  LogStateGuard guard;
  std::vector<std::string> lines;
  std::mutex mu;
  obs::SetLogSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  obs::SetLogRateLimit(0.0, 0.0);
  obs::SetLogLevel(obs::LogLevel::kWarn);

  CoverageServerOptions options;
  options.slow_request_seconds = 0.0;
  CoverageServer server(MakeCompasService(), options);
  server.Handle(MakeRequest("POST", "/v1/audit", R"({"tau": 30})"));

  std::lock_guard<std::mutex> lock(mu);
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("slow_request"), std::string::npos) << line;
  }
}

// --------------------------------------------------- injected registry --

TEST(ServerObsRegistry, InjectedRegistryReceivesTheSeries) {
  obs::MetricsRegistry registry;
  CoverageServerOptions options;
  options.metrics_registry = &registry;
  CoverageServer server(MakeCompasService(), options);
  EXPECT_EQ(&server.metrics_registry(), &registry);
  server.Handle(MakeRequest("GET", "/healthz"));
  const std::string text = obs::RenderPrometheus(registry);
  EXPECT_NE(text.find("coverage_http_request_seconds_count{route=\"GET "
                      "/healthz\"} 1\n"),
            std::string::npos);
}

// --------------------------------------------------- durable sessions --

TEST(ServerObsDurable, FsyncAndWalHistogramsFillOnAppend) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("server_obs_test_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  {
    CoverageServerOptions options;
    options.data_dir = dir;
    CoverageServer server(MakeCompasService(), options);
    const Response created =
        server.Handle(MakeRequest("POST", "/v1/sessions", kTinySchema));
    ASSERT_EQ(created.status, 201) << created.body;
    const std::string id =
        *json::Parse(created.body)->GetString("session_id");
    const Response append = server.Handle(MakeRequest(
        "POST", "/v1/sessions/" + id + "/append?timing=1",
        R"({"rows": [["male", "young"], ["female", "old"]]})"));
    ASSERT_EQ(append.status, 200) << append.body;

    // The durable path reported its stages into the timing breakdown...
    auto body = json::Parse(append.body);
    ASSERT_TRUE(body.ok());
    const JsonValue* stages = body->Find("timing")->Find("stages");
    ASSERT_NE(stages, nullptr);
    EXPECT_NE(stages->Find("wal_append"), nullptr) << append.body;

    // ...and the fsync histogram the server wired into session defaults
    // recorded the durable append's sync.
    const Response metrics = server.Handle(MakeRequest("GET", "/metrics"));
    const auto pos =
        metrics.body.find("coverage_persist_fsync_seconds_count ");
    ASSERT_NE(pos, std::string::npos);
    const std::string rest = metrics.body.substr(
        pos + std::string("coverage_persist_fsync_seconds_count ").size());
    EXPECT_NE(rest.substr(0, rest.find('\n')), "0");
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace coverage

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/coverage_server.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/json.h"

namespace coverage {
namespace {

using http::HttpClient;
using http::Request;
using http::Response;
using http::ServerOptions;
using json::JsonValue;

/// Zeroes the wall-clock fields in place — the one legitimately
/// nondeterministic part of a response body (same idiom as the
/// byte-equivalence suite in coverage_server_test.cc).
void ZeroTimings(JsonValue& v) {
  if (v.is_array()) {
    for (JsonValue& item : v.AsArray()) ZeroTimings(item);
  } else if (v.is_object()) {
    for (auto& [key, value] : v.AsObject()) {
      if (key == "seconds" || key == "read_seconds" ||
          key == "update_seconds") {
        value = JsonValue(0);
      } else {
        ZeroTimings(value);
      }
    }
  }
}

std::string Normalized(const std::string& json_text) {
  auto parsed = json::Parse(json_text);
  EXPECT_TRUE(parsed.ok()) << json_text;
  if (!parsed.ok()) return "<unparseable>";
  ZeroTimings(*parsed);
  return json::Serialize(*parsed);
}

// ------------------------------------------------ accept-loop hardening --

/// An injected transient accept(2) failure (EMFILE: out of fds) must not
/// kill the accept thread — the server backs off, counts the retry, and
/// keeps serving once the condition clears.
TEST(HttpServerRobustness, TransientAcceptFailureBacksOffAndKeepsServing) {
  std::atomic<int> failures_left{3};
  ServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  options.poll_interval_ms = 5;  // short backoff: the test stays fast
  options.accept_fn = [&](int listen_fd) -> int {
    if (failures_left.fetch_sub(1) > 0) {
      errno = EMFILE;
      return -1;
    }
    return ::accept(listen_fd, nullptr, nullptr);
  };
  http::HttpServer server(options, [](const Request&) {
    return Response::Text(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto response = client->Get("/anything");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_GE(server.stats().accept_retries, 3u);
  server.Stop();
}

/// A helper gate: handlers block on it until the test opens it. Once open
/// it stays open, releasing every waiter.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Bounded wait for an atomic counter — a failed request in a helper
/// thread must fail the test, not hang it forever.
void AwaitAtLeast(const std::atomic<int>& counter, int n) {
  for (int spin = 0; spin < 10000 && counter.load() < n; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(counter.load(), n) << "condition never reached";
}

/// With every worker busy and the handoff queue full, a new connection is
/// shed immediately with 503 + Retry-After instead of waiting forever —
/// and once load drains, the server serves normally again.
TEST(HttpServerRobustness, OverloadShedsWith503AndRetryAfter) {
  Gate gate;
  std::atomic<int> handlers_running{0};
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;  // one worker: easy to saturate
  options.max_pending = 1;
  options.retry_after_seconds = 7;
  http::HttpServer server(options, [&](const Request&) {
    handlers_running.fetch_add(1);
    gate.Wait();
    return Response::Text(200, "slow done");
  });
  ASSERT_TRUE(server.Start().ok());

  // A occupies the only worker.
  std::thread a([&] {
    auto client = HttpClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    auto response = client->Get("/slow");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  });
  AwaitAtLeast(handlers_running, 1);

  {
    // B fills the one queue slot (it is admitted, not yet served).
    auto b = HttpClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(b.ok());
    // Admission happens on the accept thread; give it a moment.
    for (int spin = 0; spin < 200 && server.stats().connections_accepted < 2;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // C finds the queue full and is shed with 503 + Retry-After, served
    // straight from the accept thread — no worker needed, so the rejection
    // is immediate even though the server is saturated.
    auto c = HttpClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(c.ok());
    auto shed = c->Get("/healthz");
    ASSERT_TRUE(shed.ok()) << shed.status().ToString();
    EXPECT_EQ(shed->status, 503);
    const std::string* retry_after = shed->FindHeader("Retry-After");
    ASSERT_NE(retry_after, nullptr);
    EXPECT_EQ(*retry_after, "7");
    EXPECT_GE(server.stats().connections_shed, 1u);

    // Drain: A finishes, then B gets served.
    gate.Open();
    a.join();
    auto b_response = b->Get("/queued");
    ASSERT_TRUE(b_response.ok());
    EXPECT_EQ(b_response->status, 200);
  }  // B's keep-alive connection closes here, releasing the lone worker
  auto fresh = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(fresh.ok());
  auto after = fresh->Get("/after");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200);
  server.Stop();
}

/// A connection that outlived its queue-wait deadline is shed when a
/// worker finally reaches it: its client has likely timed out already.
TEST(HttpServerRobustness, QueueWaitDeadlineShedsStaleConnections) {
  Gate gate;
  std::atomic<int> handlers_running{0};
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.max_pending = 8;
  // Generous enough that A's own pop never trips it on a loaded machine
  // (the shed we test comes from holding B queued far longer below).
  options.max_queue_wait_ms = 250;
  http::HttpServer server(options, [&](const Request&) {
    handlers_running.fetch_add(1);
    gate.Wait();
    return Response::Text(200, "done");
  });
  ASSERT_TRUE(server.Start().ok());

  std::thread a([&] {
    auto client = HttpClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    auto response = client->Get("/slow");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  });
  AwaitAtLeast(handlers_running, 1);

  // B sits in the queue well past the deadline while A holds the worker,
  // then gets shed the moment the worker picks it up.
  auto b = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(b.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  gate.Open();
  a.join();
  auto b_response = b->Get("/stale");
  ASSERT_TRUE(b_response.ok()) << b_response.status().ToString();
  EXPECT_EQ(b_response->status, 503);
  EXPECT_GE(server.stats().connections_shed, 1u);
  server.Stop();
}

// ----------------------------------------------- TTL reaper (fake clock) --

CoverageService SmallService() {
  ServiceOptions options;
  options.num_threads = 1;
  auto service = CoverageService::FromSpec(DatagenSpec{"diagonal", 0, 4, 42},
                                           options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

Request Post(const std::string& target, std::string body) {
  Request r;
  r.method = "POST";
  r.target = target;
  r.body = std::move(body);
  return r;
}

Request Get(const std::string& target) {
  Request r;
  r.method = "GET";
  r.target = target;
  return r;
}

std::string CreateSession(CoverageServer* server, const std::string& body) {
  const Response created = server->Handle(Post("/v1/sessions", body));
  EXPECT_EQ(created.status, 201) << created.body;
  auto parsed = json::Parse(created.body);
  EXPECT_TRUE(parsed.ok());
  return *parsed->GetString("session_id");
}

constexpr const char* kTinySchemaSession = R"({
  "schema": {"attributes": [
    {"name": "gender", "values": ["male", "female"]},
    {"name": "age", "values": ["young", "old"]}
  ]},
  "tau": 2,
  "idle_ttl_seconds": 60
})";

/// Idle sessions are reaped once their TTL elapses on the injected clock;
/// activity (any session verb) resets the idle timer, and ttl 0 means
/// never. Driven through Handle() — no sockets, fully deterministic.
TEST(CoverageServerReaper, IdleTtlReapsOnFakeClockAndActivityResets) {
  auto now = std::chrono::steady_clock::time_point{};
  CoverageServerOptions options;
  options.clock = [&now] { return now; };
  CoverageServer server(SmallService(), options);

  const std::string mortal = CreateSession(&server, kTinySchemaSession);
  const Response immortal_created = server.Handle(Post("/v1/sessions",
                                                       R"({"tau": 2})"));
  ASSERT_EQ(immortal_created.status, 201);  // idle_ttl_seconds defaults to 0
  ASSERT_EQ(server.num_sessions(), 2u);

  // 30s in: touch the mortal session, which restarts its idle clock.
  now += std::chrono::seconds(30);
  const Response audit =
      server.Handle(Post("/v1/sessions/" + mortal + "/audit", ""));
  EXPECT_EQ(audit.status, 200) << audit.body;

  // 59s after the touch: still alive.
  now += std::chrono::seconds(59);
  EXPECT_EQ(server.ReapIdleSessions(), 0u);
  EXPECT_EQ(server.num_sessions(), 2u);

  // 61s after the touch: reaped. The ttl-0 session lives forever.
  now += std::chrono::seconds(2);
  EXPECT_EQ(server.ReapIdleSessions(), 1u);
  EXPECT_EQ(server.num_sessions(), 1u);
  const Response gone =
      server.Handle(Post("/v1/sessions/" + mortal + "/audit", ""));
  EXPECT_EQ(gone.status, 404);
}

class DurableServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_dir_ =
        (std::filesystem::temp_directory_path() /
         ("coverage_server_robustness_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    std::filesystem::remove_all(data_dir_);
  }
  void TearDown() override { std::filesystem::remove_all(data_dir_); }

  std::string data_dir_;
};

/// Reaping a durable session checkpoints and closes it but leaves its
/// on-disk state: the next boot (or explicit recovery) resurrects it.
/// Only DELETE destroys data.
TEST_F(DurableServerTest, ReaperPreservesDurableStateForRecovery) {
  auto now = std::chrono::steady_clock::time_point{};
  CoverageServerOptions options;
  options.clock = [&now] { return now; };
  options.data_dir = data_dir_;
  CoverageServer server(SmallService(), options);
  ASSERT_TRUE(server.RecoverSessions().ok());

  const std::string id = CreateSession(&server, kTinySchemaSession);
  const Response append = server.Handle(
      Post("/v1/sessions/" + id + "/append",
           R"({"rows": [["male", "young"], ["male", "young"],
                        ["female", "old"]]})"));
  ASSERT_EQ(append.status, 200) << append.body;
  const Response before =
      server.Handle(Post("/v1/sessions/" + id + "/audit", ""));
  ASSERT_EQ(before.status, 200);

  now += std::chrono::seconds(61);
  EXPECT_EQ(server.ReapIdleSessions(), 1u);
  EXPECT_EQ(server.num_sessions(), 0u);
  // The reaper checkpointed and closed — the directory survives.
  EXPECT_TRUE(std::filesystem::exists(data_dir_ + "/" + id));

  // Recovery resurrects the session with the identical audit answer.
  ASSERT_TRUE(server.RecoverSessions().ok());
  EXPECT_EQ(server.num_sessions(), 1u);
  const Response after =
      server.Handle(Post("/v1/sessions/" + id + "/audit", ""));
  ASSERT_EQ(after.status, 200);
  EXPECT_EQ(Normalized(after.body), Normalized(before.body));

  // DELETE is the explicit destroy: state is gone for good.
  Request del;
  del.method = "DELETE";
  del.target = "/v1/sessions/" + id;
  const Response deleted = server.Handle(del);
  EXPECT_EQ(deleted.status, 200);
  EXPECT_FALSE(std::filesystem::exists(data_dir_ + "/" + id));
}

// -------------------------------------------- restart / recovery parity --

/// Kill the server object outright (no checkpoint, no graceful close) and
/// boot a fresh one over the same --data-dir: the fsync WAL alone must
/// reproduce the session byte-identically.
TEST_F(DurableServerTest, RestartRecoversSessionsByteIdentically) {
  std::string id;
  std::string before_audit;
  std::string before_query;
  {
    CoverageServerOptions options;
    options.data_dir = data_dir_;
    CoverageServer server(SmallService(), options);
    ASSERT_TRUE(server.RecoverSessions().ok());
    id = CreateSession(&server, R"({
      "schema": {"attributes": [
        {"name": "gender", "values": ["male", "female"]},
        {"name": "age", "values": ["young", "old"]}
      ]},
      "tau": 2,
      "durability": "fsync"
    })");
    ASSERT_EQ(server
                  .Handle(Post("/v1/sessions/" + id + "/append",
                               R"({"rows": [["male", "young"],
                                            ["male", "old"],
                                            ["female", "old"]]})"))
                  .status,
              200);
    ASSERT_EQ(server
                  .Handle(Post("/v1/sessions/" + id + "/retract",
                               R"({"rows": [["male", "old"]]})"))
                  .status,
              200);
    before_audit =
        server.Handle(Post("/v1/sessions/" + id + "/audit", "")).body;
    before_query = server
                       .Handle(Post("/v1/sessions/" + id + "/query",
                                    R"({"patterns": ["0X", "X1", "10"]})"))
                       .body;
  }  // dies without any shutdown courtesy

  CoverageServerOptions options;
  options.data_dir = data_dir_;
  CoverageServer rebooted(SmallService(), options);
  ASSERT_TRUE(rebooted.RecoverSessions().ok());
  ASSERT_EQ(rebooted.num_sessions(), 1u);

  EXPECT_EQ(
      Normalized(
          rebooted.Handle(Post("/v1/sessions/" + id + "/audit", "")).body),
      Normalized(before_audit));
  EXPECT_EQ(
      Normalized(rebooted
                     .Handle(Post("/v1/sessions/" + id + "/query",
                                  R"({"patterns": ["0X", "X1", "10"]})"))
                     .body),
      Normalized(before_query));

  // /v1/stats accounts for the recovery.
  auto stats = json::Parse(rebooted.Handle(Get("/v1/stats")).body);
  ASSERT_TRUE(stats.ok());
  const JsonValue* persist = stats->Find("persist");
  ASSERT_NE(persist, nullptr);
  EXPECT_EQ(*persist->GetUint("sessions_recovered"), 1u);
  EXPECT_EQ(*persist->GetUint("durable_sessions"), 1u);
  EXPECT_EQ(*persist->GetUint("records_replayed"), 2u);  // append + retract
  EXPECT_GT(*persist->GetUint("rows_replayed"), 0u);
  // The recovered session keeps its durability knobs: a fresh append both
  // works and is logged.
  const Response more = rebooted.Handle(
      Post("/v1/sessions/" + id + "/append",
           R"({"rows": [["female", "young"]]})"));
  EXPECT_EQ(more.status, 200) << more.body;
}

/// Requesting a durable knob on a memory-only server is a clean client
/// error, and /v1/stats always carries the persist section (all zeros
/// here) so dashboards never need a conditional.
TEST(CoverageServerPersistStats, MemoryOnlyServerRejectsDurabilityKnob) {
  CoverageServerOptions options;  // no data_dir
  CoverageServer server(SmallService(), options);
  const Response refused = server.Handle(
      Post("/v1/sessions", R"({"tau": 2, "durability": "fsync"})"));
  EXPECT_EQ(refused.status, 400) << refused.body;

  auto stats = json::Parse(server.Handle(Get("/v1/stats")).body);
  ASSERT_TRUE(stats.ok());
  const JsonValue* persist = stats->Find("persist");
  ASSERT_NE(persist, nullptr);
  EXPECT_EQ(*persist->GetUint("durable_sessions"), 0u);
  EXPECT_EQ(*persist->GetUint("sessions_recovered"), 0u);
  EXPECT_EQ(*persist->GetUint("sessions_reaped"), 0u);
  EXPECT_EQ(*persist->GetUint("fsync_calls"), 0u);
}

}  // namespace
}  // namespace coverage

// The CoverageService façade: request validation, audit parity with the
// hand-wired pipeline, the kAuto planner's decision table, ingestion-path
// equivalence, batched query determinism, and the concurrent-batch canary
// (run under TSan in CI).

#include "service/coverage_service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "coverage/scan_coverage.h"
#include "datagen/airbnb.h"
#include "datagen/compas.h"
#include "pattern/pattern_graph.h"

namespace coverage {
namespace {

std::string Render(const std::vector<Pattern>& mups) {
  std::string out;
  for (const Pattern& p : mups) {
    out += p.ToString();
    out += '\n';
  }
  return out;
}

CoverageService MustBuild(const Dataset& data, ServiceOptions options = {}) {
  auto service = CoverageService::FromDataset(data, options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

// -------------------------------------------------- Validate() rejections --

TEST(ServiceValidate, ServiceOptionsRejections) {
  ServiceOptions o;
  o.num_threads = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = ServiceOptions();
  o.num_threads = 1025;
  EXPECT_FALSE(o.Validate().ok());
  o = ServiceOptions();
  o.max_cardinality = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = ServiceOptions();
  o.csv_chunk_rows = 0;
  EXPECT_FALSE(o.Validate().ok());
  EXPECT_TRUE(ServiceOptions().Validate().ok());
}

TEST(ServiceValidate, AuditRequestRejections) {
  AuditRequest r;
  r.tau = 0;
  EXPECT_FALSE(r.Validate().ok());
  r = AuditRequest();
  r.max_level = -2;
  EXPECT_FALSE(r.Validate().ok());
  r = AuditRequest();
  r.enumeration_limit = 0;
  EXPECT_FALSE(r.Validate().ok());
  EXPECT_TRUE(AuditRequest().Validate().ok());
}

TEST(ServiceValidate, EnhanceRequestRejections) {
  EnhanceRequest r;
  r.tau = 0;
  EXPECT_FALSE(r.Validate().ok());
  r = EnhanceRequest();
  r.lambda = -1;
  EXPECT_FALSE(r.Validate().ok());
  r = EnhanceRequest();
  ValidationOracle validator;
  r.rules = {"a in {b}"};
  r.validator = &validator;
  EXPECT_FALSE(r.Validate().ok());  // pick one mechanism, not both
  EXPECT_TRUE(EnhanceRequest().Validate().ok());
}

TEST(ServiceValidate, SessionOptionsRejections) {
  CoverageService::SessionOptions o;
  o.tau = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = CoverageService::SessionOptions();
  o.num_threads = 0;
  EXPECT_FALSE(o.Validate().ok());
  EXPECT_TRUE(CoverageService::SessionOptions().Validate().ok());
}

TEST(ServiceValidate, DatagenSpecRejections) {
  DatagenSpec spec;
  spec.name = "frobnicate";
  EXPECT_FALSE(spec.Validate().ok());
  spec = DatagenSpec{.name = "airbnb", .d = 0};
  EXPECT_FALSE(spec.Validate().ok());
  spec = DatagenSpec{.name = "airbnb", .d = 37};
  EXPECT_FALSE(spec.Validate().ok());
  EXPECT_TRUE(DatagenSpec{.name = "compas"}.Validate().ok());
}

TEST(ServiceValidate, QueryBatchRejectsMalformedPatterns) {
  const auto service = MustBuild(datagen::MakeCompas(500, 3).data);
  QueryBatchRequest bad_width;
  bad_width.queries.push_back(QueryRequest{Pattern::Root(2), 0});
  const auto r1 = service.QueryBatch(bad_width);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  QueryBatchRequest bad_value;
  bad_value.queries.push_back(
      QueryRequest{Pattern(std::vector<Value>{9, kWildcard, kWildcard,
                                              kWildcard}),
                   0});
  const auto r2 = service.QueryBatch(bad_value);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("out-of-range"), std::string::npos);
}

TEST(Service, EntryPointsRejectInvalidRequests) {
  const auto service = MustBuild(datagen::MakeCompas(500, 3).data);
  AuditRequest audit;
  audit.tau = 0;
  EXPECT_EQ(service.Audit(audit).status().code(),
            StatusCode::kInvalidArgument);

  EnhanceRequest enhance;
  enhance.lambda = 9;  // > 4 attributes
  EXPECT_EQ(service.Enhance(enhance).status().code(),
            StatusCode::kInvalidArgument);

  EnhanceRequest bad_rule;
  bad_rule.rules = {"nope nope"};
  const auto r = service.Enhance(bad_rule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad rule"), std::string::npos);
}

// ------------------------------------------------------------ audit parity --

struct ParityCase {
  std::string name;
  MupSearchOptions::DominanceMode mode;
};

class AuditParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(AuditParityTest, MatchesHandWiredPipelineOnCompas) {
  const Dataset data = datagen::MakeCompas(2000, 3).data;
  const std::uint64_t tau = 10;

  // The hand-wired pipeline every consumer used to re-assemble.
  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions search;
  search.tau = tau;
  search.dominance_mode = GetParam().mode;
  const auto expected = FindMupsDeepDiver(oracle, search);
  ASSERT_FALSE(expected.empty());

  const auto service = MustBuild(data);
  AuditRequest request;
  request.tau = tau;
  request.dominance_mode = GetParam().mode;
  const auto result = service.Audit(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Render(result->mups), Render(expected));
  EXPECT_EQ(result->num_rows, data.num_rows());
  EXPECT_EQ(result->tau, tau);
  EXPECT_FALSE(result->planner_rationale.empty());  // kAuto records why
  EXPECT_EQ(result->algorithm,
            ToString(PlanMupSearch(agg, search).algorithm));
  EXPECT_TRUE(ValidateMupSet(result->mups, oracle, tau).ok());
}

TEST_P(AuditParityTest, MatchesHandWiredPipelineOnAirbnb) {
  const Dataset data = datagen::MakeAirbnb(20000, 10);
  const std::uint64_t tau = 40;

  const AggregatedData agg(data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions search;
  search.tau = tau;
  search.dominance_mode = GetParam().mode;
  const auto expected = FindMupsDeepDiver(oracle, search);

  const auto service = MustBuild(data);
  AuditRequest request;
  request.tau = tau;
  request.dominance_mode = GetParam().mode;
  const auto result = service.Audit(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Render(result->mups), Render(expected));
}

INSTANTIATE_TEST_SUITE_P(
    DominanceModes, AuditParityTest,
    ::testing::Values(
        ParityCase{"bitmap", MupSearchOptions::DominanceMode::kBitmapIndex},
        ParityCase{"linear", MupSearchOptions::DominanceMode::kLinearScan},
        ParityCase{"nopruning", MupSearchOptions::DominanceMode::kNoPruning}),
    [](const auto& info) { return info.param.name; });

TEST(Service, ExplicitAlgorithmIsHonoured) {
  const auto service = MustBuild(datagen::MakeCompas(2000, 3).data);
  for (const MupAlgorithm algo :
       {MupAlgorithm::kDeepDiver, MupAlgorithm::kPatternBreaker,
        MupAlgorithm::kPatternCombiner}) {
    AuditRequest request;
    request.tau = 10;
    request.algorithm = algo;
    const auto result = service.Audit(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->algorithm, ToString(algo));
    EXPECT_TRUE(result->planner_rationale.empty());  // no planner involved
  }
}

// --------------------------------------------------- planner decision table --

TEST(Planner, DenseDataPicksDeepDiver) {
  // COMPAS covers ~69% of its 224-combination space: deep MUPs.
  const AggregatedData agg(datagen::MakeCompas(2000, 3).data);
  const PlannerDecision decision = PlanMupSearch(agg, MupSearchOptions{});
  EXPECT_EQ(decision.algorithm, MupAlgorithm::kDeepDiver);
  EXPECT_EQ(decision.max_level, -1);
  EXPECT_NE(decision.rationale.find("DEEPDIVER"), std::string::npos);
}

TEST(Planner, SparseDataPicksPatternBreaker) {
  // 40 distinct rows over a 10^4 space: density 0.4% <= 1/16.
  const Schema schema = Schema::Uniform({10, 10, 10, 10});
  Rng rng(5);
  Dataset data(schema);
  std::vector<Value> row(4);
  for (int i = 0; i < 40; ++i) {
    for (int a = 0; a < 4; ++a) {
      row[static_cast<std::size_t>(a)] =
          static_cast<Value>(rng.NextUint64(10));
    }
    data.AppendRow(row);
  }
  const AggregatedData agg(data);
  const PlannerDecision decision = PlanMupSearch(agg, MupSearchOptions{});
  EXPECT_EQ(decision.algorithm, MupAlgorithm::kPatternBreaker);
  EXPECT_EQ(decision.max_level, -1);
}

TEST(Planner, WideSchemaFallsBackToLevelLimitedSearch) {
  // 3^31 pattern-graph nodes blow the budget: clamp to the general levels.
  const Dataset data = datagen::MakeAirbnb(200, 31);
  const AggregatedData agg(data);
  ASSERT_GT(agg.schema().NumPatterns(), kPlannerPatternGraphBudget);
  const PlannerDecision decision = PlanMupSearch(agg, MupSearchOptions{});
  EXPECT_EQ(decision.algorithm, MupAlgorithm::kDeepDiver);
  EXPECT_EQ(decision.max_level, kPlannerWideMaxLevel);
  EXPECT_NE(decision.rationale.find("level-limited"), std::string::npos);
}

TEST(Planner, ExplicitLevelCapDisablesWideFallback) {
  // A caller-set cap means the wide-schema clamp must not override it; the
  // density rule decides the algorithm (200 rows over 2^31 combos: sparse).
  const Dataset data = datagen::MakeAirbnb(200, 31);
  const AggregatedData agg(data);
  MupSearchOptions options;
  options.max_level = 2;
  const PlannerDecision decision = PlanMupSearch(agg, options);
  EXPECT_EQ(decision.max_level, 2);
  EXPECT_EQ(decision.algorithm, MupAlgorithm::kPatternBreaker);
}

TEST(Planner, FindMupsAutoMatchesResolvedAlgorithm) {
  const AggregatedData agg(datagen::MakeCompas(2000, 3).data);
  const BitmapCoverage oracle(agg);
  MupSearchOptions options;
  options.tau = 10;
  const PlannerDecision decision = PlanMupSearch(agg, options);
  const auto via_auto = FindMups(MupAlgorithm::kAuto, oracle, options);
  ASSERT_TRUE(via_auto.ok());
  MupSearchOptions resolved = options;
  resolved.max_level = decision.max_level;
  const auto direct = FindMups(decision.algorithm, oracle, resolved);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Render(*via_auto), Render(*direct));
}

// -------------------------------------------------- ingestion-path parity --

TEST(Service, IngestionPathsAgree) {
  const Dataset data = datagen::MakeCompas(700, 3).data;
  std::ostringstream csv;
  ASSERT_TRUE(data.WriteCsv(csv).ok());

  // Encode through the same CSV-inference grammar as the streaming paths so
  // the value dictionaries (and therefore the encoded MUPs) line up.
  std::istringstream reparse(csv.str());
  auto inferred = Dataset::InferFromCsv(reparse);
  ASSERT_TRUE(inferred.ok());
  const auto from_dataset = MustBuild(*inferred);

  std::istringstream stream(csv.str());
  auto from_csv = CoverageService::FromCsv(stream);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();

  const std::string path = ::testing::TempDir() + "/service_test_compas.csv";
  {
    std::ofstream file(path);
    file << csv.str();
  }
  ServiceOptions small_chunks;
  small_chunks.csv_chunk_rows = 97;  // force many chunks on the file path
  auto from_file = CoverageService::FromCsvFile(path, small_chunks);
  std::remove(path.c_str());
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();

  AuditRequest request;
  request.tau = 10;
  const auto a = from_dataset.Audit(request);
  const auto b = from_csv->Audit(request);
  const auto c = from_file->Audit(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(Render(a->mups), Render(b->mups));
  EXPECT_EQ(Render(a->mups), Render(c->mups));
  EXPECT_EQ(a->num_rows, c->num_rows);
}

TEST(Service, FromSpecBuildsTheNamedDataset) {
  auto service = CoverageService::FromSpec(
      DatagenSpec{.name = "compas", .n = 500, .seed = 9});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(service->num_rows(), 500u);
  EXPECT_EQ(service->schema().num_attributes(), 4);

  EXPECT_EQ(CoverageService::FromSpec(DatagenSpec{.name = "nope"})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Service, FromCsvFileMissingFileIsNotFound) {
  EXPECT_EQ(CoverageService::FromCsvFile("/nonexistent/x.csv").status().code(),
            StatusCode::kNotFound);
}

// ----------------------------------------------------------- query batches --

TEST(Service, QueryBatchMatchesReferenceAndThreadCountsAgree) {
  const Dataset data = datagen::MakeAirbnb(20000, 8);
  ScanCoverage reference(data);
  Rng rng(23);

  QueryBatchRequest request;
  for (int i = 0; i < 300; ++i) {
    std::vector<Value> cells(8, kWildcard);
    for (int a = 0; a < 8; ++a) {
      if (rng.NextBool(0.4)) {
        cells[static_cast<std::size_t>(a)] =
            static_cast<Value>(rng.NextUint64(2));
      }
    }
    // Mix exact counts and threshold probes.
    request.queries.push_back(
        QueryRequest{Pattern(std::move(cells)),
                     (i % 3 == 0) ? 1 + rng.NextUint64(100) : 0});
  }

  ServiceOptions serial_opts;
  serial_opts.num_threads = 1;
  ServiceOptions pooled_opts;
  pooled_opts.num_threads = 8;
  const auto serial = MustBuild(data, serial_opts);
  const auto pooled = MustBuild(data, pooled_opts);

  const auto serial_result = serial.QueryBatch(request);
  const auto pooled_result = pooled.QueryBatch(request);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(pooled_result.ok());
  ASSERT_EQ(serial_result->results.size(), request.queries.size());
  ASSERT_EQ(pooled_result->results.size(), request.queries.size());

  QueryContext ctx;
  for (std::size_t i = 0; i < request.queries.size(); ++i) {
    const QueryRequest& q = request.queries[i];
    const std::uint64_t expected = reference.Coverage(q.pattern, ctx);
    const QueryOutcome& s = serial_result->results[i];
    const QueryOutcome& p = pooled_result->results[i];
    if (q.tau > 0) {
      EXPECT_EQ(s.covered, expected >= q.tau) << i;
    } else {
      EXPECT_EQ(s.coverage, expected) << i;
      EXPECT_EQ(s.covered, expected >= 1) << i;
    }
    // Deterministic result order: worker count never changes an answer.
    EXPECT_EQ(p.coverage, s.coverage) << i;
    EXPECT_EQ(p.covered, s.covered) << i;
  }
}

TEST(Service, ConcurrentQueryBatchCanary) {
  // Several threads share one service and issue batches simultaneously; the
  // batches serialise on the pool, the oracle is immutable, and every answer
  // must be right. This is the TSan canary for the batched path.
  const Dataset data = datagen::MakeAirbnb(10000, 6);
  ScanCoverage reference(data);
  ServiceOptions options;
  options.num_threads = 4;
  const auto service = MustBuild(data, options);

  QueryBatchRequest request;
  PatternGraph graph(data.schema());
  const auto all = graph.EnumerateAll(1u << 12);
  ASSERT_TRUE(all.ok());
  for (const Pattern& p : *all) {
    request.queries.push_back(QueryRequest{p, 0});
  }
  std::vector<std::uint64_t> expected;
  {
    QueryContext ctx;
    for (const Pattern& p : *all) {
      expected.push_back(reference.Coverage(p, ctx));
    }
  }

  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        const auto result = service.QueryBatch(request);
        if (!result.ok()) {
          ++mismatches[static_cast<std::size_t>(t)];
          continue;
        }
        for (std::size_t i = 0; i < expected.size(); ++i) {
          if (result->results[i].coverage != expected[i]) {
            ++mismatches[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
  }
}

// --------------------------------------------------------------- sessions --

TEST(ServiceSession, ChunkedIngestMatchesImmutableService) {
  const Dataset data = datagen::MakeCompas(1500, 3).data;
  std::ostringstream csv;
  ASSERT_TRUE(data.WriteCsv(csv).ok());

  CoverageService::SessionOptions options;
  options.tau = 10;
  auto session = CoverageService::OpenSession(data.schema(), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  std::istringstream stream(csv.str());
  const auto ingest = session->IngestCsv(stream, 256);
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  EXPECT_EQ(ingest->rows, data.num_rows());

  const AuditResult incremental = session->Audit();
  EXPECT_EQ(incremental.algorithm, "ENGINE-INCREMENTAL");
  EXPECT_EQ(incremental.num_rows, data.num_rows());

  const auto service = MustBuild(data);
  AuditRequest request;
  request.tau = 10;
  const auto from_scratch = service.Audit(request);
  ASSERT_TRUE(from_scratch.ok());
  EXPECT_EQ(Render(incremental.mups), Render(from_scratch->mups));

  // Batched probes against the session answer like the immutable service.
  QueryBatchRequest probes;
  probes.queries.push_back(QueryRequest{Pattern::Root(4), 0});
  for (const Pattern& p : incremental.mups) {
    probes.queries.push_back(QueryRequest{p, 0});
    if (probes.queries.size() >= 8) break;
  }
  const auto a = session->QueryBatch(probes);
  const auto b = service.QueryBatch(probes);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < probes.queries.size(); ++i) {
    EXPECT_EQ(a->results[i].coverage, b->results[i].coverage) << i;
  }
}

TEST(ServiceSession, AppendAndRetractRoundTrip) {
  const Schema schema = Schema::Binary(3);
  CoverageService::SessionOptions options;
  options.tau = 1;
  auto session = CoverageService::OpenSession(schema, options);
  ASSERT_TRUE(session.ok());

  Dataset batch(schema);
  batch.AppendRow(std::vector<Value>{0, 1, 0});
  batch.AppendRow(std::vector<Value>{0, 0, 1});
  const auto appended = session->Append(batch);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(session->num_rows(), 2u);

  Dataset gone(schema);
  gone.AppendRow(std::vector<Value>{0, 1, 0});
  const auto retracted = session->Retract(gone);
  ASSERT_TRUE(retracted.ok()) << retracted.status().ToString();
  EXPECT_EQ(session->num_rows(), 1u);

  // Retracting a row that is not present must fail atomically.
  Dataset absent(schema);
  absent.AppendRow(std::vector<Value>{1, 1, 1});
  EXPECT_FALSE(session->Retract(absent).ok());
  EXPECT_EQ(session->num_rows(), 1u);
}

TEST(ServiceSession, RejectsEmptySchemaAndBadOptions) {
  EXPECT_FALSE(CoverageService::OpenSession(Schema()).ok());
  CoverageService::SessionOptions bad;
  bad.tau = 0;
  EXPECT_FALSE(CoverageService::OpenSession(Schema::Binary(2), bad).ok());
}

}  // namespace
}  // namespace coverage

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace coverage {
namespace {

TEST(ThreadPool, ZeroAndNegativeClampToHardwareConcurrency) {
  // The documented contract: <= 0 means "use the hardware", clamped in the
  // constructor so every call site shares one defaulting rule.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int want = hw < 1 ? 1 : hw;
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_workers(), want);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_workers(), want);
  std::atomic<int> calls{0};
  zero.RunOnAll([&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), want);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1);
  int calls = 0;
  pool.RunOnAll([&](int worker) {
    EXPECT_EQ(worker, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RunOnAllInvokesEveryWorkerOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::mutex mu;
  std::set<int> seen;
  pool.RunOnAll([&](int worker) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(worker).second) << "worker ran twice";
  });
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int workers : {1, 2, 3, 8}) {
    ThreadPool pool(workers);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, /*chunk=*/7, [&](int, std::size_t i) {
      hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  std::mutex mu;
  pool.ParallelFor(0, 16, [&](int, std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, 16, [&](int, std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(10, 1, [&](int, std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.RunOnAll([&](int worker) {
        if (worker == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // The pool must survive a throwing job.
  std::atomic<int> calls{0};
  pool.RunOnAll([&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

}  // namespace
}  // namespace coverage

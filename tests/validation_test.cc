#include "enhancement/validation.h"

#include <gtest/gtest.h>

#include "datagen/compas.h"

namespace coverage {
namespace {

TEST(ValidationRule, CreateSortsAndDeduplicates) {
  const Schema schema = Schema::Uniform({3, 4});
  auto rule = ValidationRule::Create(
      {{1, {2, 0, 2}}, {0, {1}}}, schema);
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->terms().size(), 2u);
  EXPECT_EQ(rule->terms()[0].attr, 0);
  EXPECT_EQ(rule->terms()[1].values, (std::vector<Value>{0, 2}));
  EXPECT_EQ(rule->decidable_prefix(), 2);
}

TEST(ValidationRule, CreateRejectsBadInput) {
  const Schema schema = Schema::Uniform({3, 4});
  EXPECT_FALSE(ValidationRule::Create({}, schema).ok());
  EXPECT_FALSE(ValidationRule::Create({{0, {}}}, schema).ok());
  EXPECT_FALSE(ValidationRule::Create({{0, {5}}}, schema).ok());
  EXPECT_FALSE(ValidationRule::Create({{7, {0}}}, schema).ok());
  EXPECT_FALSE(ValidationRule::Create({{0, {1}}, {0, {2}}}, schema).ok());
}

TEST(ValidationRule, SatisfiedByFullCombination) {
  const Schema schema = Schema::Uniform({3, 4, 2});
  auto rule = ValidationRule::Create({{0, {1}}, {2, {0}}}, schema);
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->SatisfiedBy(std::vector<Value>{1, 3, 0}));
  EXPECT_FALSE(rule->SatisfiedBy(std::vector<Value>{1, 3, 1}));
  EXPECT_FALSE(rule->SatisfiedBy(std::vector<Value>{0, 3, 0}));
}

TEST(ValidationRule, SatisfiedByPrefixNeedsDecidability) {
  const Schema schema = Schema::Uniform({3, 4, 2});
  auto rule = ValidationRule::Create({{0, {1}}, {2, {0}}}, schema);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->decidable_prefix(), 3);
  // Prefix of length 2 cannot decide a rule mentioning attribute 2.
  EXPECT_FALSE(rule->SatisfiedByPrefix(std::vector<Value>{1, 3}));
  EXPECT_TRUE(rule->SatisfiedByPrefix(std::vector<Value>{1, 3, 0}));
}

TEST(ValidationRule, PrefixDecidableEarly) {
  const Schema schema = Schema::Uniform({3, 4, 2});
  auto rule = ValidationRule::Create({{0, {2}}}, schema);
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->SatisfiedByPrefix(std::vector<Value>{2}));
  EXPECT_FALSE(rule->SatisfiedByPrefix(std::vector<Value>{1}));
}

TEST(ValidationRule, ParseAgainstCompasLabels) {
  // §V-B3's oracle rules: (a) marital status unknown is ruled out; (b) age
  // group below 20 cannot be non-single.
  const Schema schema = datagen::CompasSchema();
  auto rule_a = ValidationRule::Parse("marital in {unknown}", schema);
  ASSERT_TRUE(rule_a.ok()) << rule_a.status().ToString();
  EXPECT_EQ(rule_a->ToString(schema), "marital in {unknown}");
  // sex=male age=<20 race=AA marital=unknown.
  EXPECT_TRUE(rule_a->SatisfiedBy(std::vector<Value>{0, 0, 0, 6}));
  EXPECT_FALSE(rule_a->SatisfiedBy(std::vector<Value>{0, 0, 0, 0}));

  auto rule_b = ValidationRule::Parse(
      "age in {<20} and marital in {married, separated, widowed, sig-other, "
      "divorced}",
      schema);
  ASSERT_TRUE(rule_b.ok()) << rule_b.status().ToString();
  EXPECT_TRUE(rule_b->SatisfiedBy(std::vector<Value>{0, 0, 0, 1}));
  EXPECT_FALSE(rule_b->SatisfiedBy(std::vector<Value>{0, 1, 0, 1}));
  EXPECT_FALSE(rule_b->SatisfiedBy(std::vector<Value>{0, 0, 0, 0}));
}

TEST(ValidationRule, ParseRejectsGarbage) {
  const Schema schema = datagen::CompasSchema();
  EXPECT_FALSE(ValidationRule::Parse("", schema).ok());
  EXPECT_FALSE(ValidationRule::Parse("marital = unknown", schema).ok());
  EXPECT_FALSE(ValidationRule::Parse("bogus in {x}", schema).ok());
  EXPECT_FALSE(ValidationRule::Parse("marital in {nope}", schema).ok());
}

TEST(ValidationOracle, NoRulesAcceptsEverything) {
  ValidationOracle oracle;
  EXPECT_TRUE(oracle.IsValid(std::vector<Value>{0, 1, 2}));
  EXPECT_FALSE(oracle.PrefixInvalid(std::vector<Value>{0}));
}

TEST(ValidationOracle, AnySatisfiedRuleInvalidates) {
  const Schema schema = Schema::Uniform({2, 2});
  ValidationOracle oracle;
  oracle.AddRule(*ValidationRule::Create({{0, {0}}}, schema));
  oracle.AddRule(*ValidationRule::Create({{1, {1}}}, schema));
  EXPECT_FALSE(oracle.IsValid(std::vector<Value>{0, 0}));  // rule 1
  EXPECT_FALSE(oracle.IsValid(std::vector<Value>{1, 1}));  // rule 2
  EXPECT_TRUE(oracle.IsValid(std::vector<Value>{1, 0}));
  EXPECT_EQ(oracle.num_rules(), 2u);
}

TEST(ValidationOracle, PrefixPruning) {
  const Schema schema = Schema::Uniform({2, 2, 2});
  ValidationOracle oracle;
  oracle.AddRule(*ValidationRule::Create({{0, {1}}, {1, {1}}}, schema));
  EXPECT_FALSE(oracle.PrefixInvalid(std::vector<Value>{1}));
  EXPECT_TRUE(oracle.PrefixInvalid(std::vector<Value>{1, 1}));
  EXPECT_FALSE(oracle.PrefixInvalid(std::vector<Value>{1, 0}));
  EXPECT_TRUE(oracle.PrefixInvalid(std::vector<Value>{1, 1, 0}));
}

TEST(ValidationOracle, PrefixNeverInvalidatesValidExtension) {
  // Property: if PrefixInvalid(prefix) then every extension is invalid.
  const Schema schema = Schema::Uniform({2, 3, 2});
  ValidationOracle oracle;
  oracle.AddRule(*ValidationRule::Create({{0, {1}}, {1, {0, 2}}}, schema));
  oracle.AddRule(*ValidationRule::Create({{2, {0}}}, schema));
  for (Value a = 0; a < 2; ++a) {
    for (Value b = 0; b < 3; ++b) {
      const std::vector<Value> prefix = {a, b};
      if (!oracle.PrefixInvalid(prefix)) continue;
      for (Value c = 0; c < 2; ++c) {
        EXPECT_FALSE(oracle.IsValid(std::vector<Value>{a, b, c}));
      }
    }
  }
}

}  // namespace
}  // namespace coverage

#include "persist/wal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "persist/codec.h"
#include "persist/fault_fs.h"

namespace coverage {
namespace persist {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("wal_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(FileSystem::Default()->CreateDirs(dir_).ok());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  /// Raw file contents via the production read path.
  std::string Slurp(const std::string& path) {
    auto data = FileSystem::Default()->ReadFileToString(path);
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    return data.ok() ? *data : std::string();
  }

  void Overwrite(const std::string& path, const std::string& contents) {
    std::filesystem::remove(path);
    auto file = FileSystem::Default()->NewWritableFile(path, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(contents).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  std::string dir_;
};

TEST_F(WalTest, RoundtripsRecordsInOrder) {
  const std::string path = Path("wal-0.log");
  auto writer = WalWriter::Open(FileSystem::Default(), path, true);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::uint64_t lsn = 0;
  ASSERT_TRUE(
      (*writer)->Append(WalRecordType::kHeader, 0, "schema", &lsn).ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecordType::kAppend, 1, "rows-1", &lsn).ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecordType::kRetract, 2, "rows-2", &lsn).ok());
  ASSERT_TRUE((*writer)->Sync(lsn).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto read = ReadWalSegment(FileSystem::Default(), path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].type, WalRecordType::kHeader);
  EXPECT_EQ(read->records[0].epoch, 0u);
  EXPECT_EQ(read->records[0].body, "schema");
  EXPECT_EQ(read->records[1].type, WalRecordType::kAppend);
  EXPECT_EQ(read->records[1].epoch, 1u);
  EXPECT_EQ(read->records[1].body, "rows-1");
  EXPECT_EQ(read->records[2].type, WalRecordType::kRetract);
  EXPECT_EQ(read->records[2].epoch, 2u);
  EXPECT_EQ(read->records[2].body, "rows-2");
}

TEST_F(WalTest, SyncCoalescesAndReportsStats) {
  const std::string path = Path("wal-0.log");
  auto writer = WalWriter::Open(FileSystem::Default(), path, true);
  ASSERT_TRUE(writer.ok());
  std::uint64_t lsn = 0;
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAppend, 1, "a", &lsn).ok());
  ASSERT_TRUE((*writer)->Sync(lsn).ok());
  // Syncing an already-durable LSN is free: no second fdatasync.
  const std::uint64_t calls = (*writer)->sync_calls();
  ASSERT_TRUE((*writer)->Sync(lsn).ok());
  EXPECT_EQ((*writer)->sync_calls(), calls);
  // Beyond-end LSNs are caller bugs, not silent truncated promises.
  EXPECT_FALSE((*writer)->Sync((*writer)->end_offset() + 1).ok());
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST_F(WalTest, SyncAfterCloseIsOkAppendIsNot) {
  const std::string path = Path("wal-0.log");
  auto writer = WalWriter::Open(FileSystem::Default(), path, true);
  ASSERT_TRUE(writer.ok());
  std::uint64_t lsn = 0;
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAppend, 1, "a", &lsn).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  // A retired segment was superseded by a durable snapshot: Sync keeps its
  // (now trivial) promise, Append must refuse.
  EXPECT_TRUE((*writer)->Sync(lsn).ok());
  EXPECT_FALSE(
      (*writer)->Append(WalRecordType::kAppend, 2, "b", &lsn).ok());
}

TEST_F(WalTest, RejectsWrongMagic) {
  const std::string path = Path("wal-0.log");
  Overwrite(path, "notawal01-and-some-bytes");
  EXPECT_FALSE(ReadWalSegment(FileSystem::Default(), path).ok());
}

TEST_F(WalTest, ChecksumFailureEndsThePrefix) {
  const std::string path = Path("wal-0.log");
  auto writer = WalWriter::Open(FileSystem::Default(), path, true);
  ASSERT_TRUE(writer.ok());
  std::uint64_t lsn = 0;
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAppend, 1, "aaaa", &lsn).ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAppend, 2, "bbbb", &lsn).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  // Flip one byte inside the second record's payload.
  std::string raw = Slurp(path);
  raw[raw.size() - 1] = static_cast<char>(raw[raw.size() - 1] ^ 0x40);
  Overwrite(path, raw);

  auto read = ReadWalSegment(FileSystem::Default(), path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].epoch, 1u);
  EXPECT_FALSE(read->tail_warning.empty());
}

/// Satellite: truncate the segment at EVERY byte offset of the last record
/// and assert recovery always keeps exactly the earlier records, flags the
/// tail, and never errors. This is the complete space of single-record
/// crash damage.
TEST_F(WalTest, TornTailAtEveryByteOffsetOfLastRecord) {
  const std::string path = Path("wal-0.log");
  auto writer = WalWriter::Open(FileSystem::Default(), path, true);
  ASSERT_TRUE(writer.ok());
  std::uint64_t lsn = 0;
  ASSERT_TRUE(
      (*writer)->Append(WalRecordType::kHeader, 0, "header-body", &lsn).ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecordType::kAppend, 1, "first-batch", &lsn).ok());
  const std::uint64_t keep_bytes = (*writer)->end_offset();
  ASSERT_TRUE(
      (*writer)
          ->Append(WalRecordType::kAppend, 2, "the-final-batch", &lsn)
          .ok());
  ASSERT_TRUE((*writer)->Close().ok());

  const std::string full = Slurp(path);
  ASSERT_GT(full.size(), sizeof(kWalMagic) + keep_bytes);
  const std::size_t last_start = sizeof(kWalMagic) + keep_bytes;

  for (std::size_t cut = last_start + 1; cut < full.size(); ++cut) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                 std::to_string(full.size()) + " bytes");
    const std::string trunc_path = Path("trunc.log");
    Overwrite(trunc_path, full.substr(0, cut));
    auto read = ReadWalSegment(FileSystem::Default(), trunc_path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_TRUE(read->torn_tail);
    ASSERT_EQ(read->records.size(), 2u);
    EXPECT_EQ(read->records[0].body, "header-body");
    EXPECT_EQ(read->records[1].body, "first-batch");
    // valid_bytes counts record-stream bytes (the magic is not part of it).
    EXPECT_EQ(read->valid_bytes, keep_bytes);
    EXPECT_FALSE(read->tail_warning.empty());
  }

  // The exact cut at the record boundary is a clean file.
  const std::string clean_path = Path("clean.log");
  Overwrite(clean_path, full.substr(0, last_start));
  auto read = ReadWalSegment(FileSystem::Default(), clean_path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(read->records.size(), 2u);
}

TEST_F(WalTest, RefusesToAppendToTornSegment) {
  const std::string path = Path("wal-0.log");
  {
    auto writer = WalWriter::Open(FileSystem::Default(), path, true);
    ASSERT_TRUE(writer.ok());
    std::uint64_t lsn = 0;
    ASSERT_TRUE(
        (*writer)->Append(WalRecordType::kAppend, 1, "aaaa", &lsn).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  const std::string full = Slurp(path);
  Overwrite(path, full.substr(0, full.size() - 3));
  // Appending after a torn record would hide the damage behind new valid
  // records; Open must refuse (recovery rotates to a fresh segment instead).
  EXPECT_FALSE(WalWriter::Open(FileSystem::Default(), path, false).ok());
}

TEST_F(WalTest, EncodeWalRecordMatchesWriterBytes) {
  const std::string path = Path("wal-0.log");
  auto writer = WalWriter::Open(FileSystem::Default(), path, true);
  ASSERT_TRUE(writer.ok());
  std::uint64_t lsn = 0;
  ASSERT_TRUE((*writer)->Append(WalRecordType::kEvict, 7, "xyz", &lsn).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  const std::string raw = Slurp(path);
  EXPECT_EQ(raw.substr(sizeof(kWalMagic)),
            EncodeWalRecord(WalRecordType::kEvict, 7, "xyz"));
}

TEST_F(WalTest, FaultFsInjectedAppendFailurePoisonsWriter) {
  FaultFs fs(FileSystem::Default());
  const std::string path = Path("wal-0.log");
  auto writer = WalWriter::Open(&fs, path, true);
  ASSERT_TRUE(writer.ok());
  std::uint64_t lsn = 0;
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAppend, 1, "ok", &lsn).ok());
  fs.FailNextAppend(Status::Internal("injected ENOSPC"));
  EXPECT_FALSE((*writer)->Append(WalRecordType::kAppend, 2, "no", &lsn).ok());
  // Poisoned for good: the segment may hold a torn record.
  EXPECT_FALSE((*writer)->Append(WalRecordType::kAppend, 3, "no", &lsn).ok());
  EXPECT_FALSE((*writer)->Sync(lsn).ok());
}

TEST_F(WalTest, FaultFsInjectedSyncFailurePoisonsWriter) {
  FaultFs fs(FileSystem::Default());
  const std::string path = Path("wal-0.log");
  auto writer = WalWriter::Open(&fs, path, true);
  ASSERT_TRUE(writer.ok());
  std::uint64_t lsn = 0;
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAppend, 1, "ok", &lsn).ok());
  fs.FailNextSync(Status::Internal("injected EIO on fsync"));
  EXPECT_FALSE((*writer)->Sync(lsn).ok());
  // A failed fsync makes no durability promise — later calls must not
  // pretend otherwise.
  EXPECT_FALSE((*writer)->Sync(lsn).ok());
  EXPECT_FALSE((*writer)->Append(WalRecordType::kAppend, 2, "no", &lsn).ok());
}

}  // namespace
}  // namespace persist
}  // namespace coverage

// Wire v2 (server/wire_binary.h): exact round-trips on both MUP
// representations (packed sparse-cells and legacy pattern strings), the
// ToJson byte-identity contract, strict rejection of damaged frames, a
// seeded mutation fuzz over the decoders, the >= 60% size win over the
// canonical JSON on a large MUP set, and Accept-header negotiation end to
// end through CoverageServer + HttpClient.

#include "server/wire_binary.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "server/coverage_server.h"
#include "server/http_client.h"
#include "server/json.h"
#include "server/wire.h"
#include "service/coverage_service.h"

namespace coverage {
namespace {

using http::HttpClient;
using http::Request;
using http::Response;
using json::JsonValue;

CoverageService MakeCompasService() {
  auto service =
      CoverageService::FromSpec(DatagenSpec{"compas", 0, 13, 42}, {});
  EXPECT_TRUE(service.ok());
  return std::move(*service);
}

std::string CanonicalJson(const AuditResult& result, const Schema& schema) {
  return json::Serialize(wire::ToJson(result, schema));
}

/// Zeroes every "seconds" member so two independently-timed responses
/// compare on everything that is deterministic.
void ZeroTimings(JsonValue& v) {
  if (v.is_array()) {
    for (JsonValue& item : v.AsArray()) ZeroTimings(item);
  } else if (v.is_object()) {
    for (auto& [key, value] : v.AsObject()) {
      if (key == "seconds") {
        value = JsonValue(0);
      } else {
        ZeroTimings(value);
      }
    }
  }
}

std::string Normalized(const std::string& json_text) {
  auto parsed = json::Parse(json_text);
  EXPECT_TRUE(parsed.ok()) << json_text;
  if (!parsed.ok()) return "<unparseable>";
  ZeroTimings(*parsed);
  return json::Serialize(*parsed);
}

// ------------------------------------------------------- round trips --

TEST(WireBinary, AuditRoundTripPackedIsByteIdenticalInJson) {
  const CoverageService service = MakeCompasService();
  AuditRequest request;
  request.tau = 30;
  request.materialize_patterns = false;  // the server's shape: packed only
  auto result = service.Audit(request);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->packed.has_value());
  ASSERT_TRUE(result->mups.empty());

  const std::string bytes = wire::EncodeAuditResultBinary(*result);
  auto decoded = wire::DecodeAuditResultBinary(bytes, service.schema());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->packed.has_value());
  EXPECT_EQ(CanonicalJson(*decoded, service.schema()),
            CanonicalJson(*result, service.schema()));
}

TEST(WireBinary, AuditRoundTripLegacyIsByteIdenticalInJson) {
  const CoverageService service = MakeCompasService();
  AuditRequest request;
  request.tau = 30;
  auto result = service.Audit(request);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->mups.empty());
  // Drop the packed set: this is the legacy shape (schemas too wide for
  // PatternCodec), which travels as pattern strings (kind 2).
  result->packed.reset();

  const std::string bytes = wire::EncodeAuditResultBinary(*result);
  auto decoded = wire::DecodeAuditResultBinary(bytes, service.schema());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->packed.has_value());
  ASSERT_EQ(decoded->mups.size(), result->mups.size());
  EXPECT_EQ(CanonicalJson(*decoded, service.schema()),
            CanonicalJson(*result, service.schema()));
}

TEST(WireBinary, QueryBatchRoundTripIsByteIdenticalInJson) {
  const CoverageService service = MakeCompasService();
  QueryBatchRequest request;
  const Schema& schema = service.schema();
  std::vector<Value> wildcards(
      static_cast<std::size_t>(schema.num_attributes()), kWildcard);
  request.queries.push_back(QueryRequest{Pattern(wildcards), 0});
  std::vector<Value> first = wildcards;
  first[0] = 0;
  request.queries.push_back(QueryRequest{Pattern(first), 10});
  auto result = service.QueryBatch(request);
  ASSERT_TRUE(result.ok());

  const std::string bytes = wire::EncodeQueryBatchResultBinary(*result);
  auto decoded = wire::DecodeQueryBatchResultBinary(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Byte-identical including the timing: seconds travels as IEEE-754 bits.
  EXPECT_EQ(json::Serialize(wire::ToJson(*decoded)),
            json::Serialize(wire::ToJson(*result)));
}

// ------------------------------------------------------- size on wire --

TEST(WireBinary, LargeMupSetShrinksAtLeastSixtyPercent) {
  // ~10k synthetic level-3 MUPs on a 5-attribute schema: the acceptance
  // bar for the binary encoding's reason to exist.
  const Schema schema = Schema::Uniform({11, 11, 11, 11, 11});
  auto codec = PatternCodec::Build(schema);
  ASSERT_TRUE(codec.ok());

  AuditResult result;
  result.algorithm = "DEEPDIVER";
  result.max_level = -1;
  result.tau = 30;
  result.num_rows = 1000000;
  result.planner_rationale = "synthetic fixture for the size bound";
  result.packed.emplace();
  result.packed->codec = *codec;
  for (int a = 0; a < 11 && result.packed->mups.size() < 10000; ++a) {
    for (int b = 0; b < 11; ++b) {
      for (int c = 0; c < 11; ++c) {
        for (int d = 0; d < 11 && result.packed->mups.size() < 10000; ++d) {
          PackedPattern p = codec->Root();
          p = codec->WithCell(p, 0, static_cast<Value>(a));
          p = codec->WithCell(p, 1, static_cast<Value>(b));
          p = codec->WithCell(p, 2, static_cast<Value>(c));
          p = codec->WithCell(p, 3, static_cast<Value>(d));
          result.packed->mups.push_back(p);
        }
      }
    }
  }
  ASSERT_EQ(result.packed->mups.size(), 10000u);
  result.stats.num_mups = result.packed->mups.size();

  const std::string binary = wire::EncodeAuditResultBinary(result);
  const std::string json_text = CanonicalJson(result, schema);
  EXPECT_LE(binary.size(), json_text.size() * 2 / 5)
      << "binary " << binary.size() << " bytes vs JSON " << json_text.size();

  // And the compact form still decodes to the exact same document.
  auto decoded = wire::DecodeAuditResultBinary(binary, schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(CanonicalJson(*decoded, schema), json_text);
}

// ------------------------------------------------------- strictness --

TEST(WireBinary, RejectsDamagedFrames) {
  const CoverageService service = MakeCompasService();
  AuditRequest request;
  request.tau = 30;
  request.materialize_patterns = false;
  auto result = service.Audit(request);
  ASSERT_TRUE(result.ok());
  const std::string good = wire::EncodeAuditResultBinary(*result);
  ASSERT_TRUE(wire::DecodeAuditResultBinary(good, service.schema()).ok());

  std::string bad = good;
  bad[0] = 'X';  // magic
  EXPECT_FALSE(wire::DecodeAuditResultBinary(bad, service.schema()).ok());

  bad = good;
  bad[4] ^= 0xFF;  // version
  EXPECT_FALSE(wire::DecodeAuditResultBinary(bad, service.schema()).ok());

  bad = good;
  bad[5] = 2;  // msg_type says query batch
  EXPECT_FALSE(wire::DecodeAuditResultBinary(bad, service.schema()).ok());

  bad = good;
  bad.back() ^= 0x01;  // payload flip breaks the CRC
  EXPECT_FALSE(wire::DecodeAuditResultBinary(bad, service.schema()).ok());

  bad = good + "!";  // trailing garbage breaks the CRC-covered length
  EXPECT_FALSE(wire::DecodeAuditResultBinary(bad, service.schema()).ok());

  EXPECT_FALSE(wire::DecodeAuditResultBinary(
                   std::string_view(good).substr(0, 8), service.schema())
                   .ok());
  EXPECT_FALSE(wire::DecodeAuditResultBinary("", service.schema()).ok());
  EXPECT_FALSE(wire::DecodeQueryBatchResultBinary(good).ok());  // wrong type
}

TEST(WireBinary, SeededMutationFuzzNeverCrashes) {
  const CoverageService service = MakeCompasService();
  AuditRequest request;
  request.tau = 30;
  request.materialize_patterns = false;
  auto audit = service.Audit(request);
  ASSERT_TRUE(audit.ok());
  QueryBatchRequest qreq;
  std::vector<Value> wildcards(
      static_cast<std::size_t>(service.schema().num_attributes()), kWildcard);
  qreq.queries.push_back(QueryRequest{Pattern(wildcards), 0});
  auto batch = service.QueryBatch(qreq);
  ASSERT_TRUE(batch.ok());

  const std::string seeds[] = {
      wire::EncodeAuditResultBinary(*audit),
      wire::EncodeQueryBatchResultBinary(*batch),
  };
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 4000; ++i) {
    std::string frame = seeds[i % 2];
    const int flips = 1 + static_cast<int>(rng.NextUint64(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.NextUint64(frame.size());
      frame[at] = static_cast<char>(rng.NextUint64(256));
    }
    if (rng.NextUint64(4) == 0) {
      frame.resize(rng.NextUint64(frame.size() + 1));  // random truncation
    }
    // Either decoder must answer with a Status, never a crash or a hang.
    (void)wire::DecodeAuditResultBinary(frame, service.schema());
    (void)wire::DecodeQueryBatchResultBinary(frame);
  }
}

// ---------------------------------------------------- negotiation e2e --

class WireBinaryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoverageServerOptions options;
    options.http.port = 0;
    options.http.num_threads = 2;
    options.session_defaults.tau = 5;
    server_ = std::make_unique<CoverageServer>(MakeCompasService(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  HttpClient Client(bool accept_binary) {
    HttpClient::Options options;
    options.accept_binary = accept_binary;
    auto client =
        HttpClient::Connect("127.0.0.1", server_->port(), options);
    EXPECT_TRUE(client.ok());
    return std::move(*client);
  }

  std::unique_ptr<CoverageServer> server_;
};

TEST_F(WireBinaryServerTest, AuditNegotiatesBinaryAndMatchesJson) {
  auto json_client = Client(false);
  auto bin_client = Client(true);
  const std::string body = R"({"tau": 30})";

  auto json_response = json_client.Post("/v1/audit", body);
  ASSERT_TRUE(json_response.ok());
  ASSERT_EQ(json_response->status, 200);

  auto bin_response = bin_client.Post("/v1/audit", body);
  ASSERT_TRUE(bin_response.ok());
  ASSERT_EQ(bin_response->status, 200);
  const std::string* content_type = bin_response->FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(*content_type, wire::kBinaryContentType);
  EXPECT_LT(bin_response->body.size(), json_response->body.size());

  auto decoded = wire::DecodeAuditResultBinary(bin_response->body,
                                               server_->service().schema());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(
      Normalized(CanonicalJson(*decoded, server_->service().schema())),
      Normalized(json_response->body));
}

TEST_F(WireBinaryServerTest, QueryNegotiatesBinaryAndMatchesJson) {
  auto json_client = Client(false);
  auto bin_client = Client(true);
  const std::string body = R"({"patterns": ["XXXX", "1XXX", "X0X1"]})";

  auto json_response = json_client.Post("/v1/query", body);
  ASSERT_TRUE(json_response.ok());
  ASSERT_EQ(json_response->status, 200);

  auto bin_response = bin_client.Post("/v1/query", body);
  ASSERT_TRUE(bin_response.ok());
  ASSERT_EQ(bin_response->status, 200);

  auto decoded = wire::DecodeQueryBatchResultBinary(bin_response->body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(Normalized(json::Serialize(wire::ToJson(*decoded))),
            Normalized(json_response->body));
}

TEST_F(WireBinaryServerTest, SessionRoutesNegotiateBinary) {
  auto client = Client(true);
  auto created = client.Post("/v1/sessions", R"({"tau": 5})");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201);
  auto parsed = json::Parse(created->body);
  ASSERT_TRUE(parsed.ok());  // control plane stays JSON even when accepted
  const std::string id = *parsed->GetString("session_id");

  auto appended = client.Post(
      "/v1/sessions/" + id + "/append",
      R"({"rows": [[0, 0, 0, 0], [1, 1, 1, 1]]})");
  ASSERT_TRUE(appended.ok());
  ASSERT_EQ(appended->status, 200);

  auto audit = client.Post("/v1/sessions/" + id + "/audit", "{}");
  ASSERT_TRUE(audit.ok());
  ASSERT_EQ(audit->status, 200);
  const std::string* content_type = audit->FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(*content_type, wire::kBinaryContentType);
  auto decoded = wire::DecodeAuditResultBinary(audit->body,
                                               server_->service().schema());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->algorithm, "ENGINE-INCREMENTAL");

  // Errors stay JSON regardless of the Accept header.
  auto bad = client.Post("/v1/audit", R"({"tau": 0})");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  EXPECT_TRUE(json::Parse(bad->body).ok());
}

}  // namespace
}  // namespace coverage

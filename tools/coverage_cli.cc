// coverage_cli — command-line coverage auditing and remediation for CSV
// files, wrapping the libcoverage API end to end.
//
//   coverage_cli audit   --csv data.csv --tau 30 [--max-level L]
//       Prints the nutritional-label widget and the full MUP list.
//
//   coverage_cli enhance --csv data.csv --tau 30 --lambda 2
//                        [--rule "attr in {v1, v2} and attr2 in {v3}"]...
//       Prints the acquisition plan reaching maximum covered level lambda.
//
//   coverage_cli stats   --csv data.csv
//       Prints the inferred schema and per-attribute value histograms.
//
// The schema is inferred from the CSV: attribute names from the header,
// value dictionaries in order of first appearance (columns with more than
// --max-cardinality distinct values are rejected with a bucketization hint).

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "coverage_lib.h"
#include "tools/coverage_cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return coverage::cli::Run(args, std::cout, std::cerr);
}

#include "tools/coverage_cli_lib.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "coverage_lib.h"
#include "obs/log.h"

namespace coverage {
namespace cli {

namespace {

StatusOr<std::uint64_t> ParseUint(const std::string& flag,
                                  const std::string& text) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    return Status::InvalidArgument("flag " + flag +
                                   " expects a non-negative integer, got '" +
                                   text + "'");
  }
}

}  // namespace

std::string Usage() {
  return
      "usage: coverage_cli <command> [flags]\n"
      "\n"
      "commands:\n"
      "  audit    identify maximal uncovered patterns (MUPs)\n"
      "  enhance  compute the minimal acquisition plan for a target level\n"
      "  query    answer coverage probes for explicit patterns\n"
      "  stats    print the inferred schema and value histograms\n"
      "  help     show this message\n"
      "\n"
      "flags:\n"
      "  --csv PATH              input CSV (header row; categorical values)\n"
      "  --tau N                 coverage threshold (default 30)\n"
      "  --lambda L              enhance: target maximum covered level "
      "(default 1)\n"
      "  --max-level L           audit: limit MUP discovery to level <= L\n"
      "  --max-cardinality N     schema inference cap per column (default "
      "100)\n"
      "  --threads N             worker threads for MUP discovery and\n"
      "                          batched queries (default 1)\n"
      "  --algo NAME             audit: auto | deepdiver | breaker |\n"
      "                          combiner | apriori | naive. auto (default)\n"
      "                          lets the planner pick from the schema and\n"
      "                          data shape and reports its choice\n"
      "  --rule \"A in {v1, v2}\"  enhance: validation rule (repeatable)\n"
      "  --list-mups             audit: print every MUP, not only the label\n"
      "  --json                  audit/query: emit the JSON wire format\n"
      "                          (byte-identical content to what\n"
      "                          coverage_server sends for the same request)\n"
      "  --engine                audit: stream the CSV through the\n"
      "                          incremental CoverageEngine instead of\n"
      "                          loading it whole (two passes over the file:\n"
      "                          schema discovery, then chunked ingest)\n"
      "  --chunk-rows N          engine: rows per ingest chunk (default "
      "65536)\n"
      "  --window-rows N         engine: sliding window — audit only the\n"
      "                          last N rows of the stream; each chunk\n"
      "                          evicts the oldest chunks past the cap\n"
      "                          (requires --engine)\n"
      "  --pattern P             query: a pattern in paper notation, e.g.\n"
      "                          X1X0 (repeatable)\n"
      "  --batch-file PATH       query: file of patterns, one per line\n"
      "                          (blank lines and # comments skipped), all\n"
      "                          answered concurrently over --threads\n"
      "  --log-level LEVEL       structured-log threshold on stderr:\n"
      "                          debug | info | warn | error | off\n"
      "                          (default warn)\n"
      "  --log-json              emit logs as JSON lines instead of text\n";
}

namespace {

/// One vocabulary for algorithm names everywhere: --algo shares the wire
/// format's decoder, so the CLI and the server accept identical spellings.
StatusOr<MupAlgorithm> ParseAlgo(const std::string& name) {
  auto algorithm = wire::AlgorithmFromName(name);
  if (!algorithm.ok()) {
    return Status::InvalidArgument("bad --algo: " +
                                   algorithm.status().message());
  }
  return algorithm;
}

}  // namespace

StatusOr<CliOptions> ParseArgs(const std::vector<std::string>& args) {
  CliOptions options;
  if (args.empty()) {
    return Status::InvalidArgument("missing command\n" + Usage());
  }
  options.command = args[0];
  if (options.command == "help" || options.command == "--help" ||
      options.command == "-h") {
    options.command = "help";
    return options;
  }
  if (options.command != "audit" && options.command != "enhance" &&
      options.command != "query" && options.command != "stats") {
    return Status::InvalidArgument("unknown command '" + options.command +
                                   "'\n" + Usage());
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag " + flag + " expects a value");
      }
      return args[++i];
    };
    if (flag == "--csv") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.csv_path = *v;
    } else if (flag == "--tau") {
      auto v = next();
      if (!v.ok()) return v.status();
      auto parsed = ParseUint(flag, *v);
      if (!parsed.ok()) return parsed.status();
      if (*parsed == 0) {
        return Status::InvalidArgument("--tau must be positive");
      }
      options.tau = *parsed;
    } else if (flag == "--lambda") {
      auto v = next();
      if (!v.ok()) return v.status();
      auto parsed = ParseUint(flag, *v);
      if (!parsed.ok()) return parsed.status();
      options.lambda = static_cast<int>(*parsed);
    } else if (flag == "--max-level") {
      auto v = next();
      if (!v.ok()) return v.status();
      auto parsed = ParseUint(flag, *v);
      if (!parsed.ok()) return parsed.status();
      options.max_level = static_cast<int>(*parsed);
    } else if (flag == "--max-cardinality") {
      auto v = next();
      if (!v.ok()) return v.status();
      auto parsed = ParseUint(flag, *v);
      if (!parsed.ok()) return parsed.status();
      if (*parsed == 0) {
        return Status::InvalidArgument("--max-cardinality must be positive");
      }
      options.max_cardinality = static_cast<int>(*parsed);
    } else if (flag == "--threads" || flag.starts_with("--threads=")) {
      std::string text;
      if (flag == "--threads") {
        auto v = next();
        if (!v.ok()) return v.status();
        text = *v;
      } else {
        text = flag.substr(std::string("--threads=").size());
      }
      auto parsed = ParseUint("--threads", text);
      if (!parsed.ok()) return parsed.status();
      if (*parsed == 0 || *parsed > 1024) {
        return Status::InvalidArgument("--threads must be within [1, 1024]");
      }
      options.threads = static_cast<int>(*parsed);
    } else if (flag == "--algo") {
      auto v = next();
      if (!v.ok()) return v.status();
      auto algo = ParseAlgo(*v);
      if (!algo.ok()) return algo.status();
      options.algo = *v;
    } else if (flag == "--rule") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.rules.push_back(*v);
    } else if (flag == "--pattern") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.patterns.push_back(*v);
    } else if (flag == "--batch-file") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.batch_file = *v;
    } else if (flag == "--log-level") {
      auto v = next();
      if (!v.ok()) return v.status();
      obs::LogLevel parsed;
      if (!obs::ParseLogLevel(*v, &parsed)) {
        return Status::InvalidArgument(
            "--log-level must be debug, info, warn, error or off");
      }
      options.log_level = *v;
    } else if (flag == "--log-json") {
      options.log_json = true;
    } else if (flag == "--list-mups") {
      options.list_mups = true;
    } else if (flag == "--json") {
      options.json = true;
    } else if (flag == "--engine") {
      options.engine = true;
    } else if (flag == "--chunk-rows") {
      auto v = next();
      if (!v.ok()) return v.status();
      auto parsed = ParseUint(flag, *v);
      if (!parsed.ok()) return parsed.status();
      if (*parsed == 0) {
        return Status::InvalidArgument("--chunk-rows must be positive");
      }
      options.chunk_rows = *parsed;
    } else if (flag == "--window-rows") {
      auto v = next();
      if (!v.ok()) return v.status();
      auto parsed = ParseUint(flag, *v);
      if (!parsed.ok()) return parsed.status();
      if (*parsed == 0) {
        return Status::InvalidArgument("--window-rows must be positive");
      }
      options.window_rows = *parsed;
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'\n" +
                                     Usage());
    }
  }
  if (options.csv_path.empty()) {
    return Status::InvalidArgument("--csv is required\n" + Usage());
  }
  if (options.window_rows > 0 && !options.engine) {
    return Status::InvalidArgument(
        "--window-rows requires --engine (only the streaming engine "
        "maintains a sliding window)");
  }
  if (options.command == "query" && options.patterns.empty() &&
      options.batch_file.empty()) {
    return Status::InvalidArgument(
        "query needs at least one --pattern or a --batch-file\n" + Usage());
  }
  if (options.json && options.command != "audit" &&
      options.command != "query") {
    return Status::InvalidArgument(
        "--json applies to audit and query only");
  }
  return options;
}

namespace {

StatusOr<Dataset> LoadCsv(const CliOptions& options) {
  std::ifstream in(options.csv_path);
  if (!in.good()) {
    return Status::NotFound("cannot open '" + options.csv_path + "'");
  }
  return Dataset::InferFromCsv(in, options.max_cardinality);
}

int RunStats(const CliOptions& options, std::ostream& out,
             std::ostream& err) {
  auto data = LoadCsv(options);
  if (!data.ok()) {
    err << data.status().ToString() << "\n";
    return 1;
  }
  const Schema& schema = data->schema();
  out << "rows: " << FormatCount(data->num_rows())
      << "   attributes: " << schema.num_attributes()
      << "   value combinations: "
      << FormatCount(schema.NumValueCombinations()) << "\n\n";
  for (int a = 0; a < schema.num_attributes(); ++a) {
    std::vector<std::size_t> counts(
        static_cast<std::size_t>(schema.cardinality(a)), 0);
    for (std::size_t r = 0; r < data->num_rows(); ++r) {
      ++counts[static_cast<std::size_t>(data->at(r, a))];
    }
    out << schema.attribute(a).name << " (cardinality "
        << schema.cardinality(a) << "):\n";
    for (Value v = 0; v < static_cast<Value>(schema.cardinality(a)); ++v) {
      out << "  " << schema.attribute(a).value_names[static_cast<std::size_t>(
                 v)]
          << ": " << counts[static_cast<std::size_t>(v)] << "\n";
    }
  }
  return 0;
}

void PrintAuditReport(const Schema& schema, const std::vector<Pattern>& mups,
                      std::size_t num_rows, const CliOptions& options,
                      const std::string& discovery_line, std::ostream& out) {
  out << RenderNutritionalLabel(
      BuildCoverageReport(schema, mups, num_rows, options.tau));
  out << discovery_line;
  if (options.list_mups) {
    out << "\nall MUPs (most general first):\n";
    std::vector<Pattern> sorted = mups;
    std::sort(sorted.begin(), sorted.end(),
              [](const Pattern& a, const Pattern& b) {
                if (a.level() != b.level()) return a.level() < b.level();
                return a < b;
              });
    for (const Pattern& p : sorted) {
      out << "  " << p.ToString() << "  " << p.ToLabelledString(schema)
          << "\n";
    }
  }
}

ServiceOptions ToServiceOptions(const CliOptions& options) {
  ServiceOptions sopts;
  sopts.num_threads = options.threads;
  sopts.max_cardinality = options.max_cardinality;
  sopts.csv_chunk_rows = static_cast<std::size_t>(options.chunk_rows);
  return sopts;
}

/// The streaming audit: a CoverageService::Session over the inferred schema
/// (pass 1 builds dictionaries only, no row ever materialised), fed chunk by
/// chunk so peak memory stays at one chunk plus the aggregated relation.
int RunAuditEngine(const CliOptions& options, std::ostream& out,
                   std::ostream& err) {
  std::ifstream schema_pass(options.csv_path);
  if (!schema_pass.good()) {
    err << Status::NotFound("cannot open '" + options.csv_path + "'")
               .ToString()
        << "\n";
    return 1;
  }
  auto schema = InferSchemaFromCsv(schema_pass, options.max_cardinality);
  if (!schema.ok()) {
    err << schema.status().ToString() << "\n";
    return 1;
  }

  CoverageService::SessionOptions sopts;
  sopts.tau = options.tau;
  sopts.max_level = options.max_level;
  sopts.num_threads = options.threads;
  sopts.window_max_rows = static_cast<std::size_t>(options.window_rows);
  auto session = CoverageService::OpenSession(*schema, sopts);
  if (!session.ok()) {
    err << session.status().ToString() << "\n";
    return 1;
  }

  std::ifstream ingest_pass(options.csv_path);
  if (!ingest_pass.good()) {
    err << Status::NotFound("cannot reopen '" + options.csv_path +
                            "' for the ingest pass")
               .ToString()
        << "\n";
    return 1;
  }
  auto stats = session->IngestCsv(ingest_pass,
                                  static_cast<std::size_t>(options.chunk_rows));
  if (!stats.ok()) {
    err << stats.status().ToString() << "\n";
    return 1;
  }

  const AuditResult audit = session->Audit();
  if (options.json) {
    out << json::SerializePretty(wire::ToJson(audit, session->schema()));
    return 0;
  }
  std::string discovery_line =
      "ingest: " + FormatCount(stats->rows) + " rows in " +
      std::to_string(stats->chunks) + " chunks of <= " +
      FormatCount(stats->peak_chunk_rows) + ", " +
      FormatDouble(stats->read_seconds, 4) + " s read + " +
      FormatDouble(stats->update_seconds, 4) + " s incremental updates, " +
      std::to_string(stats->coverage_queries) + " coverage queries\n";
  if (options.window_rows > 0) {
    discovery_line += "window: last " + FormatCount(options.window_rows) +
                      " rows (" + FormatCount(audit.num_rows) +
                      " retained; the label describes the window, not the "
                      "full stream)\n";
  }
  PrintAuditReport(session->schema(), audit.mups,
                   static_cast<std::size_t>(audit.num_rows), options,
                   discovery_line, out);
  return 0;
}

int RunAudit(const CliOptions& options, std::ostream& out,
             std::ostream& err) {
  if (options.engine) return RunAuditEngine(options, out, err);
  auto service =
      CoverageService::FromCsvFile(options.csv_path, ToServiceOptions(options));
  if (!service.ok()) {
    err << service.status().ToString() << "\n";
    return 1;
  }
  // ParseArgs validated --algo, but CliOptions is also constructible
  // programmatically, so re-check rather than assert.
  auto algo = ParseAlgo(options.algo);
  if (!algo.ok()) {
    err << algo.status().ToString() << "\n";
    return 1;
  }
  AuditRequest request;
  request.tau = options.tau;
  request.max_level = options.max_level;
  request.algorithm = *algo;
  // The JSON path re-encodes from packed form; only the table report needs
  // materialized patterns.
  request.materialize_patterns = !options.json;
  auto result = service->Audit(request);
  if (!result.ok()) {
    err << result.status().ToString() << "\n";
    return 1;
  }
  if (options.json) {
    // The exact wire encoding coverage_server sends for POST /v1/audit,
    // pretty-printed (same serializer, same key order, same escaping).
    out << json::SerializePretty(wire::ToJson(*result, service->schema()));
    return 0;
  }
  std::string discovery_line =
      "discovery: " + result->algorithm + ", " +
      FormatDouble(result->stats.seconds, 4) + " s, " +
      std::to_string(result->stats.coverage_queries) + " coverage queries\n";
  if (!result->planner_rationale.empty()) {
    discovery_line += "planner: " + result->planner_rationale + "\n";
  }
  PrintAuditReport(service->schema(), result->mups,
                   static_cast<std::size_t>(result->num_rows), options,
                   discovery_line, out);
  return 0;
}

int RunEnhance(const CliOptions& options, std::ostream& out,
               std::ostream& err) {
  auto service =
      CoverageService::FromCsvFile(options.csv_path, ToServiceOptions(options));
  if (!service.ok()) {
    err << service.status().ToString() << "\n";
    return 1;
  }
  // Parse rules here (rather than through EnhanceRequest::rules) so a typo
  // is reported as the familiar "bad --rule" with the offending text.
  ValidationOracle validator;
  for (const std::string& text : options.rules) {
    auto rule = ValidationRule::Parse(text, service->schema());
    if (!rule.ok()) {
      err << "bad --rule: " << rule.status().ToString() << "\n";
      return 1;
    }
    validator.AddRule(*rule);
  }
  EnhanceRequest request;
  request.tau = options.tau;
  request.lambda = options.lambda;
  request.validator = validator.num_rules() > 0 ? &validator : nullptr;
  auto plan = service->Enhance(request);
  if (!plan.ok()) {
    err << plan.status().ToString() << "\n";
    return 1;
  }
  out << RenderAcquisitionPlan(*plan, service->schema());
  return 0;
}

int RunQuery(const CliOptions& options, std::ostream& out,
             std::ostream& err) {
  auto service =
      CoverageService::FromCsvFile(options.csv_path, ToServiceOptions(options));
  if (!service.ok()) {
    err << service.status().ToString() << "\n";
    return 1;
  }

  std::vector<std::string> texts = options.patterns;
  if (!options.batch_file.empty()) {
    std::ifstream batch(options.batch_file);
    if (!batch.good()) {
      err << Status::NotFound("cannot open batch file '" +
                              options.batch_file + "'")
                 .ToString()
          << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(batch, line)) {
      const std::string trimmed(Trim(line));
      if (trimmed.empty() || trimmed[0] == '#') continue;
      texts.push_back(trimmed);
    }
  }

  QueryBatchRequest request;
  for (const std::string& text : texts) {
    auto pattern = Pattern::Parse(text, service->schema());
    if (!pattern.ok()) {
      err << "bad pattern '" << text
          << "': " << pattern.status().ToString() << "\n";
      return 1;
    }
    request.queries.push_back(QueryRequest{*pattern, 0});
  }

  auto result = service->QueryBatch(request);
  if (!result.ok()) {
    err << result.status().ToString() << "\n";
    return 1;
  }
  if (options.json) {
    out << json::SerializePretty(wire::ToJson(*result));
    return 0;
  }
  for (std::size_t i = 0; i < texts.size(); ++i) {
    const QueryOutcome& o = result->results[i];
    out << texts[i] << "  cov = " << FormatCount(o.coverage) << "  "
        << (o.coverage >= options.tau ? "covered" : "UNCOVERED")
        << " at tau=" << options.tau << "\n";
  }
  out << "batch: " << texts.size() << " queries, "
      << result->coverage_queries << " oracle calls, "
      << FormatDouble(result->seconds, 4) << " s over " << options.threads
      << " thread(s)\n";
  return 0;
}

}  // namespace

int RunParsed(const CliOptions& options, std::ostream& out,
              std::ostream& err) {
  // CliOptions is also constructible programmatically, so tolerate an
  // unparseable level here by keeping the current one.
  obs::LogLevel log_level;
  if (obs::ParseLogLevel(options.log_level, &log_level)) {
    obs::SetLogLevel(log_level);
  }
  obs::SetLogJson(options.log_json);
  if (options.command == "help") {
    out << Usage();
    return 0;
  }
  if (options.command == "stats") return RunStats(options, out, err);
  if (options.command == "audit") return RunAudit(options, out, err);
  if (options.command == "enhance") return RunEnhance(options, out, err);
  if (options.command == "query") return RunQuery(options, out, err);
  err << "unknown command '" << options.command << "'\n" << Usage();
  return 1;
}

int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  auto options = ParseArgs(args);
  if (!options.ok()) {
    err << options.status().message() << "\n";
    return 2;
  }
  return RunParsed(*options, out, err);
}

}  // namespace cli
}  // namespace coverage

#ifndef COVERAGE_TOOLS_COVERAGE_CLI_LIB_H_
#define COVERAGE_TOOLS_COVERAGE_CLI_LIB_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace coverage {
namespace cli {

/// Parsed command line of coverage_cli. Kept in a library so the argument
/// grammar is unit-testable without spawning processes.
struct CliOptions {
  std::string command;  // "audit" | "enhance" | "query" | "stats" | "help"
  std::string csv_path;
  std::uint64_t tau = 30;         // the §II rule-of-thumb default
  int lambda = 1;
  int max_level = -1;
  int max_cardinality = 100;
  int threads = 1;                // MUP-search worker count
  std::string algo = "auto";      // audit: MUP algorithm ("auto" = planner)
  std::vector<std::string> rules; // validation-rule strings
  bool list_mups = false;         // audit: print every MUP, not just the label
  bool json = false;              // audit/query: emit the JSON wire format
  bool engine = false;            // audit: stream through CoverageEngine
  std::uint64_t chunk_rows = 65536;  // engine: rows per ingest chunk
  std::uint64_t window_rows = 0;  // engine: sliding-window row cap (0 = off)
  std::vector<std::string> patterns;  // query: inline pattern strings
  std::string batch_file;             // query: file of patterns, one per line
  std::string log_level = "warn";     // structured-log threshold on stderr
  bool log_json = false;              // logs as JSON lines instead of text
};

/// Parses argv (without the program name). Returns InvalidArgument with a
/// usage-style message on malformed input.
StatusOr<CliOptions> ParseArgs(const std::vector<std::string>& args);

/// Usage text.
std::string Usage();

/// Executes a parsed command; returns the process exit code.
int RunParsed(const CliOptions& options, std::ostream& out, std::ostream& err);

/// ParseArgs + RunParsed.
int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace cli
}  // namespace coverage

#endif  // COVERAGE_TOOLS_COVERAGE_CLI_LIB_H_

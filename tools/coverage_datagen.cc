// coverage_datagen — emits the library's synthetic datasets as CSV so the
// whole paper workflow can be driven from a shell:
//
//   coverage_datagen --dataset compas --n 6889 --seed 42 > compas.csv
//   coverage_cli audit --csv compas.csv --tau 10 --list-mups
//   coverage_cli enhance --csv compas.csv --tau 10 --lambda 2
//       --rule "marital in {unknown}"
//
// Datasets: compas (4 demographic attributes + reoffended label column),
// airbnb (--d boolean attributes), bluenile (7 catalog attributes),
// diagonal (--d, the Theorem-1 adversarial construction).

#include <iostream>

#include "tools/coverage_datagen_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return coverage::cli::RunDatagen(args, std::cout, std::cerr);
}

#include "tools/coverage_datagen_lib.h"

#include <iostream>

#include "coverage_lib.h"

namespace coverage {
namespace cli {

std::string DatagenUsage() {
  return
      "usage: coverage_datagen --dataset NAME [flags] > out.csv\n"
      "\n"
      "datasets:\n"
      "  compas    4 demographic attributes (default n = 6889)\n"
      "  airbnb    --d boolean amenity attributes (default n = 10000)\n"
      "  bluenile  7 catalog attributes (default n = 116300)\n"
      "  diagonal  Theorem-1 adversarial construction (n = d rows)\n"
      "\n"
      "flags:\n"
      "  --n N          number of rows (where applicable)\n"
      "  --d D          attribute count for airbnb (1-36) / diagonal\n"
      "  --seed S       RNG seed (default 42)\n"
      "  --with-label   compas: append the 'reoffended' label column\n";
}

StatusOr<DatagenOptions> ParseDatagenArgs(
    const std::vector<std::string>& args) {
  DatagenOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag " + flag + " expects a value");
      }
      return args[++i];
    };
    auto next_uint = [&]() -> StatusOr<std::uint64_t> {
      auto v = next();
      if (!v.ok()) return v.status();
      try {
        std::size_t pos = 0;
        const unsigned long long parsed = std::stoull(*v, &pos);
        if (pos != v->size()) throw std::invalid_argument(*v);
        return static_cast<std::uint64_t>(parsed);
      } catch (const std::exception&) {
        return Status::InvalidArgument("flag " + flag +
                                       " expects an integer, got '" + *v +
                                       "'");
      }
    };
    if (flag == "--dataset") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.dataset = *v;
    } else if (flag == "--n") {
      auto v = next_uint();
      if (!v.ok()) return v.status();
      options.n = static_cast<std::size_t>(*v);
    } else if (flag == "--d") {
      auto v = next_uint();
      if (!v.ok()) return v.status();
      options.d = static_cast<int>(*v);
    } else if (flag == "--seed") {
      auto v = next_uint();
      if (!v.ok()) return v.status();
      options.seed = *v;
    } else if (flag == "--with-label") {
      options.with_label = true;
    } else if (flag == "--help" || flag == "-h" || flag == "help") {
      options.help = true;
      return options;
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'\n" +
                                     DatagenUsage());
    }
  }
  if (options.dataset.empty()) {
    return Status::InvalidArgument("--dataset is required\n" + DatagenUsage());
  }
  if (options.dataset != "compas" && options.dataset != "airbnb" &&
      options.dataset != "bluenile" && options.dataset != "diagonal") {
    return Status::InvalidArgument("unknown dataset '" + options.dataset +
                                   "'\n" + DatagenUsage());
  }
  if (options.dataset == "airbnb" && (options.d < 1 || options.d > 36)) {
    return Status::InvalidArgument("airbnb supports --d in [1, 36]");
  }
  if (options.dataset == "diagonal" && options.d < 1) {
    return Status::InvalidArgument("diagonal needs --d >= 1");
  }
  if (options.with_label && options.dataset != "compas") {
    return Status::InvalidArgument("--with-label only applies to compas");
  }
  return options;
}

namespace {

/// CSV emission with an optional extra label column (labels are not part of
/// the coverage schema, mirroring §II's treatment of label attributes).
Status WriteCsvWithLabel(const Dataset& data, const std::vector<int>& labels,
                         std::ostream& out) {
  const Schema& schema = data.schema();
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (i != 0) out << ',';
    out << schema.attribute(i).name;
  }
  out << ",reoffended\n";
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (int i = 0; i < schema.num_attributes(); ++i) {
      if (i != 0) out << ',';
      out << schema.attribute(i).value_names[static_cast<std::size_t>(
          data.at(r, i))];
    }
    out << ',' << labels[r] << "\n";
  }
  return out.good() ? Status::OK() : Status::Internal("CSV write failed");
}

}  // namespace

int RunDatagen(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  auto options = ParseDatagenArgs(args);
  if (!options.ok()) {
    err << options.status().message() << "\n";
    return 2;
  }
  if (options->help) {
    out << DatagenUsage();
    return 0;
  }
  Status st;
  if (options->dataset == "compas") {
    const std::size_t n = options->n == 0 ? 6889 : options->n;
    if (n < 200) {
      err << "compas needs --n >= 200 (forced minority cells)\n";
      return 1;
    }
    const auto compas = datagen::MakeCompas(n, options->seed);
    st = options->with_label
             ? WriteCsvWithLabel(compas.data, compas.labels, out)
             : compas.data.WriteCsv(out);
  } else if (options->dataset == "airbnb") {
    const std::size_t n = options->n == 0 ? 10000 : options->n;
    st = datagen::MakeAirbnb(n, options->d, options->seed).WriteCsv(out);
  } else if (options->dataset == "bluenile") {
    const std::size_t n = options->n == 0 ? 116300 : options->n;
    st = datagen::MakeBlueNile(n, options->seed).WriteCsv(out);
  } else {  // diagonal
    st = datagen::MakeDiagonal(options->d).WriteCsv(out);
  }
  if (!st.ok()) {
    err << st.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace cli
}  // namespace coverage

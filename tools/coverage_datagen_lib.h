#ifndef COVERAGE_TOOLS_COVERAGE_DATAGEN_LIB_H_
#define COVERAGE_TOOLS_COVERAGE_DATAGEN_LIB_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace coverage {
namespace cli {

/// Parsed command line of coverage_datagen.
struct DatagenOptions {
  std::string dataset;          // "compas" | "airbnb" | "bluenile" | "diagonal"
  std::size_t n = 0;            // 0 -> per-dataset default
  int d = 13;                   // airbnb/diagonal width
  std::uint64_t seed = 42;
  bool with_label = false;      // compas: append the reoffended column
  bool help = false;
};

/// Parses argv (without the program name).
StatusOr<DatagenOptions> ParseDatagenArgs(const std::vector<std::string>& args);

/// Usage text.
std::string DatagenUsage();

/// Generates the requested dataset and writes CSV to `out`; returns the
/// process exit code.
int RunDatagen(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);

}  // namespace cli
}  // namespace coverage

#endif  // COVERAGE_TOOLS_COVERAGE_DATAGEN_LIB_H_

// The deployable coverage server: index one dataset (CSV file or datagen
// spec), then serve the JSON wire protocol until SIGINT/SIGTERM.
//
//   coverage_server --data lending.csv --port 8080 --threads 8
//   coverage_server --spec compas --port 8080
//   curl -s localhost:8080/healthz
//   curl -s localhost:8080/v1/audit -d '{"tau": 30}'
//
// The same binary also runs the distributed tier (docs/DISTRIBUTED.md):
//
//   coverage_server --role shard --spec compas --shard-index 0 \
//       --shard-count 3 --port 9001        # rows r with r % 3 == 0
//   coverage_server --role coordinator \
//       --shards localhost:9001,localhost:9002,localhost:9003 --port 8080
//
// See docs/SERVER_API.md for every route.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/coordinator.h"
#include "datagen/adversarial.h"
#include "datagen/airbnb.h"
#include "datagen/bluenile.h"
#include "datagen/compas.h"
#include "obs/log.h"
#include "server/coverage_server.h"
#include "service/pool_arena.h"

namespace {

struct ServerCliOptions {
  std::string data_path;      // --data CSV
  std::string spec_name;      // --spec compas | airbnb | bluenile | diagonal
  std::size_t spec_rows = 0;  // --rows (0 = dataset default)
  int spec_d = 13;            // --d (airbnb/diagonal width)
  int port = 8080;
  int threads = 0;            // 0 = hardware concurrency
  int max_total_threads = 0;  // 0 = unlimited (process-wide query-pool cap)
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  std::uint64_t tau = 30;     // default tau for sessions
  int max_cardinality = 100;
  std::string data_dir;       // --data-dir (durable sessions root)
  std::string durability = "fsync";  // --durability none|async|fsync
  std::uint64_t idle_ttl = 0;        // --idle-ttl seconds (0 = never reap)
  std::uint64_t max_pending = 256;   // --max-pending (0 = unbounded)
  std::uint64_t max_queue_wait_ms = 0;  // --max-queue-wait-ms (0 = off)
  std::string io_model;              // --io-model blocking|epoll ("" = env)
  std::string log_level = "info";    // --log-level debug|info|warn|error|off
  bool log_json = false;             // --log-json (JSON lines on stderr)
  std::uint64_t slow_request_ms = 1000;  // --slow-request-ms (0 = off)

  // Distributed tier (docs/DISTRIBUTED.md).
  std::string role = "standalone";   // --role standalone|shard|coordinator
  std::uint64_t shard_index = 0;     // --shard-index (shard role)
  std::uint64_t shard_count = 1;     // --shard-count (shard role)
  std::string shards;                // --shards host:port,host:port,...
  std::uint64_t rpc_timeout_ms = 30000;      // --rpc-timeout-ms
  std::uint64_t retry_attempts = 3;          // --shard-retry-attempts
  std::uint64_t retry_backoff_ms = 50;       // --shard-retry-backoff-ms
  std::uint64_t ring_vnodes = 128;           // --ring-vnodes
};

void Usage(std::ostream& out) {
  out << "usage: coverage_server (--data PATH | --spec NAME) [flags]\n"
         "\n"
         "  --data PATH            CSV to index and serve (streamed in two\n"
         "                         passes; peak memory is one chunk)\n"
         "  --spec NAME            serve a synthetic dataset instead:\n"
         "                         compas | airbnb | bluenile | diagonal\n"
         "  --rows N               --spec row count (0 = dataset default)\n"
         "  --d N                  --spec width for airbnb/diagonal\n"
         "  --port N               TCP port (default 8080; 0 = ephemeral,\n"
         "                         printed on stdout)\n"
         "  --threads N            HTTP workers and per-query-pool width\n"
         "                         (default 0 = hardware concurrency)\n"
         "  --max-total-threads N  process-wide cap on spawned query-pool\n"
         "                         threads (default 0 = unlimited)\n"
         "  --max-body-bytes N     reject request bodies above N bytes\n"
         "                         (default 8388608)\n"
         "  --tau N                default coverage threshold for sessions\n"
         "                         (default 30)\n"
         "  --max-cardinality N    CSV schema-inference cap (default 100)\n"
         "  --data-dir PATH        persist sessions under PATH (WAL +\n"
         "                         snapshots); on boot every session found\n"
         "                         there is recovered. Without it sessions\n"
         "                         are in-memory only\n"
         "  --durability MODE      default WAL policy for durable sessions:\n"
         "                         none | async | fsync (default fsync)\n"
         "  --idle-ttl N           reap sessions idle for N seconds; durable\n"
         "                         ones are checkpointed and stay on disk\n"
         "                         (default 0 = never)\n"
         "  --max-pending N        shed connections with 503 + Retry-After\n"
         "                         once N are queued for a worker (default\n"
         "                         256; 0 = unbounded)\n"
         "  --max-queue-wait-ms N  also shed connections that waited longer\n"
         "                         than N ms in that queue (default 0 = off)\n"
         "  --io-model MODEL       serving engine: blocking (thread per\n"
         "                         connection) | epoll (one readiness loop,\n"
         "                         workers dispatch only). Default: the\n"
         "                         COVERAGE_IO_MODEL env var, else blocking\n"
         "  --log-level LEVEL      structured-log threshold on stderr:\n"
         "                         debug | info | warn | error | off\n"
         "                         (default info)\n"
         "  --log-json             emit logs as JSON lines instead of text\n"
         "  --slow-request-ms N    WARN slow_request for requests above N ms\n"
         "                         (default 1000; 0 = off)\n"
         "\n"
         "distributed tier (docs/DISTRIBUTED.md):\n"
         "  --role ROLE            standalone (default) | shard |\n"
         "                         coordinator\n"
         "  --shard-index K        this shard serves rows r with\n"
         "                         r % shard-count == K (shard role)\n"
         "  --shard-count N        total shards slicing the dataset\n"
         "                         (shard role; default 1)\n"
         "  --shards LIST          comma-separated shard endpoints\n"
         "                         host:port,... (coordinator role)\n"
         "  --rpc-timeout-ms N     per-attempt connect/read timeout for\n"
         "                         coordinator->shard calls (default 30000)\n"
         "  --shard-retry-attempts N  tries per shard call, including the\n"
         "                         first (default 3)\n"
         "  --shard-retry-backoff-ms N  base retry backoff, doubled per\n"
         "                         attempt (default 50)\n"
         "  --ring-vnodes N        virtual nodes per shard on the session\n"
         "                         ring (default 128)\n";
}

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using coverage::CoverageServer;
  using coverage::CoverageServerOptions;
  using coverage::CoverageService;
  using coverage::DatagenSpec;
  using coverage::ServiceOptions;
  using coverage::ThreadBudget;

  ServerCliOptions cli;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&](std::uint64_t* out) {
      if (i + 1 >= args.size() || !ParseUint(args[++i].c_str(), out)) {
        std::cerr << "flag " << flag << " expects a non-negative integer\n";
        std::exit(2);
      }
    };
    std::uint64_t v = 0;
    if (flag == "--help" || flag == "-h") {
      Usage(std::cout);
      return 0;
    } else if (flag == "--data" && i + 1 < args.size()) {
      cli.data_path = args[++i];
    } else if (flag == "--spec" && i + 1 < args.size()) {
      cli.spec_name = args[++i];
    } else if (flag == "--rows") {
      next(&v);
      cli.spec_rows = static_cast<std::size_t>(v);
    } else if (flag == "--d") {
      next(&v);
      cli.spec_d = static_cast<int>(v);
    } else if (flag == "--port") {
      next(&v);
      cli.port = static_cast<int>(v);
    } else if (flag == "--threads") {
      next(&v);
      cli.threads = static_cast<int>(v);
    } else if (flag == "--max-total-threads") {
      next(&v);
      cli.max_total_threads = static_cast<int>(v);
    } else if (flag == "--max-body-bytes") {
      next(&v);
      cli.max_body_bytes = static_cast<std::size_t>(v);
    } else if (flag == "--tau") {
      next(&v);
      cli.tau = v;
    } else if (flag == "--max-cardinality") {
      next(&v);
      cli.max_cardinality = static_cast<int>(v);
    } else if (flag == "--data-dir" && i + 1 < args.size()) {
      cli.data_dir = args[++i];
    } else if (flag == "--durability" && i + 1 < args.size()) {
      cli.durability = args[++i];
    } else if (flag == "--idle-ttl") {
      next(&cli.idle_ttl);
    } else if (flag == "--max-pending") {
      next(&cli.max_pending);
    } else if (flag == "--max-queue-wait-ms") {
      next(&cli.max_queue_wait_ms);
    } else if (flag == "--io-model" && i + 1 < args.size()) {
      cli.io_model = args[++i];
    } else if (flag == "--log-level" && i + 1 < args.size()) {
      cli.log_level = args[++i];
    } else if (flag == "--log-json") {
      cli.log_json = true;
    } else if (flag == "--slow-request-ms") {
      next(&cli.slow_request_ms);
    } else if (flag == "--role" && i + 1 < args.size()) {
      cli.role = args[++i];
    } else if (flag == "--shard-index") {
      next(&cli.shard_index);
    } else if (flag == "--shard-count") {
      next(&cli.shard_count);
    } else if (flag == "--shards" && i + 1 < args.size()) {
      cli.shards = args[++i];
    } else if (flag == "--rpc-timeout-ms") {
      next(&cli.rpc_timeout_ms);
    } else if (flag == "--shard-retry-attempts") {
      next(&cli.retry_attempts);
    } else if (flag == "--shard-retry-backoff-ms") {
      next(&cli.retry_backoff_ms);
    } else if (flag == "--ring-vnodes") {
      next(&cli.ring_vnodes);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      Usage(std::cerr);
      return 2;
    }
  }
  if (cli.role != "standalone" && cli.role != "shard" &&
      cli.role != "coordinator") {
    std::cerr << "--role must be standalone, shard or coordinator\n";
    return 2;
  }
  if (cli.role == "coordinator") {
    if (cli.shards.empty()) {
      std::cerr << "--role coordinator requires --shards\n";
      return 2;
    }
    if (!cli.data_path.empty() || !cli.spec_name.empty()) {
      std::cerr << "a coordinator holds no data; drop --data/--spec\n";
      return 2;
    }
  } else if (cli.data_path.empty() == cli.spec_name.empty()) {
    std::cerr << "pass exactly one of --data or --spec\n";
    Usage(std::cerr);
    return 2;
  }
  if (cli.role == "shard" &&
      (cli.shard_count < 1 || cli.shard_index >= cli.shard_count)) {
    std::cerr << "--shard-index must be < --shard-count (>= 1)\n";
    return 2;
  }

  coverage::obs::LogLevel log_level;
  if (!coverage::obs::ParseLogLevel(cli.log_level, &log_level)) {
    std::cerr << "--log-level must be debug, info, warn, error or off\n";
    return 2;
  }
  coverage::obs::SetLogLevel(log_level);
  coverage::obs::SetLogJson(cli.log_json);

  if (cli.role == "coordinator") {
    coverage::cluster::CoordinatorOptions copts;
    copts.http.port = cli.port;
    copts.http.num_threads = cli.threads;
    copts.http.max_body_bytes = cli.max_body_bytes;
    copts.http.max_pending = static_cast<std::size_t>(cli.max_pending);
    copts.http.max_queue_wait_ms = static_cast<int>(cli.max_queue_wait_ms);
    if (cli.io_model == "blocking") {
      copts.http.io_model = coverage::http::IoModel::kBlocking;
    } else if (cli.io_model == "epoll") {
      copts.http.io_model = coverage::http::IoModel::kEpoll;
    } else if (!cli.io_model.empty()) {
      std::cerr << "--io-model must be blocking or epoll\n";
      return 2;
    }
    std::size_t pos = 0;
    while (pos <= cli.shards.size()) {
      std::size_t comma = cli.shards.find(',', pos);
      if (comma == std::string::npos) comma = cli.shards.size();
      if (comma > pos) copts.shards.push_back(cli.shards.substr(pos, comma - pos));
      pos = comma + 1;
    }
    copts.rpc.connect_timeout_ms = static_cast<int>(cli.rpc_timeout_ms);
    copts.rpc.read_timeout_ms = static_cast<int>(cli.rpc_timeout_ms);
    copts.retry.max_attempts = static_cast<int>(cli.retry_attempts);
    copts.retry.backoff_ms = static_cast<int>(cli.retry_backoff_ms);
    copts.ring_vnodes = static_cast<int>(cli.ring_vnodes);

    coverage::cluster::ClusterCoordinator coordinator(std::move(copts));
    const coverage::Status started = coordinator.Start();
    if (!started.ok()) {
      std::cerr << started.ToString() << "\n";
      return 1;
    }
    coordinator.StopOnSignal();
    std::cout << "coverage_server coordinator listening on port "
              << coordinator.port() << " ("
              << coordinator.ring().num_members() << " shard(s), "
              << coordinator.schema().num_attributes() << " attributes)\n"
              << std::flush;
    coordinator.Wait();
    std::cout << "coverage_server: graceful shutdown complete\n";
    return 0;
  }

  // One budget shared by the immutable service and every session the
  // server opens: --max-total-threads is genuinely process-wide.
  auto budget = std::make_shared<ThreadBudget>(cli.max_total_threads);

  // ServiceOptions::Validate rejects 0, so resolve "use the hardware" here
  // the same way ThreadPool would.
  int service_threads = cli.threads;
  if (service_threads <= 0) {
    service_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    if (service_threads < 1) service_threads = 1;
  }
  ServiceOptions sopts;
  sopts.num_threads = service_threads;
  sopts.max_cardinality = cli.max_cardinality;
  sopts.thread_budget = budget;

  const DatagenSpec spec{cli.spec_name, cli.spec_rows, cli.spec_d, 42};
  auto service = [&]() -> coverage::StatusOr<CoverageService> {
    if (cli.role != "shard") {
      return cli.data_path.empty()
                 ? CoverageService::FromSpec(spec, sopts)
                 : CoverageService::FromCsvFile(cli.data_path, sopts);
    }
    // Shard mode: every shard loads (or generates) the *full* dataset — so
    // all shards agree on the schema byte-for-byte — and indexes only the
    // rows r with r % shard_count == shard_index.
    coverage::Dataset full{coverage::Schema()};
    if (!cli.data_path.empty()) {
      std::ifstream is(cli.data_path);
      if (!is) {
        return coverage::Status::InvalidArgument("cannot open '" +
                                                 cli.data_path + "'");
      }
      auto loaded = coverage::Dataset::InferFromCsv(is, cli.max_cardinality);
      if (!loaded.ok()) return loaded.status();
      full = std::move(*loaded);
    } else {
      const coverage::Status valid = spec.Validate();
      if (!valid.ok()) return valid;
      if (spec.name == "compas") {
        full = coverage::datagen::MakeCompas(spec.n == 0 ? 6889 : spec.n,
                                             spec.seed)
                   .data;
      } else if (spec.name == "airbnb") {
        full = coverage::datagen::MakeAirbnb(spec.n == 0 ? 10000 : spec.n,
                                             spec.d, spec.seed);
      } else if (spec.name == "bluenile") {
        full = coverage::datagen::MakeBlueNile(
            spec.n == 0 ? 116300 : spec.n, spec.seed);
      } else {
        full = coverage::datagen::MakeDiagonal(spec.d);
      }
    }
    coverage::Dataset slice(full.schema());
    for (std::size_t r = cli.shard_index; r < full.num_rows();
         r += cli.shard_count) {
      slice.AppendRow(full.row(r));
    }
    return CoverageService::FromDataset(slice, sopts);
  }();
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }

  CoverageServerOptions options;
  options.http.port = cli.port;
  options.http.num_threads = cli.threads;  // 0 = hardware concurrency
  options.http.max_body_bytes = cli.max_body_bytes;
  options.http.max_pending = static_cast<std::size_t>(cli.max_pending);
  options.http.max_queue_wait_ms = static_cast<int>(cli.max_queue_wait_ms);
  if (cli.io_model == "blocking") {
    options.http.io_model = coverage::http::IoModel::kBlocking;
  } else if (cli.io_model == "epoll") {
    options.http.io_model = coverage::http::IoModel::kEpoll;
  } else if (!cli.io_model.empty()) {
    std::cerr << "--io-model must be blocking or epoll\n";
    return 2;
  }  // empty = kDefault, resolved from COVERAGE_IO_MODEL
  options.session_defaults.tau = cli.tau;
  options.session_defaults.num_threads = service_threads;
  options.session_defaults.thread_budget = budget;
  options.session_defaults.idle_ttl_seconds = cli.idle_ttl;
  options.data_dir = cli.data_dir;
  options.enable_internal_routes = cli.role == "shard";
  options.slow_request_seconds =
      static_cast<double>(cli.slow_request_ms) / 1000.0;
  if (cli.durability == "none") {
    options.session_defaults.durability = coverage::DurabilityMode::kNone;
  } else if (cli.durability == "async") {
    options.session_defaults.durability = coverage::DurabilityMode::kAsync;
  } else if (cli.durability == "fsync") {
    options.session_defaults.durability = coverage::DurabilityMode::kFsync;
  } else {
    std::cerr << "--durability must be none, async or fsync\n";
    return 2;
  }

  CoverageServer server(std::move(*service), options);
  const coverage::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  server.StopOnSignal();
  std::cout << "coverage_server"
            << (cli.role == "shard"
                    ? " shard " + std::to_string(cli.shard_index) + "/" +
                          std::to_string(cli.shard_count)
                    : "")
            << " listening on port " << server.port() << " ("
            << server.service().num_rows() << " rows, "
            << server.service().schema().num_attributes()
            << " attributes; tau default " << cli.tau << "; io model "
            << (server.io_model() == coverage::http::IoModel::kEpoll
                    ? "epoll"
                    : "blocking")
            << ")\n"
            << std::flush;
  if (!cli.data_dir.empty()) {
    std::cout << "durable sessions under " << cli.data_dir << " (default "
              << cli.durability << "); " << server.num_sessions()
              << " session(s) recovered\n"
              << std::flush;
  }
  server.Wait();
  std::cout << "coverage_server: graceful shutdown complete\n";
  return 0;
}
